"""The progressive retrieval engine (paper Sections 3.1-3.2, 4.2).

:class:`RasterRetrievalEngine` answers top-K model queries over a raster
stack four ways — the ablation grid of the Section 4.2 efficiency model:

====================  ======================  =========================
strategy              data representation     model execution
====================  ======================  =========================
``exhaustive``        every cell read         full model everywhere
``data-progressive``  tile envelopes first    full model on survivors
``model-progressive`` every cell read*        level cascade with bounds
``both``              tile envelopes first    level cascade on survivors
====================  ======================  =========================

(*) model-progressive reads only the attributes each level needs, which
is already a data saving; the *tile* axis is what the table's first
column refers to.

All four strategies return the same exact top-K *answer set* — not just
the score multiset: bounds are sound, pruning is strict, and score ties
at the K boundary break deterministically (smallest ``(row, col)`` wins,
see :class:`TopKHeap`) — so the comparison isolates work, not quality.
Work is tallied per strategy on a fresh
:class:`~repro.metrics.counters.CostCounter`.

The sharded service layer (:mod:`repro.service`) drives the same search
through :meth:`RasterRetrievalEngine.prepare_tile_query` and
:meth:`RasterRetrievalEngine.shard_search`.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.query import TopKQuery
from repro.core.results import PruningAudit, RetrievalResult, ScoredLocation
from repro.core.screening import ScreenNode, TileScreen
from repro.data.raster import RasterStack
from repro.exceptions import PlanError, QueryError
from repro.metrics.counters import CostCounter
from repro.models.base import Model
from repro.models.linear import LinearModel, stacked_interval_batch
from repro.models.progressive_linear import (
    ProgressiveLinearModel,
    TermContribution,
    analyze_contributions,
)

if TYPE_CHECKING:  # polled duck-typed; no runtime core->service dep
    from repro.embed.fusion import FusionSpec
    from repro.service.tracing import CancellationToken


class TopKHeap:
    """Running top-K of (signed score, cell) with a threshold view.

    Tie-break convention (shared by every strategy, see DESIGN.md §6):
    on equal signed score the smallest ``(row, col)`` cell wins. Entries
    are stored as ``(score, (-row, -col))`` so the min-heap root is
    always the *worst kept* answer under that rule — lowest score, and
    among score-equals the largest cell — which makes the eviction
    comparison in :meth:`offer` implement the rule directly.

    :mod:`repro.service` shares one (lock-wrapped) instance across
    concurrent shard searches; because pruning compares strictly against
    :attr:`threshold`, a threshold raised early by another shard only
    tightens pruning and never changes the final answer set.
    """

    def __init__(self, k: int) -> None:
        if k < 1:
            # k=0 would make `full` true on an empty heap, so the first
            # threshold read (or offer eviction compare) indexes into
            # nothing and raises IndexError far from the real mistake.
            raise ValueError(f"top-K heap needs k >= 1, got {k}")
        self.k = k
        self._heap: list[tuple[float, tuple[int, int]]] = []

    def offer(self, score: float, cell: tuple[int, int]) -> None:
        self._offer_entry((score, (-cell[0], -cell[1])))

    def _offer_entry(self, entry: tuple[float, tuple[int, int]]) -> None:
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, entry)
        elif entry > self._heap[0]:
            heapq.heapreplace(self._heap, entry)

    def offer_block(
        self, scores: np.ndarray, rows: np.ndarray, cols: np.ndarray
    ) -> None:
        """Offer a whole block of (signed score, cell) candidates.

        Produces exactly the heap state per-cell :meth:`offer` calls
        would (the kept set is the k largest ``(score, (-row, -col))``
        tuples ever offered, which is order-independent), but prefilters
        in NumPy before any Python-level push:

        * when full, drop ``scores < threshold`` — such an entry loses
          the eviction comparison outright, whatever its cell (equal
          scores are kept: they can still win on the cell tie-break);
        * keep only candidates at or above the block's k-th largest
          score (``np.partition``) — at least k block-mates beat any
          entry strictly below that cutoff, so it can never be kept.
          ``>=`` keeps boundary-score ties for the tie-break to settle.
        """
        self._offer_block_impl(scores, rows, cols)

    def _offer_block_impl(
        self, scores: np.ndarray, rows: np.ndarray, cols: np.ndarray
    ) -> None:
        scores = np.asarray(scores)
        if scores.dtype != np.float64:
            # Narrower float blocks (e.g. float32 embedding dot products)
            # are widened *exactly* — every float32 is a float64 — so the
            # threshold/partition comparisons below run in the heap's own
            # dtype and the kept set is identical to offering the same
            # values pre-widened. One astype also leaves the result
            # contiguous, so non-contiguous views (strided slices, 2-D
            # column views) pay at most this single copy.
            scores = scores.astype(np.float64)
        scores = scores.reshape(-1)
        if scores.size == 0:
            # Zero-length blocks are legal input: a shared-scan leaf whose
            # sibling candidates were all pruned offers an empty block
            # rather than making every caller special-case it. Bail before
            # touching rows/cols (which may be empty lists of another
            # dtype) or the partition prefilter (np.partition rejects
            # empty input).
            return
        rows = np.asarray(rows).reshape(-1)
        cols = np.asarray(cols).reshape(-1)
        if len(self._heap) >= self.k:
            keep = scores >= self._heap[0][0]
            if not keep.all():
                scores = scores[keep]
                rows = rows[keep]
                cols = cols[keep]
            if scores.size == 0:
                # The threshold prefilter may drain the block entirely
                # (every candidate strictly below the K-th best); the
                # partition step below must never see a zero-length array.
                return
        if scores.size > self.k:
            cutoff = np.partition(scores, scores.size - self.k)[
                scores.size - self.k
            ]
            keep = scores >= cutoff
            scores = scores[keep]
            rows = rows[keep]
            cols = cols[keep]
        for score, row, col in zip(
            scores.tolist(), rows.tolist(), cols.tolist()
        ):
            self._offer_entry((score, (-int(row), -int(col))))

    @property
    def full(self) -> bool:
        return len(self._heap) >= self.k

    @property
    def threshold(self) -> float:
        """K-th best signed score so far (-inf until full)."""
        return self._heap[0][0] if self.full else float("-inf")

    def ranked(self) -> list[tuple[float, tuple[int, int]]]:
        """(score, cell) entries best-first: score descending, then
        smallest ``(row, col)``."""
        decoded = [
            (score, (-neg_row, -neg_col))
            for score, (neg_row, neg_col) in self._heap
        ]
        return sorted(decoded, key=lambda item: (-item[0], item[1]))


#: Backwards-compatible alias (the heap predates the service layer).
_TopKHeap = TopKHeap


@dataclass
class BatchQuerySpec:
    """One query's slot in a shared-scan batch.

    The caller supplies the query plus fresh per-query accounting
    objects (heap, counter, audit, optional cascade and cancel token);
    :meth:`RasterRetrievalEngine.shared_scan_search` mutates them in
    place and fills the output fields. Keeping accounting per-spec is
    what makes shared-scan work *attributable*: each query's counter and
    audit record exactly the work its own solo search would have
    counted, no more.
    """

    query: TopKQuery
    heap: TopKHeap
    counter: CostCounter
    audit: PruningAudit
    progressive: ProgressiveLinearModel | None = None
    cancel: "CancellationToken | None" = None
    #: Output: False when this query's cancel token retired it early
    #: (its answers are then prefix-sound, not the true top-K).
    complete: bool = field(default=True, init=False)
    #: Output: wall seconds of scan work attributable to this query
    #: (its own frontier steps; shared cache fills are charged to
    #: whichever query triggered them). Child spans built from these
    #: therefore sum to at most the batch's wall time.
    attributed_seconds: float = field(default=0.0, init=False)


def _audit_abandoned(
    audit: PruningAudit, frontier: list, reason: str
) -> None:
    """Tally a search's leftover frontier into the waterfall.

    Every entry still on the frontier when a search stops early
    (threshold close, deadline/cancel, anytime budget) was screened but
    never resolved; recording it with the stop reason keeps the explain
    waterfall's per-depth accounting exhaustive without touching the
    ``tiles_pruned`` envelope-prune total.
    """
    for _, _, node in frontier:
        audit.prune_tiles(node.depth, 1, reason=reason)


class _SharedLeafReads:
    """Memoized leaf-window reads shared across one scan's queries.

    Same-region queries evaluate the same leaf windows; the cell grid,
    window views, and level-1 attribute gathers are identical across
    them. This cache computes each once per batch and hands back
    read-only arrays, charging each query's counter exactly what the
    uncached path charges — the batch saves wall clock, never counted
    (attributable) work.
    """

    def __init__(self, stack: RasterStack) -> None:
        self._stack = stack
        self._grids: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}
        self._windows: dict[tuple, np.ndarray] = {}
        self._cells: dict[tuple, np.ndarray] = {}

    def grid(self, window: tuple[int, int, int, int]):
        """Flat (rows, cols) cell coordinates of ``window``."""
        cached = self._grids.get(window)
        if cached is None:
            row0, col0, row1, col1 = window
            rows, cols = np.meshgrid(
                np.arange(row0, row1), np.arange(col0, col1), indexing="ij"
            )
            rows = rows.reshape(-1)
            cols = cols.reshape(-1)
            rows.setflags(write=False)
            cols.setflags(write=False)
            cached = (rows, cols)
            self._grids[window] = cached
        return cached

    def window(
        self, name: str, window: tuple[int, int, int, int],
        counter: CostCounter,
    ) -> np.ndarray:
        """``read_window`` of attribute ``name``, charged per caller."""
        key = (name, window)
        view = self._windows.get(key)
        if view is None:
            # Charge-free read into the cache; every consumer is charged
            # below, exactly like its own read_window call would be.
            view = self._stack[name].read_window(*window, None)
            self._windows[key] = view
        counter.add_data_points(view.size)
        return view

    def cells(
        self, name: str, window: tuple[int, int, int, int],
        rows: np.ndarray, cols: np.ndarray,
    ) -> np.ndarray:
        """Level-1 cascade gather ``values[rows, cols]`` for ``window``.

        The caller charges data points itself (mirroring the uncached
        cascade path, which gathers directly off ``.values``).
        """
        key = (name, window)
        values = self._cells.get(key)
        if values is None:
            values = self._stack[name].gather(rows, cols)
            values.setflags(write=False)
            self._cells[key] = values
        return values


class RasterRetrievalEngine:
    """Top-K model retrieval over an aligned raster stack.

    Parameters
    ----------
    stack:
        Attribute layers (e.g. TM bands + DEM).
    leaf_size:
        Tile-screen leaf window; the unit of exact evaluation.

    Notes
    -----
    The tile screen (quadtree aggregates) is built once at construction
    and excluded from query counters, mirroring the paper's treatment of
    index construction as amortized.
    """

    def __init__(self, stack: RasterStack, leaf_size: int = 16) -> None:
        if not stack.names:
            raise PlanError("engine needs a non-empty stack")
        self.stack = stack
        self.screen = TileScreen(stack, leaf_size=leaf_size)

    # -- baseline ----------------------------------------------------------

    def exhaustive_top_k(self, query: TopKQuery) -> RetrievalResult:
        """Sequential-scan baseline: full model on every cell."""
        if query.fused:
            raise QueryError(
                "fused (similar_to) queries need embeddings; use "
                "RetrievalService.top_k"
            )
        counter = CostCounter()
        model = query.model
        row0, col0, row1, col1 = query.clip_region(self.stack.shape)

        columns = {}
        for name in model.attributes:
            layer = self.stack[name]
            columns[name] = layer.read_window(row0, col0, row1, col1, counter)
        scores = model.evaluate_batch(columns)
        n_cells = scores.size
        counter.add_model_evals(n_cells, flops_each=model.complexity)

        sign = 1.0 if query.maximize else -1.0
        heap = TopKHeap(query.k)
        flat = (sign * scores).reshape(-1)
        window_cols = col1 - col0
        # offer_block partition-prefilters down to the k best (plus
        # boundary-score ties, which its tie-break settles) before any
        # Python-level push.
        flat_rows, flat_cols = divmod(np.arange(flat.size), window_cols)
        heap.offer_block(flat, row0 + flat_rows, col0 + flat_cols)

        answers = [
            ScoredLocation(row=cell[0], col=cell[1], score=sign * signed)
            for signed, cell in heap.ranked()
        ]
        return RetrievalResult(
            answers=answers, counter=counter, strategy="exhaustive"
        )

    # -- progressive -------------------------------------------------------

    def progressive_top_k(
        self,
        query: TopKQuery,
        use_tiles: bool = True,
        use_model_levels: bool = True,
        term_order: tuple[str, ...] | None = None,
        pruning: str = "sound",
        heuristic_margin: float = 0.7,
        work_budget: int | None = None,
        cancel: "CancellationToken | None" = None,
    ) -> RetrievalResult:
        """Progressive retrieval with either/both pruning mechanisms.

        ``term_order`` overrides the level cascade's attribute order
        (normally contribution-ordered); the planner ablation uses it to
        compare orderings. With both flags false this degenerates to the
        exhaustive scan (kept callable so the ablation grid is uniform).

        ``pruning`` selects the tile screen's bound source: ``"sound"``
        (min/max envelopes — exact results, the default) or
        ``"heuristic"`` (mean +/- ``heuristic_margin`` half-spreads —
        faster, may *miss answers*; the DESIGN.md pruning-rule ablation).

        ``work_budget`` makes the retrieval *anytime* (Section 3.1's
        "incremental generation of model predictions"): once counted
        work passes the budget, tile-level search stops and the result
        carries a sound ``regret_bound`` — how much better any
        unexamined location could still score. Requires ``use_tiles``.

        ``cancel`` makes the tile search cooperatively cancellable
        (deadline or explicit): the branch-and-bound loop polls the
        token between frontier pops and, once it fires, returns a
        partial result flagged ``complete=False`` whose answers are
        prefix-sound — every returned score is exact, but better cells
        may remain unexplored. Only the tile path polls; the
        ``use_tiles=False`` strategies evaluate one window and finish.
        """
        if query.fused:
            raise QueryError(
                "fused (similar_to) queries need embeddings; use "
                "RetrievalService.top_k"
            )
        if pruning not in ("sound", "heuristic"):
            raise QueryError(f"unknown pruning mode {pruning!r}")
        if work_budget is not None:
            if work_budget <= 0:
                raise QueryError("work_budget must be positive")
            if not use_tiles:
                raise QueryError(
                    "anytime retrieval needs the tile frontier; run with "
                    "use_tiles=True"
                )
        if not use_tiles and not use_model_levels:
            result = self.exhaustive_top_k(query)
            result.strategy = "none"
            return result

        counter = CostCounter()
        audit = PruningAudit()
        model = query.model
        sign = 1.0 if query.maximize else -1.0
        heap = TopKHeap(query.k)
        region = query.clip_region(self.stack.shape)

        progressive = (
            self._build_progressive(model, term_order)
            if use_model_levels
            else None
        )
        if use_model_levels and progressive is None:
            raise QueryError(
                f"model {type(model).__name__} does not support progressive "
                "levels; run with use_model_levels=False"
            )
        if use_tiles and not model.supports_intervals:
            raise QueryError(
                f"model {type(model).__name__} cannot bound intervals; "
                "run with use_tiles=False"
            )

        regret_bound: float | None = None
        complete = True
        if use_tiles:
            regret_bound, complete = self._tile_search(
                query, progressive, heap, sign, region, counter, audit,
                pruning=pruning, heuristic_margin=heuristic_margin,
                work_budget=work_budget, cancel=cancel,
            )
        else:
            self._evaluate_window(
                query, progressive, heap, sign, region, counter, audit
            )

        answers = [
            ScoredLocation(row=cell[0], col=cell[1], score=sign * signed)
            for signed, cell in heap.ranked()
        ]
        strategy = {
            (True, True): "both",
            (True, False): "data-progressive",
            (False, True): "model-progressive",
        }[(use_tiles, use_model_levels)]
        if pruning == "heuristic" and use_tiles:
            strategy += "-heuristic"
        if work_budget is not None:
            strategy += "-anytime"
        if not complete:
            strategy += "-partial"
        return RetrievalResult(
            answers=answers, counter=counter, audit=audit, strategy=strategy,
            regret_bound=regret_bound, complete=complete,
        )

    def _build_progressive(
        self, model: Model, term_order: tuple[str, ...] | None = None
    ) -> ProgressiveLinearModel | None:
        """Contribution-ordered levels for linear models, None otherwise.

        ``term_order`` forces an explicit cascade order instead of the
        default contribution ranking.
        """
        if not isinstance(model, LinearModel):
            return None
        ranges = self.screen.attribute_ranges()
        missing = [a for a in model.attributes if a not in ranges]
        if missing:
            raise QueryError(f"stack lacks model attributes {missing}")
        spreads = {
            name: high - low
            for name, (low, high) in ranges.items()
            if name in model.attributes
        }
        if term_order is not None:
            if sorted(term_order) != sorted(model.attributes):
                raise QueryError(
                    f"term_order {term_order} does not cover the model's "
                    f"attributes {model.attributes}"
                )
            contributions = [
                TermContribution(
                    attribute=name,
                    coefficient=model.coefficients[name],
                    spread=spreads[name],
                )
                for name in term_order
            ]
        else:
            contributions = analyze_contributions(model, spreads=spreads)
        return ProgressiveLinearModel(
            model,
            contributions,
            {name: ranges[name] for name in model.attributes},
        )

    def _tile_search(
        self,
        query: TopKQuery,
        progressive: ProgressiveLinearModel | None,
        heap: TopKHeap,
        sign: float,
        region: tuple[int, int, int, int],
        counter: CostCounter,
        audit: PruningAudit,
        pruning: str = "sound",
        heuristic_margin: float = 0.7,
        work_budget: int | None = None,
        roots: list[ScreenNode] | None = None,
        cancel: "CancellationToken | None" = None,
        fusion: "FusionSpec | None" = None,
    ) -> tuple[float | None, bool]:
        """Best-first branch-and-bound over the tile screen.

        ``roots`` overrides the starting frontier (default: the global
        screen root); shard searches pass the minimal node cover of
        their sub-region so bands skip the shared upper tree levels.

        ``fusion`` (a :class:`repro.embed.fusion.FusionSpec`, duck-typed
        here to keep core free of an embed dependency) blends embedding
        similarity into both the node bounds and the leaf scores; the
        search then maximizes the combined objective
        ``alpha * model + (1 - alpha) * cosine`` with bounds that stay
        sound because both terms are bounded independently (DESIGN.md
        §10). Fused search runs without a level cascade
        (``progressive`` must be None).

        ``cancel`` is polled once per frontier pop (the loop check that
        makes shard searches cooperatively cancellable); when it fires
        the search stops with whatever the heap holds. Leaf evaluations
        are never interrupted, so every heap entry is an exact score.

        Returns ``(regret_bound, complete)``: the anytime regret bound
        when a ``work_budget`` was set (0.0 when the search finished
        within budget, else the bound at the early stop) or ``None``
        without a budget, and whether the search ran to exhaustion
        rather than being cancelled.
        """
        model = query.model
        tiebreak = itertools.count()
        if fusion is not None and progressive is not None:
            raise QueryError(
                "fused search blends whole-model bounds; the level cascade "
                "does not apply (run with use_model_levels=False)"
            )

        def block_uppers(nodes: list[ScreenNode]) -> list[float]:
            """Signed upper bounds for a whole frontier batch.

            One envelope fancy-index + one ``evaluate_interval_batch``
            replaces per-node dict building and scalar interval calls;
            charged identically to ``len(nodes)`` scalar boundings.
            """
            if pruning == "heuristic":
                envelopes = self.screen.heuristic_envelopes_block(
                    nodes, heuristic_margin, counter
                )
            else:
                envelopes = self.screen.envelopes_block(nodes, counter)
            counter.add_partial_evals(len(nodes), flops_each=model.complexity)
            lows = {name: pair[0] for name, pair in envelopes.items()}
            highs = {name: pair[1] for name, pair in envelopes.items()}
            low, high = model.evaluate_interval_batch(lows, highs)
            if fusion is not None:
                low, high = fusion.combine_bounds(nodes, low, high, counter)
            uppers = high if sign > 0 else -low
            return uppers.tolist()

        if roots is None:
            roots = [self.screen.root()]
        frontier = []
        for upper, root in zip(block_uppers(roots), roots):
            heapq.heappush(frontier, (-upper, next(tiebreak), root))
            audit.root_tiles(root.depth, 1)

        region_row0, region_col0, region_row1, region_col1 = region

        def intersects_region(node: ScreenNode) -> bool:
            row0, col0, row1, col1 = node.window
            return (
                row0 < region_row1
                and region_row0 < row1
                and col0 < region_col1
                and region_col0 < col1
            )

        while frontier:
            if cancel is not None and cancel.cancelled:
                # Cooperative stop: return the heap as-is. Offers happen
                # only after exact leaf evaluation, so the partial answer
                # set is prefix-sound (exact scores, possibly not the
                # true top-K).
                _audit_abandoned(
                    audit, frontier, cancel.reason or "cancelled"
                )
                if work_budget is not None:
                    best_remaining = -frontier[0][0]
                    return max(0.0, best_remaining - heap.threshold), False
                return None, False
            if (
                work_budget is not None
                and counter.total_work >= work_budget
            ):
                # Anytime stop: the best remaining frontier bound caps how
                # much any unexamined location can beat the K-th best.
                _audit_abandoned(audit, frontier, "budget")
                best_remaining = -frontier[0][0]
                return max(0.0, best_remaining - heap.threshold), True
            neg_upper, _, node = heapq.heappop(frontier)
            upper = -neg_upper
            if heap.full and upper < heap.threshold:
                # Every remaining node is bounded below the K-th best:
                # the popped node and the rest of the frontier retire
                # under the global threshold (waterfall reason only —
                # they are not envelope prunes, so ``tiles_pruned``
                # stays untouched).
                audit.prune_tiles(node.depth, 1, reason="threshold")
                _audit_abandoned(audit, frontier, "threshold")
                break
            if node.is_leaf:
                row0, col0, row1, col1 = node.window
                window = (
                    max(row0, region_row0),
                    max(col0, region_col0),
                    min(row1, region_row1),
                    min(col1, region_col1),
                )
                self._evaluate_window(
                    query, progressive, heap, sign, window, counter, audit,
                    fusion=fusion,
                )
                continue
            all_children = self.screen.children(node)
            children = [
                child for child in all_children if intersects_region(child)
            ]
            if len(children) < len(all_children):
                audit.prune_tiles(
                    node.depth + 1,
                    len(all_children) - len(children),
                    reason="region",
                )
            if not children:
                continue
            child_uppers = block_uppers(children)
            audit.screen_tiles(node.depth + 1, len(children))
            # One threshold read covers the whole sibling batch: the heap
            # cannot change between siblings here (offers happen only at
            # leaves), and under a shared heap a concurrently-raised
            # threshold only ever tightens pruning.
            full = heap.full
            prune_below = heap.threshold
            for child_upper, child in zip(child_uppers, children):
                if full and child_upper < prune_below:
                    audit.prune_tiles(child.depth, 1)
                    continue
                heapq.heappush(
                    frontier, (-child_upper, next(tiebreak), child)
                )
        return (0.0 if work_budget is not None else None), True

    # -- shard entry points (the repro.service concurrency layer) ----------

    def prepare_tile_query(
        self,
        query: TopKQuery,
        use_model_levels: bool = True,
        term_order: tuple[str, ...] | None = None,
    ) -> ProgressiveLinearModel | None:
        """Validate ``query`` for tile search and build its level cascade.

        Performs the same compatibility checks as
        :meth:`progressive_top_k` with ``use_tiles=True`` and returns the
        cascade (or ``None`` when ``use_model_levels`` is false). The
        returned object is read-only during search, so one instance can
        be shared across concurrent :meth:`shard_search` calls.
        """
        model = query.model
        progressive = (
            self._build_progressive(model, term_order)
            if use_model_levels
            else None
        )
        if use_model_levels and progressive is None:
            raise QueryError(
                f"model {type(model).__name__} does not support progressive "
                "levels; run with use_model_levels=False"
            )
        if not model.supports_intervals:
            raise QueryError(
                f"model {type(model).__name__} cannot bound intervals; "
                "tile search needs evaluate_interval"
            )
        return progressive

    def shard_search(
        self,
        query: TopKQuery,
        region: tuple[int, int, int, int],
        heap: TopKHeap,
        counter: CostCounter,
        audit: PruningAudit,
        progressive: ProgressiveLinearModel | None = None,
        pruning: str = "sound",
        heuristic_margin: float = 0.7,
        cancel: "CancellationToken | None" = None,
        fusion: "FusionSpec | None" = None,
    ) -> bool:
        """Branch-and-bound restricted to ``region`` against a shared heap.

        The shard-scoped search entry point: ``region`` is an absolute,
        already-clipped grid window (one row band of a query's region),
        and the frontier starts from the screen's minimal node cover of
        that window. ``heap`` may be shared — and must then be lock-
        protected — across concurrent shard searches: because every
        pruning test compares *strictly* against the heap threshold, a
        threshold raised by another shard's discoveries only tightens
        pruning and never drops an answer.

        ``cancel`` (a :class:`~repro.service.tracing.CancellationToken`)
        is polled between frontier pops; when it fires the shard stops
        promptly, leaving its exact discoveries in the shared heap.
        Returns whether the shard ran to completion (``False`` when the
        token stopped it early).
        """
        sign = 1.0 if query.maximize else -1.0
        _, complete = self._tile_search(
            query, progressive, heap, sign, region, counter, audit,
            pruning=pruning, heuristic_margin=heuristic_margin,
            roots=self.screen.region_roots(region), cancel=cancel,
            fusion=fusion,
        )
        return complete

    def shared_scan_search(
        self,
        specs: list[BatchQuerySpec],
        region: tuple[int, int, int, int],
        pruning: str = "sound",
        heuristic_margin: float = 0.7,
    ) -> None:
        """One archive traversal answering every spec's query.

        Each query keeps its own best-first frontier and replays exactly
        the decision sequence its solo :meth:`shard_search` over
        ``region`` would make — same pops, same thresholds, same pruning
        — so every answer is bit-for-bit the solo answer and every
        per-query counter/audit is bit-for-bit the solo tally. What the
        scan *shares* is the archive side of the work: child-node
        construction, envelope block fetches, node bounds, and
        leaf-window reads are each computed once per batch and memoized
        (plain linear models sharing an attribute order are bounded
        stacked — one elementwise pass covers the whole group, bitwise
        identical per model), so the batch pays the traversal cost once
        while each query is still charged the attributable work its
        solo search would have counted.

        Queries advance round-robin, one frontier step per turn; a query
        *retires* — drops out of the scan while the others continue —
        when its frontier empties, when its best remaining bound falls
        below its own top-K threshold, or when its cancel token fires
        (the only case marked ``spec.complete = False``; its answers are
        then prefix-sound). Specs are mutated in place: heaps hold the
        answers, ``complete`` and ``attributed_seconds`` are filled per
        spec.
        """
        if pruning not in ("sound", "heuristic"):
            raise QueryError(f"unknown pruning mode {pruning!r}")
        if not specs:
            return
        for spec in specs:
            if spec.query.fused:
                raise QueryError(
                    "shared-scan batches cannot blend embeddings; fused "
                    "(similar_to) members are planned as singletons"
                )
            if not spec.query.model.supports_intervals:
                raise QueryError(
                    f"model {type(spec.query.model).__name__} cannot bound "
                    "intervals; tile search needs evaluate_interval"
                )
        screen = self.screen
        n_attributes = len(screen.attributes)
        roots = screen.region_roots(region)
        region_row0, region_col0, region_row1, region_col1 = region

        # Batch-wide memos. Envelope/children keys are node coordinates
        # (all specs share one region, so region filtering agrees);
        # bounds additionally key on the model instance, so same-model
        # specs (different k, direction, or deadline) share bound work.
        children_memo: dict[tuple, tuple[list[ScreenNode], int]] = {}
        envelope_memo: dict[tuple, tuple[dict, dict]] = {}
        bounds_memo: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}
        reads = _SharedLeafReads(self.stack)

        # Plain linear models sharing one attribute order are bounded
        # *stacked*: the first query to pop a block computes the whole
        # group's bounds in one elementwise pass (bitwise identical per
        # row to each model's own evaluate_interval_batch) and seeds the
        # memo for everyone. Other model families bound per model.
        linear_groups: dict[tuple[str, ...], list[LinearModel]] = {}
        for spec in specs:
            model = spec.query.model
            if type(model) is LinearModel:
                group = linear_groups.setdefault(model.attributes, [])
                if not any(member is model for member in group):
                    group.append(model)
        stack_group_of: dict[int, list[LinearModel]] = {
            id(member): group
            for group in linear_groups.values()
            if len(group) >= 2
            for member in group
        }

        def intersects_region(node: ScreenNode) -> bool:
            row0, col0, row1, col1 = node.window
            return (
                row0 < region_row1
                and region_row0 < row1
                and col0 < region_col1
                and region_col0 < col1
            )

        def filtered_children(
            node: ScreenNode,
        ) -> tuple[list[ScreenNode], int]:
            """``(in-region children, region-dropped count)`` of ``node``.

            The dropped count is memoized beside the list so every
            query's audit records the same region-miss tally its solo
            search would.
            """
            key = (node.depth, node.row_index, node.col_index)
            cached = children_memo.get(key)
            if cached is None:
                all_children = screen.children(node)
                children = [
                    child
                    for child in all_children
                    if intersects_region(child)
                ]
                cached = (children, len(all_children) - len(children))
                children_memo[key] = cached
            return cached

        def envelopes_for(key: tuple, nodes: list[ScreenNode]):
            cached = envelope_memo.get(key)
            if cached is None:
                if pruning == "heuristic":
                    envelopes = screen.heuristic_envelopes_block(
                        nodes, heuristic_margin, None
                    )
                else:
                    envelopes = screen.envelopes_block(nodes, None)
                lows = {name: pair[0] for name, pair in envelopes.items()}
                highs = {name: pair[1] for name, pair in envelopes.items()}
                cached = (lows, highs)
                envelope_memo[key] = cached
            return cached

        def bound_block(
            state: "_ScanState", key: tuple, nodes: list[ScreenNode]
        ) -> list[float]:
            """Signed upper bounds of ``nodes`` for one spec's model.

            Charged identically to the solo search's ``block_uppers``
            (one aggregate-node visit per attribute per node, one
            partial model evaluation per node), whether or not the
            envelope fetch and interval evaluation hit the memos.
            """
            spec = state.spec
            spec.counter.add_nodes(len(nodes) * n_attributes)
            spec.counter.add_partial_evals(
                len(nodes), flops_each=state.model.complexity
            )
            bound_key = (id(state.model), key)
            bounds = bounds_memo.get(bound_key)
            if bounds is None:
                lows, highs = envelopes_for(key, nodes)
                group = stack_group_of.get(id(state.model))
                if group is not None:
                    for member, member_bounds in zip(
                        group, stacked_interval_batch(group, lows, highs)
                    ):
                        bounds_memo[(id(member), key)] = member_bounds
                    bounds = bounds_memo[bound_key]
                else:
                    bounds = state.model.evaluate_interval_batch(
                        lows, highs
                    )
                    bounds_memo[bound_key] = bounds
            low, high = bounds
            uppers = high if state.sign > 0 else -low
            return uppers.tolist()

        class _ScanState:
            __slots__ = ("spec", "model", "sign", "frontier", "tiebreak")

            def __init__(self, spec: BatchQuerySpec) -> None:
                self.spec = spec
                self.model = spec.query.model
                self.sign = 1.0 if spec.query.maximize else -1.0
                self.frontier: list = []
                self.tiebreak = itertools.count()

        def step(state: _ScanState) -> bool:
            """One frontier pop for one query; False once it retires.

            This is the loop body of :meth:`_tile_search`, verbatim in
            ordering: frontier-empty exit, then the cancel poll, then
            the pop and threshold break, then leaf evaluation or child
            screening — so the decision sequence (and therefore answers,
            counters, and audits) matches the solo search exactly.
            """
            spec = state.spec
            if not state.frontier:
                return False
            if spec.cancel is not None and spec.cancel.cancelled:
                _audit_abandoned(
                    spec.audit, state.frontier,
                    spec.cancel.reason or "cancelled",
                )
                spec.complete = False
                return False
            heap = spec.heap
            neg_upper, _, node = heapq.heappop(state.frontier)
            if heap.full and -neg_upper < heap.threshold:
                spec.audit.prune_tiles(node.depth, 1, reason="threshold")
                _audit_abandoned(spec.audit, state.frontier, "threshold")
                state.frontier.clear()
                return False
            if node.is_leaf:
                row0, col0, row1, col1 = node.window
                window = (
                    max(row0, region_row0),
                    max(col0, region_col0),
                    min(row1, region_row1),
                    min(col1, region_col1),
                )
                self._evaluate_window(
                    spec.query, spec.progressive, heap, state.sign, window,
                    spec.counter, spec.audit, reads=reads,
                )
                return True
            children, region_dropped = filtered_children(node)
            if region_dropped:
                spec.audit.prune_tiles(
                    node.depth + 1, region_dropped, reason="region"
                )
            if not children:
                return True
            key = (node.depth, node.row_index, node.col_index)
            child_uppers = bound_block(state, key, children)
            spec.audit.screen_tiles(node.depth + 1, len(children))
            full = heap.full
            prune_below = heap.threshold
            for child_upper, child in zip(child_uppers, children):
                if full and child_upper < prune_below:
                    spec.audit.prune_tiles(child.depth, 1)
                    continue
                heapq.heappush(
                    state.frontier,
                    (-child_upper, next(state.tiebreak), child),
                )
            return True

        active: list[_ScanState] = []
        for spec in specs:
            state = _ScanState(spec)
            start = time.perf_counter()
            for upper, root in zip(
                bound_block(state, ("region-roots",), roots), roots
            ):
                heapq.heappush(
                    state.frontier, (-upper, next(state.tiebreak), root)
                )
                spec.audit.root_tiles(root.depth, 1)
            spec.attributed_seconds += time.perf_counter() - start
            active.append(state)

        while active:
            survivors = []
            for state in active:
                start = time.perf_counter()
                alive = step(state)
                state.spec.attributed_seconds += (
                    time.perf_counter() - start
                )
                if alive:
                    survivors.append(state)
            active = survivors

    def _evaluate_window(
        self,
        query: TopKQuery,
        progressive: ProgressiveLinearModel | None,
        heap: TopKHeap,
        sign: float,
        window: tuple[int, int, int, int],
        counter: CostCounter,
        audit: PruningAudit,
        reads: "_SharedLeafReads | None" = None,
        fusion: "FusionSpec | None" = None,
    ) -> None:
        """Exact evaluation of a window, with optional level cascade.

        ``reads`` plugs in a shared-scan memo: cell-grid and attribute
        reads are served from (and populate) the batch-wide cache instead
        of being recomputed, while ``counter`` is charged exactly as the
        uncached path charges — sharing saves wall clock, never counted
        work.

        ``fusion`` blends the containing tile's embedding cosine into
        every cell's score before the sign is applied; fused windows
        arrive from the tile search, so each lies inside a single screen
        leaf and shares one cosine.
        """
        row0, col0, row1, col1 = window
        if row0 >= row1 or col0 >= col1:
            return
        model = query.model

        if reads is not None:
            rows, cols = reads.grid(window)
        else:
            rows, cols = np.meshgrid(
                np.arange(row0, row1), np.arange(col0, col1), indexing="ij"
            )
            rows = rows.reshape(-1)
            cols = cols.reshape(-1)

        if progressive is None:
            columns = {}
            for name in model.attributes:
                if reads is not None:
                    columns[name] = reads.window(name, window, counter)
                else:
                    layer = self.stack[name]
                    columns[name] = layer.read_window(
                        row0, col0, row1, col1, counter
                    )
            scores = model.evaluate_batch(columns).reshape(-1)
            counter.add_model_evals(scores.size, flops_each=model.complexity)
            if fusion is not None:
                scores = fusion.combine_window(window, scores, counter)
            heap.offer_block(sign * scores, rows, cols)
            return

        # Level cascade: evaluate one contribution-ordered term at a time,
        # pruning candidates whose best completion cannot reach the K-th
        # best signed score. After level 1, candidates are processed in
        # descending partial-score order ("more complete model on the
        # regions predicted high risk sooner", Section 3.1): the heap
        # fills with strong scores early, so later candidates prune after
        # reading only the first attribute.
        coefficients = progressive.model.coefficients
        ordered = [term.attribute for term in progressive.contributions]
        n_levels = len(ordered)

        first_attribute = ordered[0]
        audit.enter_level(1, rows.size)
        if reads is not None:
            values = reads.cells(first_attribute, window, rows, cols)
        else:
            values = self.stack[first_attribute].gather(rows, cols)
        counter.add_data_points(values.size)
        partial = progressive.model.intercept + (
            coefficients[first_attribute] * values
        )
        counter.add_partial_evals(values.size, flops_each=2)

        if n_levels == 1:
            heap.offer_block(sign * partial, rows, cols)
            return

        signed_partial = sign * partial
        order = np.argsort(-signed_partial, kind="stable")
        tail_low_1, tail_high_1 = progressive._tail_bounds(1)
        signed_tail_1 = max(sign * tail_low_1, sign * tail_high_1)

        block_size = max(4 * query.k, 256)
        for start in range(0, order.size, block_size):
            block = order[start: start + block_size]
            # Every remaining candidate's bound is at most the block
            # leader's; once that falls below the K-th best, stop.
            if heap.full and (
                signed_partial[block[0]] + signed_tail_1 < heap.threshold
            ):
                audit.prune_at_level(1, int(order.size - start))
                break

            block_rows = rows[block]
            block_cols = cols[block]
            block_partial = partial[block]
            for level, attribute in enumerate(ordered[1:], start=2):
                if heap.full:
                    tail_low, tail_high = progressive._tail_bounds(level - 1)
                    signed_tail = max(sign * tail_low, sign * tail_high)
                    upper = sign * block_partial + signed_tail
                    keep = upper >= heap.threshold
                    pruned = int(np.count_nonzero(~keep))
                    if pruned:
                        audit.prune_at_level(level - 1, pruned)
                        block_rows = block_rows[keep]
                        block_cols = block_cols[keep]
                        block_partial = block_partial[keep]
                        if block_rows.size == 0:
                            break
                audit.enter_level(level, block_rows.size)
                layer_values = self.stack[attribute].gather(
                    block_rows, block_cols
                )
                counter.add_data_points(layer_values.size)
                block_partial = block_partial + (
                    coefficients[attribute] * layer_values
                )
                counter.add_partial_evals(layer_values.size, flops_each=2)
            else:
                heap.offer_block(sign * block_partial, block_rows, block_cols)
