"""Multi-modal fusion retrieval.

Section 1's scenarios are explicitly multi-modal: the HPS model fuses
"remotely sensed images, weather information, GIS and demographic
information"; Figure 3's note reads "this model is multi-modal, as it
consists of data from images and weather pattern."

:class:`MultiModalQuery` fuses per-location evidence from heterogeneous
sources into one [0, 1] score:

* **raster factors** — a model over aligned raster layers, min-max
  normalized to a degree;
* **region factors** — a constant degree per station region, computed
  from that region's time series (e.g. an FSM score or a wet-then-dry
  detector) and broadcast over the cells it covers;
* fusion by weighted average or fuzzy AND.

Retrieval stays cheap because raster factors run through the progressive
engine's exhaustive/batch path and region factors are O(#regions); the
fusion itself is a per-cell combination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.data.raster import RasterStack
from repro.data.series import TimeSeries
from repro.exceptions import QueryError
from repro.metrics.counters import CostCounter
from repro.models.base import Model


@dataclass(frozen=True)
class RasterFactor:
    """A raster-model factor: scores normalized to [0, 1] over the grid."""

    name: str
    model: Model
    weight: float = 1.0

    def degrees(
        self, stack: RasterStack, counter: CostCounter | None = None
    ) -> np.ndarray:
        """Min-max-normalized model scores over the whole grid."""
        columns = {}
        for attribute in self.model.attributes:
            layer = stack[attribute]
            columns[attribute] = layer.read_all(counter)
        scores = self.model.evaluate_batch(columns)
        if counter is not None:
            counter.add_model_evals(
                scores.size, flops_each=self.model.complexity
            )
        low, high = scores.min(), scores.max()
        if high == low:
            return np.full(scores.shape, 0.5)
        return (scores - low) / (high - low)


@dataclass(frozen=True)
class RegionFactor:
    """A per-region factor from station series.

    ``regions`` maps a region key to the half-open grid window it covers;
    ``series`` maps the same keys to that region's time series;
    ``score`` turns one series into a [0, 1] degree.
    """

    name: str
    regions: dict[tuple[int, int], tuple[int, int, int, int]]
    series: dict[tuple[int, int], TimeSeries]
    score: Callable[[TimeSeries, CostCounter | None], float]
    weight: float = 1.0

    def degrees(
        self, shape: tuple[int, int], counter: CostCounter | None = None
    ) -> np.ndarray:
        """Broadcast each region's degree over its window."""
        if set(self.regions) != set(self.series):
            raise QueryError(
                f"factor {self.name!r}: regions and series keys differ"
            )
        grid = np.zeros(shape)
        covered = np.zeros(shape, dtype=bool)
        for key, (row0, col0, row1, col1) in self.regions.items():
            degree = float(self.score(self.series[key], counter))
            if not 0.0 <= degree <= 1.0:
                raise QueryError(
                    f"factor {self.name!r}: degree {degree} outside [0, 1]"
                )
            grid[row0:row1, col0:col1] = degree
            covered[row0:row1, col0:col1] = True
        if not covered.all():
            raise QueryError(
                f"factor {self.name!r}: regions do not tile the grid"
            )
        return grid


class MultiModalQuery:
    """Fused multi-modal top-K retrieval over one study area.

    Parameters
    ----------
    stack:
        Aligned raster layers (the imagery/elevation modality).
    raster_factors, region_factors:
        The evidence sources; at least one factor total.
    fusion:
        ``"weighted"`` (weight-normalized average) or ``"and"``
        (minimum — the conjunctive knowledge-model reading).
    """

    def __init__(
        self,
        stack: RasterStack,
        raster_factors: Sequence[RasterFactor] = (),
        region_factors: Sequence[RegionFactor] = (),
        fusion: str = "weighted",
    ) -> None:
        if not raster_factors and not region_factors:
            raise QueryError("need at least one factor")
        if fusion not in ("weighted", "and"):
            raise QueryError(f"unknown fusion {fusion!r}")
        self.stack = stack
        self.raster_factors = tuple(raster_factors)
        self.region_factors = tuple(region_factors)
        self.fusion = fusion

    def fused_degrees(self, counter: CostCounter | None = None) -> np.ndarray:
        """The fused per-cell score surface in [0, 1]."""
        shape = self.stack.shape
        layers: list[tuple[float, np.ndarray]] = []
        for factor in self.raster_factors:
            layers.append((factor.weight, factor.degrees(self.stack, counter)))
        for factor in self.region_factors:
            layers.append((factor.weight, factor.degrees(shape, counter)))

        if self.fusion == "and":
            fused = layers[0][1]
            for _, degrees in layers[1:]:
                fused = np.minimum(fused, degrees)
            return fused
        total_weight = sum(weight for weight, _ in layers)
        fused = np.zeros(shape)
        for weight, degrees in layers:
            fused = fused + weight * degrees
        return fused / total_weight

    def top_k(
        self, k: int, counter: CostCounter | None = None
    ) -> list[tuple[tuple[int, int], float]]:
        """The K highest fused-score cells, best first (ties row-major)."""
        if k <= 0:
            raise QueryError("k must be positive")
        fused = self.fused_degrees(counter)
        flat_order = np.argsort(-fused, axis=None, kind="stable")[:k]
        rows, cols = np.unravel_index(flat_order, fused.shape)
        return [
            ((int(row), int(col)), float(fused[row, col]))
            for row, col in zip(rows, cols)
        ]
