"""The Figure 5 model-revision workflow.

The paper's workflow for utilizing model-based retrieval:

1. develop a hypothetical decision model,
2. fit the model coefficients on available (training) data,
3. retrieve the data subsets that satisfy/maximize the model,
4. revise the model using the retrieved data,
5. apply the revised model to a much bigger data set,
6. repeat 3-4 as necessary.

The paper's complaint about the status quo is step 5: "substantial
re-computation on the entire data set is required even when there is a
small revision of the model," which makes revision loops impractically
expensive. :class:`ModelingWorkflow` runs the loop with a pluggable
retrieval strategy so the benchmark can price revision iterations with
and without progressive execution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.engine import RasterRetrievalEngine
from repro.core.query import TopKQuery
from repro.core.results import RetrievalResult
from repro.exceptions import ModelError
from repro.metrics.counters import CostCounter
from repro.models.linear import LinearModel, fit_linear_model


@dataclass(frozen=True)
class WorkflowIteration:
    """Record of one hypothesize/fit/retrieve/revise cycle."""

    iteration: int
    model: LinearModel
    result: RetrievalResult
    training_rows: int
    coefficient_delta: float

    @property
    def cost(self) -> CostCounter:
        """Retrieval work spent this iteration."""
        return self.result.counter


class ModelingWorkflow:
    """Iterative model revision over an archive (Figure 5).

    Parameters
    ----------
    engine:
        Retrieval engine over the target archive's raster stack.
    target_layer_name:
        Name of the (training) response layer in the engine's stack —
        e.g. historical incident counts the risk model is fit against.
    progressive:
        Whether retrieval runs progressively (the paper's framework) or
        exhaustively (the status quo being replaced).
    """

    def __init__(
        self,
        engine: RasterRetrievalEngine,
        target_layer_name: str,
        progressive: bool = True,
    ) -> None:
        if target_layer_name not in engine.stack:
            raise ModelError(
                f"stack has no training target layer {target_layer_name!r}"
            )
        self.engine = engine
        self.target_layer_name = target_layer_name
        self.progressive = progressive
        self.iterations: list[WorkflowIteration] = []

    def _fit(
        self,
        attribute_names: tuple[str, ...],
        sample_cells: list[tuple[int, int]],
    ) -> LinearModel:
        """Fit a linear model on the given training cells."""
        if len(sample_cells) < len(attribute_names) + 1:
            raise ModelError(
                f"{len(sample_cells)} training cells cannot fit "
                f"{len(attribute_names)} coefficients"
            )
        rows = np.array([cell[0] for cell in sample_cells])
        cols = np.array([cell[1] for cell in sample_cells])
        columns = {
            name: self.engine.stack[name].values[rows, cols]
            for name in attribute_names
        }
        target = self.engine.stack[self.target_layer_name].values[rows, cols]
        return fit_linear_model(columns, target, name="workflow_fit")

    def _retrieve(self, model: LinearModel, k: int) -> RetrievalResult:
        query = TopKQuery(model=model, k=k)
        if self.progressive:
            return self.engine.progressive_top_k(query)
        return self.engine.exhaustive_top_k(query)

    @staticmethod
    def _coefficient_delta(
        previous: LinearModel | None, current: LinearModel
    ) -> float:
        if previous is None:
            return float("inf")
        keys = set(previous.coefficients) | set(current.coefficients)
        return float(
            np.sqrt(
                sum(
                    (
                        previous.coefficients.get(key, 0.0)
                        - current.coefficients.get(key, 0.0)
                    )
                    ** 2
                    for key in keys
                )
            )
        )

    def run(
        self,
        attribute_names: tuple[str, ...],
        initial_cells: list[tuple[int, int]],
        k: int = 25,
        max_iterations: int = 5,
        tolerance: float = 1e-3,
        seed: int = 0,
    ) -> list[WorkflowIteration]:
        """Run the revision loop to convergence or ``max_iterations``.

        Each cycle fits on the accumulated training cells, retrieves the
        current top-K, adds those cells (plus a few random probes so the
        training set stays diverse) to the training pool, and stops when
        successive coefficient vectors move less than ``tolerance``.
        """
        if max_iterations <= 0:
            raise ModelError("max_iterations must be positive")
        rng = np.random.default_rng(seed)
        rows_total, cols_total = self.engine.stack.shape
        training: list[tuple[int, int]] = list(initial_cells)
        previous: LinearModel | None = None
        self.iterations = []

        for iteration in range(max_iterations):
            model = self._fit(attribute_names, training)
            result = self._retrieve(model, k)
            delta = self._coefficient_delta(previous, model)
            self.iterations.append(
                WorkflowIteration(
                    iteration=iteration,
                    model=model,
                    result=result,
                    training_rows=len(training),
                    coefficient_delta=delta,
                )
            )
            if delta < tolerance:
                break
            previous = model

            # Revise: retrieved cells join the training pool (relevance
            # feedback), plus random probes to avoid collapse onto the
            # current model's favourites.
            seen = set(training)
            for location in result.locations:
                if location not in seen:
                    training.append(location)
                    seen.add(location)
            for _ in range(max(1, k // 5)):
                probe = (
                    int(rng.integers(0, rows_total)),
                    int(rng.integers(0, cols_total)),
                )
                if probe not in seen:
                    training.append(probe)
                    seen.add(probe)

        return self.iterations

    @property
    def total_cost(self) -> CostCounter:
        """Summed retrieval work across all iterations run."""
        total = CostCounter()
        for iteration in self.iterations:
            total = total + iteration.cost
        return total
