"""Naive O(L^M) fuzzy Cartesian query evaluation.

Enumerates every assignment in the full Cartesian product — the cost the
paper's SPROC complexity reduction is measured against. Only usable for
small L and M; the benchmark uses it both as the correctness oracle and
as the baseline series in the complexity plot.
"""

from __future__ import annotations

import heapq
import itertools

from repro.exceptions import QueryError
from repro.metrics.counters import CostCounter
from repro.sproc.query import Assignment, CompositeQuery


def naive_top_k(
    query: CompositeQuery,
    k: int,
    counter: CostCounter | None = None,
) -> list[tuple[Assignment, float]]:
    """Exact top-K assignments by full enumeration.

    Returns ``(assignment, score)`` pairs, best first; ties broken by
    assignment tuple so the ranking is deterministic. Each enumerated
    assignment is one model evaluation of ``2M - 1`` factor lookups.
    """
    if k <= 0:
        raise QueryError("k must be positive")

    heap: list[tuple[float, Assignment]] = []  # min-heap, keep K best
    n_factors = 2 * query.n_components - 1
    for assignment in itertools.product(
        range(query.n_objects), repeat=query.n_components
    ):
        score = query.score(assignment)
        if counter is not None:
            counter.add_tuples(1)
            counter.add_model_evals(1, flops_each=n_factors)
        # Negate assignment for tie-break: smaller assignment should win,
        # and the min-heap must therefore treat it as larger.
        entry = (score, tuple(-index for index in assignment))
        if len(heap) < k:
            heapq.heappush(heap, entry)
        elif entry > heap[0]:
            heapq.heapreplace(heap, entry)

    ranked = sorted(heap, key=lambda item: (-item[0], tuple(-i for i in item[1])))
    return [
        (tuple(-index for index in negated), score)
        for score, negated in ranked
    ]
