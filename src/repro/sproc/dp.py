"""The SPROC dynamic program: O(M * K * L^2).

The query's components form a chain, so top-K evaluation is a top-K-paths
problem on a layered graph: layer i holds the L objects weighted by their
unary scores, edges between consecutive layers carry compatibility
scores. Because the combiner is monotone (product or min of [0, 1]
factors), a partial assignment that scores below another partial ending
at the *same object* can never overtake it under any common extension —
so keeping the K best partials per (layer, object) is exact.

Work per stage: for each of L next-objects, merge the K best partials of
each of L predecessors → O(K * L^2) per stage, O(M * K * L^2) total,
matching the complexity the paper quotes for SPROC [15].
"""

from __future__ import annotations

from repro.exceptions import QueryError
from repro.metrics.counters import CostCounter
from repro.sproc.query import Assignment, CompositeQuery


def sproc_top_k(
    query: CompositeQuery,
    k: int,
    counter: CostCounter | None = None,
) -> list[tuple[Assignment, float]]:
    """Exact top-K assignments via the SPROC dynamic program.

    Returns ``(assignment, score)`` pairs, best first. The score list is
    always identical to :func:`repro.sproc.naive.naive_top_k`'s; when
    several assignments tie exactly, the specific representatives may
    differ (the DP keeps the best *partial* per object, and tied finals
    can descend from different partials).
    """
    if k <= 0:
        raise QueryError("k must be positive")

    n_objects = query.n_objects
    n_components = query.n_components

    # partials[obj] = list of (score, assignment) — the K best partial
    # assignments whose last component is obj, kept sorted best-first.
    partials: list[list[tuple[float, Assignment]]] = []
    for obj in range(n_objects):
        score = float(query.unary_scores[0, obj])
        if counter is not None:
            counter.add_tuples(1)
            counter.add_model_evals(1, flops_each=1)
        partials.append([(score, (obj,))])

    for stage in range(n_components - 1):
        next_partials: list[list[tuple[float, Assignment]]] = []
        for next_obj in range(n_objects):
            unary = float(query.unary_scores[stage + 1, next_obj])
            candidates: list[tuple[float, Assignment]] = []
            for prev_obj in range(n_objects):
                compat = query.compatibility(stage, prev_obj, next_obj)
                if counter is not None:
                    counter.add_tuples(1)
                for partial_score, assignment in partials[prev_obj]:
                    extended = query.extend(partial_score, compat, unary)
                    if counter is not None:
                        counter.add_model_evals(1, flops_each=2)
                    candidates.append((extended, assignment + (next_obj,)))
            # Keep the K best (deterministic tie-break on assignment).
            candidates.sort(key=lambda item: (-item[0], item[1]))
            next_partials.append(candidates[:k])
        partials = next_partials

    final: list[tuple[float, Assignment]] = []
    for per_object in partials:
        final.extend(per_object)
    final.sort(key=lambda item: (-item[0], item[1]))
    return [(assignment, score) for score, assignment in final[:k]]
