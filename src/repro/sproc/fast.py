"""Sorted best-first fuzzy Cartesian evaluation (the [16] improvement).

The improved algorithm the paper quotes — ``O(M*L*log L + sqrt(L*K) +
K^2*log K)`` — rests on two ideas: *sort* the per-component candidate
lists once (the ``M*L*log L`` term), then expand assignments best-first
with an admissible bound so only candidates that can still reach the
top-K are touched (the remaining sub-linear terms).

This module implements that strategy as an A*-style search over partial
assignments:

* each partial assignment's priority is its score times the product of
  the *maximum possible* unary scores of all remaining components (an
  admissible, monotonically consistent bound, since compatibility is at
  most 1);
* completed assignments therefore pop from the frontier in exact score
  order, and the search stops after K pops;
* explicit per-stage successor lists (when the query supplies them)
  confine expansion to non-zero-compatibility pairs — the sparsity that
  makes composite spatial queries sub-quadratic in practice.

Worst-case cost is still bounded by the DP's, but on realistic data
(scores concentrated near 0, sparse adjacency) the counted work tracks
the quoted quasi-linear complexity; the benchmark measures exactly this.
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from repro.exceptions import QueryError
from repro.metrics.counters import CostCounter
from repro.sproc.query import Assignment, CompositeQuery


def fast_top_k(
    query: CompositeQuery,
    k: int,
    counter: CostCounter | None = None,
) -> list[tuple[Assignment, float]]:
    """Exact top-K assignments via sorted best-first search.

    Returns the same answer list as the naive and DP evaluators (ties
    broken by assignment tuple).
    """
    if k <= 0:
        raise QueryError("k must be positive")

    n_components = query.n_components
    n_objects = query.n_objects

    # Sort stage-0 candidates by unary score (the M*L*log L term covers
    # all stages conceptually; only stage 0 needs materializing here, the
    # rest are bounded via suffix maxima).
    order0 = sorted(
        range(n_objects),
        key=lambda obj: (-float(query.unary_scores[0, obj]), obj),
    )
    if counter is not None:
        counter.add_tuples(n_objects)
        counter.note("sort_ops", n_objects * max(1.0, np.log2(max(2, n_objects))))

    # Admissible remaining-score bound: product (or min) of per-stage
    # maximum unary scores for components i..M-1.
    stage_max = query.unary_scores.max(axis=1)
    suffix_bound = np.ones(n_components + 1)
    if query.combiner == "product":
        for i in range(n_components - 1, -1, -1):
            suffix_bound[i] = suffix_bound[i + 1] * stage_max[i]
    else:  # min-combiner: bound is min of remaining maxima (or 1 if none)
        running = 1.0
        for i in range(n_components - 1, -1, -1):
            running = min(running, float(stage_max[i]))
            suffix_bound[i] = running

    def bound_with_remaining(partial_score: float, next_stage: int) -> float:
        if next_stage >= n_components:
            return partial_score
        if query.combiner == "product":
            return partial_score * float(suffix_bound[next_stage])
        return min(partial_score, float(suffix_bound[next_stage]))

    # Frontier entries: (-bound, tie, stage_filled, score, assignment).
    tiebreak = itertools.count()
    frontier: list[tuple[float, int, int, float, Assignment]] = []
    for obj in order0:
        unary = float(query.unary_scores[0, obj])
        bound = bound_with_remaining(unary, 1)
        heapq.heappush(
            frontier, (-bound, next(tiebreak), 1, unary, (obj,))
        )

    results: list[tuple[Assignment, float]] = []
    emitted: dict[float, list[Assignment]] = {}

    while frontier and len(results) < k:
        neg_bound, _, filled, score, assignment = heapq.heappop(frontier)
        if counter is not None:
            counter.add_nodes(1)
        if filled == n_components:
            results.append((assignment, score))
            emitted.setdefault(score, []).append(assignment)
            continue
        stage = filled - 1  # edge linking component stage -> stage+1
        prev_obj = assignment[-1]
        for next_obj in query.successors_of(stage, prev_obj):
            compat = query.compatibility(stage, prev_obj, next_obj)
            if compat <= 0.0:
                continue
            unary = float(query.unary_scores[filled, next_obj])
            extended = query.extend(score, compat, unary)
            if counter is not None:
                counter.add_tuples(1)
                counter.add_model_evals(1, flops_each=2)
            bound = bound_with_remaining(extended, filled + 1)
            heapq.heappush(
                frontier,
                (-bound, next(tiebreak), filled + 1, extended, assignment + (next_obj,)),
            )

    # Best-first pop order guarantees score order but not the library's
    # deterministic tie-break; normalize ties by assignment tuple.
    results.sort(key=lambda item: (-item[1], item[0]))
    return results
