"""The fuzzy Cartesian (composite-object) query model.

A :class:`CompositeQuery` asks for M components drawn from L database
objects: component i assigns each object a fuzzy unary score in [0, 1]
(how well the object plays role i), and consecutive components are linked
by a pairwise *compatibility* score in [0, 1] (spatial adjacency,
"within 10 ft", ordering). An :class:`Assignment` is one object per
component; its score combines unary and pairwise factors with a monotone
combiner (product by default, min optionally).

The Figure 4 geology query is the running example: components
(shale, sandstone, siltstone) with unary scores from lithology and
gamma-ray membership, compatibility = "immediately below".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.exceptions import QueryError

Assignment = tuple[int, ...]

PairScore = Callable[[int, int, int], float]
"""(stage, previous_object, next_object) -> compatibility in [0, 1]."""


@dataclass(frozen=True)
class _DenseCompat:
    """Compatibility backed by per-stage dense matrices."""

    matrices: tuple[np.ndarray, ...]

    def __call__(self, stage: int, prev_obj: int, next_obj: int) -> float:
        return float(self.matrices[stage][prev_obj, next_obj])


class CompositeQuery:
    """An M-component fuzzy Cartesian query over L objects.

    Parameters
    ----------
    component_names:
        Names of the M components (roles), in sequence order.
    unary_scores:
        Array of shape (M, L): ``unary_scores[i, o]`` is the fuzzy degree
        to which object ``o`` satisfies component ``i``. Values in [0, 1].
    compatibility:
        Either ``None`` (all pairs fully compatible), a callable
        ``(stage, prev, next) -> [0, 1]`` where stage ``i`` links
        component ``i`` to ``i+1``, or a sequence of M-1 dense (L, L)
        matrices.
    successors:
        Optional per-stage adjacency: ``successors[i][o]`` lists the
        objects with *non-zero* compatibility after object ``o`` at stage
        ``i``. Required by the fast algorithm to exploit sparsity; when
        omitted, all L objects are considered successors.
    combiner:
        ``"product"`` (default) or ``"min"`` — both monotone, which the
        DP's correctness requires.
    """

    def __init__(
        self,
        component_names: Sequence[str],
        unary_scores: np.ndarray,
        compatibility: PairScore | Sequence[np.ndarray] | None = None,
        successors: Sequence[Sequence[Sequence[int]]] | None = None,
        combiner: str = "product",
    ) -> None:
        self.component_names = tuple(component_names)
        scores = np.asarray(unary_scores, dtype=float)
        if scores.ndim != 2:
            raise QueryError("unary_scores must be (M, L)")
        if scores.shape[0] != len(self.component_names):
            raise QueryError(
                f"{scores.shape[0]} score rows for "
                f"{len(self.component_names)} components"
            )
        if scores.shape[0] == 0 or scores.shape[1] == 0:
            raise QueryError("query needs at least one component and object")
        if np.any(scores < 0) or np.any(scores > 1):
            raise QueryError("unary scores must lie in [0, 1]")
        if combiner not in ("product", "min"):
            raise QueryError(f"unknown combiner {combiner!r}")

        self.unary_scores = scores
        self.combiner = combiner

        if compatibility is None:
            self._compat: PairScore | None = None
        elif callable(compatibility):
            self._compat = compatibility
        else:
            matrices = tuple(np.asarray(m, dtype=float) for m in compatibility)
            if len(matrices) != self.n_components - 1:
                raise QueryError(
                    f"{len(matrices)} compatibility matrices for "
                    f"{self.n_components} components (need M-1)"
                )
            for matrix in matrices:
                if matrix.shape != (self.n_objects, self.n_objects):
                    raise QueryError(
                        f"compatibility matrix shape {matrix.shape}, "
                        f"expected {(self.n_objects, self.n_objects)}"
                    )
                if np.any(matrix < 0) or np.any(matrix > 1):
                    raise QueryError("compatibility must lie in [0, 1]")
            self._compat = _DenseCompat(matrices)

        if successors is not None:
            if len(successors) != self.n_components - 1:
                raise QueryError("successors must have M-1 stages")
            self._successors = [
                [list(objects) for objects in stage] for stage in successors
            ]
            for stage in self._successors:
                if len(stage) != self.n_objects:
                    raise QueryError("each successors stage needs L lists")
        else:
            self._successors = None

    @property
    def n_components(self) -> int:
        """M — number of query components."""
        return self.unary_scores.shape[0]

    @property
    def n_objects(self) -> int:
        """L — number of database objects."""
        return self.unary_scores.shape[1]

    def compatibility(self, stage: int, prev_obj: int, next_obj: int) -> float:
        """Pairwise score linking component ``stage`` to ``stage + 1``."""
        if not 0 <= stage < self.n_components - 1:
            raise QueryError(f"stage {stage} outside 0..{self.n_components - 2}")
        if self._compat is None:
            return 1.0
        return self._compat(stage, prev_obj, next_obj)

    def successors_of(self, stage: int, obj: int) -> list[int]:
        """Objects worth considering after ``obj`` at ``stage``.

        With explicit adjacency, only non-zero-compatibility successors;
        otherwise all L objects.
        """
        if self._successors is not None:
            return self._successors[stage][obj]
        return list(range(self.n_objects))

    def combine(self, factors: Sequence[float]) -> float:
        """Combine unary/pairwise factors into one score."""
        if not factors:
            raise QueryError("cannot combine zero factors")
        if self.combiner == "min":
            return min(factors)
        product = 1.0
        for factor in factors:
            product *= factor
        return product

    def extend(self, partial_score: float, *factors: float) -> float:
        """Extend a partial score by additional factors (monotone)."""
        if self.combiner == "min":
            return min((partial_score,) + factors)
        result = partial_score
        for factor in factors:
            result *= factor
        return result

    def score(self, assignment: Assignment) -> float:
        """Full score of one assignment (unary + pairwise factors)."""
        if len(assignment) != self.n_components:
            raise QueryError(
                f"assignment length {len(assignment)} != M={self.n_components}"
            )
        factors = [
            float(self.unary_scores[i, obj]) for i, obj in enumerate(assignment)
        ]
        factors += [
            self.compatibility(i, assignment[i], assignment[i + 1])
            for i in range(self.n_components - 1)
        ]
        return self.combine(factors)

    def __repr__(self) -> str:
        return (
            f"CompositeQuery(components={list(self.component_names)}, "
            f"objects={self.n_objects}, combiner={self.combiner!r})"
        )
