"""Spatial composite-object queries over imagery (SPROC's home domain).

Reference [15] is titled "SPROC: Sequential Processing for Content-Based
Retrieval of **Composite Objects**" — objects made of parts with spatial
relationships. The Figure 3 house rule is exactly such a query: a
*house* region whose surroundings are covered by a *bushes* region.

This module lifts the generic fuzzy Cartesian machinery to image
regions:

* candidate regions come from :func:`repro.abstraction.contours.
  threshold_regions` over semantic score layers;
* unary scores are the regions' mean semantic scores;
* pairwise compatibility is *surroundedness*: the fraction of the first
  region's 2-cell ring covered by the second region;
* the resulting :class:`~repro.sproc.query.CompositeQuery` is evaluated
  by any SPROC variant, so the naive/DP/fast work story carries over to
  imagery unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.abstraction.contours import Region, threshold_regions
from repro.data.raster import RasterLayer
from repro.exceptions import QueryError
from repro.metrics.counters import CostCounter
from repro.sproc.fast import fast_top_k
from repro.sproc.query import CompositeQuery


@dataclass(frozen=True)
class CompositeMatch:
    """One retrieved composite: the two regions and the combined score."""

    score: float
    primary: Region
    context: Region


def region_ring(region: Region, shape: tuple[int, int], width: int = 2) -> set[tuple[int, int]]:
    """The ring of cells within ``width`` of a region, excluding it."""
    rows, cols = shape
    ring: set[tuple[int, int]] = set()
    for row, col in region.cells:
        for d_row in range(-width, width + 1):
            for d_col in range(-width, width + 1):
                neighbour = (row + d_row, col + d_col)
                if (
                    0 <= neighbour[0] < rows
                    and 0 <= neighbour[1] < cols
                    and neighbour not in region.cells
                ):
                    ring.add(neighbour)
    return ring


def surroundedness(
    primary: Region,
    context: Region,
    shape: tuple[int, int],
    width: int = 2,
) -> float:
    """Fraction of ``primary``'s ring covered by ``context`` in [0, 1]."""
    ring = region_ring(primary, shape, width)
    if not ring:
        return 0.0
    covered = sum(1 for cell in ring if cell in context.cells)
    return covered / len(ring)


def surrounded_by_query(
    primary_layer: RasterLayer,
    context_layer: RasterLayer,
    primary_threshold: float = 0.5,
    context_threshold: float = 0.5,
    min_region_size: int = 6,
    ring_width: int = 2,
    counter: CostCounter | None = None,
) -> tuple[CompositeQuery, list[Region], list[Region]]:
    """Build the "primary surrounded by context" composite query.

    Objects are the union of primary-candidate and context-candidate
    regions; the primary component only scores primary candidates (by
    mean primary-layer score) and likewise for context, so cross-typed
    assignments score zero. Compatibility is surroundedness.

    Returns ``(query, primary_regions, context_regions)``; assignment
    indices < ``len(primary_regions)`` refer to primary regions, the
    rest to context regions.
    """
    if primary_layer.shape != context_layer.shape:
        raise QueryError("layers must share a grid")
    shape = primary_layer.shape

    primary_regions = [
        region
        for region in threshold_regions(
            primary_layer.values, primary_threshold, counter=counter
        )
        if region.size >= min_region_size
    ]
    context_regions = [
        region
        for region in threshold_regions(
            context_layer.values, context_threshold, counter=counter
        )
        if region.size >= min_region_size
    ]
    n_primary = len(primary_regions)
    n_objects = n_primary + len(context_regions)
    if n_objects == 0:
        raise QueryError("no candidate regions above the thresholds")

    def mean_score(layer: RasterLayer, region: Region) -> float:
        values = layer.values
        total = sum(values[cell] for cell in region.cells)
        if counter is not None:
            counter.add_data_points(region.size)
        return float(total / region.size)

    unary = np.zeros((2, n_objects))
    for index, region in enumerate(primary_regions):
        unary[0, index] = mean_score(primary_layer, region)
    for index, region in enumerate(context_regions):
        unary[1, n_primary + index] = mean_score(context_layer, region)

    # Precompute rings once; compatibility only links primary -> context.
    rings = {
        index: region_ring(region, shape, ring_width)
        for index, region in enumerate(primary_regions)
    }

    def compatibility(stage: int, prev_obj: int, next_obj: int) -> float:
        if prev_obj >= n_primary or next_obj < n_primary:
            return 0.0
        ring = rings[prev_obj]
        if not ring:
            return 0.0
        context = context_regions[next_obj - n_primary]
        covered = sum(1 for cell in ring if cell in context.cells)
        if counter is not None:
            counter.add_tuples(1)
        return covered / len(ring)

    successors = [
        [
            list(range(n_primary, n_objects)) if index < n_primary else []
            for index in range(n_objects)
        ]
    ]
    query = CompositeQuery(
        component_names=["primary", "context"],
        unary_scores=unary,
        compatibility=compatibility,
        successors=successors,
    )
    return query, primary_regions, context_regions


def find_surrounded(
    primary_layer: RasterLayer,
    context_layer: RasterLayer,
    k: int = 5,
    counter: CostCounter | None = None,
    **query_kwargs,
) -> list[CompositeMatch]:
    """Top-K "primary surrounded by context" composites, best first."""
    query, primary_regions, context_regions = surrounded_by_query(
        primary_layer, context_layer, counter=counter, **query_kwargs
    )
    n_primary = len(primary_regions)
    matches = []
    for assignment, score in fast_top_k(query, k, counter):
        if score <= 0.0:
            continue
        matches.append(
            CompositeMatch(
                score=float(score),
                primary=primary_regions[assignment[0]],
                context=context_regions[assignment[1] - n_primary],
            )
        )
    return matches
