"""SPROC: Sequential Processing of fuzzy Cartesian queries (Section 3.2).

The paper quotes its companion work [15, 16]: composite-object queries —
"locate the top-K data patterns that satisfy the fuzzy and/or
probabilistic rules" — are fuzzy Cartesian products whose naive
evaluation costs ``O(L^M)`` for L database objects and M query
components. SPROC's dynamic program reduces this to ``O(M*K*L^2)``, and
the improved algorithm of [16] to roughly
``O(M*L*log L + sqrt(L*K) + K^2*log K)``.

* :mod:`repro.sproc.query` — the query model: per-component fuzzy scores
  plus pairwise compatibility between consecutive components.
* :mod:`repro.sproc.naive` — exhaustive ``O(L^M)`` evaluation.
* :mod:`repro.sproc.dp` — the SPROC dynamic program.
* :mod:`repro.sproc.fast` — sorted best-first evaluation with admissible
  score bounds (the [16] improvement's sorted-list/early-termination
  idea).

All three return identical top-K answer sets (tested); they differ only
in counted work.
"""

from repro.sproc.dp import sproc_top_k
from repro.sproc.fast import fast_top_k
from repro.sproc.naive import naive_top_k
from repro.sproc.query import Assignment, CompositeQuery
from repro.sproc.spatial import (
    CompositeMatch,
    find_surrounded,
    surrounded_by_query,
    surroundedness,
)

__all__ = [
    "Assignment",
    "CompositeMatch",
    "CompositeQuery",
    "fast_top_k",
    "find_surrounded",
    "naive_top_k",
    "sproc_top_k",
    "surrounded_by_query",
    "surroundedness",
]
