"""Threshold-region (contour) extraction.

"Contours can be computed from a data array, allowing for very rapid
identification of areas with low or high parameter values, but with a
loss of accuracy." :func:`threshold_regions` extracts the connected
regions above (or below) a threshold — the semantic abstraction a query
can consult instead of raw pixels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.counters import CostCounter


@dataclass(frozen=True)
class Region:
    """One connected component of a thresholded grid."""

    label: int
    cells: frozenset[tuple[int, int]]
    bounding_box: tuple[int, int, int, int]

    @property
    def size(self) -> int:
        """Number of member cells."""
        return len(self.cells)

    @property
    def centroid(self) -> tuple[float, float]:
        """Mean (row, col) of member cells."""
        rows = [cell[0] for cell in self.cells]
        cols = [cell[1] for cell in self.cells]
        return (sum(rows) / len(rows), sum(cols) / len(cols))


def threshold_regions(
    values: np.ndarray,
    threshold: float,
    above: bool = True,
    connectivity: int = 4,
    counter: CostCounter | None = None,
) -> list[Region]:
    """Connected regions of cells above (or below) a threshold.

    Parameters
    ----------
    values:
        2-D grid.
    threshold:
        Cut value; strict comparison (``>`` or ``<``).
    above:
        Direction of the cut.
    connectivity:
        4 (edges) or 8 (edges + diagonals).

    Returns regions ordered by decreasing size (largest first), each with
    a half-open bounding box. One pass over the grid, charged as
    ``values.size`` data points.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 2:
        raise ValueError("values must be 2-D")
    if connectivity not in (4, 8):
        raise ValueError("connectivity must be 4 or 8")
    if counter is not None:
        counter.add_data_points(values.size)

    mask = values > threshold if above else values < threshold
    rows, cols = mask.shape
    labels = np.zeros(mask.shape, dtype=int)
    if connectivity == 4:
        offsets = ((-1, 0), (1, 0), (0, -1), (0, 1))
    else:
        offsets = (
            (-1, -1), (-1, 0), (-1, 1),
            (0, -1), (0, 1),
            (1, -1), (1, 0), (1, 1),
        )

    regions: list[Region] = []
    next_label = 0
    for seed_row in range(rows):
        for seed_col in range(cols):
            if not mask[seed_row, seed_col] or labels[seed_row, seed_col]:
                continue
            next_label += 1
            stack = [(seed_row, seed_col)]
            labels[seed_row, seed_col] = next_label
            members: list[tuple[int, int]] = []
            while stack:
                row, col = stack.pop()
                members.append((row, col))
                for d_row, d_col in offsets:
                    n_row, n_col = row + d_row, col + d_col
                    if (
                        0 <= n_row < rows
                        and 0 <= n_col < cols
                        and mask[n_row, n_col]
                        and not labels[n_row, n_col]
                    ):
                        labels[n_row, n_col] = next_label
                        stack.append((n_row, n_col))
            member_rows = [cell[0] for cell in members]
            member_cols = [cell[1] for cell in members]
            regions.append(
                Region(
                    label=next_label,
                    cells=frozenset(members),
                    bounding_box=(
                        min(member_rows),
                        min(member_cols),
                        max(member_rows) + 1,
                        max(member_cols) + 1,
                    ),
                )
            )
    regions.sort(key=lambda region: (-region.size, region.label))
    return regions
