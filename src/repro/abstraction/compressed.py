"""Compressed-domain progressive classification (the [13] mechanism).

Reference [13] ("Progressive Classification in the Compressed Domain for
Large EOS Satellite Databases") classifies directly from wavelet
*approximation coefficients* without full decompression: blocks whose
coarse coefficients decide the label confidently never get refined.

This module reproduces that formulation — complementary to
:mod:`repro.abstraction.semantics`, which uses min/max pyramid envelopes
and is exact. Compressed-domain classification from mean coefficients is
*approximate*: a block's mean can fall on one side of the class boundary
while some pixels fall on the other. The classifier therefore exposes a
confidence margin; blocks within the margin are refined one level, and
the benchmark measures the accuracy/work trade the paper's speedup quote
implicitly accepts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.abstraction.semantics import BlockClassifier
from repro.data.raster import RasterLayer
from repro.metrics.counters import CostCounter
from repro.pyramid.wavelet import approximation_as_means, haar_decompose_2d


@dataclass(frozen=True)
class CompressedClassification:
    """Result of compressed-domain classification.

    ``labels`` is the full-resolution label grid (approximate);
    ``refined_fraction`` the share of the area that needed refinement;
    ``agreement`` (when requested) the fraction of pixels whose label
    matches exact full-resolution classification.
    """

    labels: np.ndarray
    values_read: int
    refined_fraction: float
    agreement: float | None = None


def _pad_to_pow2(values: np.ndarray) -> np.ndarray:
    rows, cols = values.shape
    padded_rows = 1 << max(0, int(np.ceil(np.log2(max(rows, 1)))))
    padded_cols = 1 << max(0, int(np.ceil(np.log2(max(cols, 1)))))
    if (padded_rows, padded_cols) == (rows, cols):
        return values
    return np.pad(
        values, ((0, padded_rows - rows), (0, padded_cols - cols)),
        mode="edge",
    )


def classify_compressed(
    layer: RasterLayer,
    classifier: BlockClassifier,
    margin: float,
    n_levels: int = 4,
    compare_exact: bool = True,
    counter: CostCounter | None = None,
) -> CompressedClassification:
    """Classify from wavelet approximations, refining uncertain blocks.

    Parameters
    ----------
    layer:
        Source raster.
    classifier:
        Block classifier; uncertainty is judged through
        ``classifier.classify_interval(mean - margin, mean + margin)`` —
        a block is confident when that whole interval maps to one label.
    margin:
        Half-width of the confidence band around a block mean. Larger
        margins refine more (more work, higher agreement with exact).
    n_levels:
        Starting decomposition depth.
    compare_exact:
        Also compute agreement against exact per-pixel classification
        (for the accuracy/work trade report).

    Work accounting: each consulted approximation coefficient counts as
    one value read; refinement of a block reads the next level's four
    coefficients, and so on down to pixels.
    """
    if margin < 0:
        raise ValueError("margin must be non-negative")
    padded = _pad_to_pow2(layer.values)
    rows, cols = layer.shape
    max_levels = int(np.log2(min(padded.shape))) if min(padded.shape) > 1 else 0
    n_levels = max(0, min(n_levels, max_levels))

    # Mean maps per level: level 0 = raw pixels.
    means_by_level: list[np.ndarray] = [padded]
    current = padded
    for level in range(1, n_levels + 1):
        approx, _ = haar_decompose_2d(current, 1)
        current = approximation_as_means(approx, 1)
        means_by_level.append(current)

    labels = np.full(padded.shape, -1, dtype=int)
    values_read = 0
    refined_area = 0

    stack = [
        (n_levels, r, c)
        for r in range(means_by_level[n_levels].shape[0])
        for c in range(means_by_level[n_levels].shape[1])
    ]
    while stack:
        level, row, col = stack.pop()
        mean = float(means_by_level[level][row, col])
        values_read += 1
        scale = 2**level
        window = (
            slice(row * scale, (row + 1) * scale),
            slice(col * scale, (col + 1) * scale),
        )
        if level == 0:
            labels[window] = classifier.classify_value(mean)
            continue
        label = classifier.classify_interval(mean - margin, mean + margin)
        if label is not None:
            labels[window] = label
            continue
        refined_area += scale * scale
        finer = means_by_level[level - 1]
        for d_row in (0, 1):
            for d_col in (0, 1):
                child_row, child_col = 2 * row + d_row, 2 * col + d_col
                if child_row < finer.shape[0] and child_col < finer.shape[1]:
                    stack.append((level - 1, child_row, child_col))

    labels = labels[:rows, :cols]
    if counter is not None:
        counter.add_data_points(values_read)
        counter.add_model_evals(values_read, flops_each=1)

    agreement = None
    if compare_exact:
        exact = classifier.classify_array(layer.values)
        agreement = float(np.mean(labels == exact))

    return CompressedClassification(
        labels=labels,
        values_read=values_read,
        refined_fraction=refined_area / padded.size,
        agreement=agreement,
    )
