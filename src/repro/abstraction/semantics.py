"""Progressive block classification (experiment E2, reference [13]).

The paper credits progressive classification on progressively
represented data with a ~30x speedup. The mechanism reproduced here:

* a :class:`ThresholdClassifier` assigns semantic labels by binning a
  value (e.g. vegetation density classes from a band value);
* the :class:`ProgressiveClassifier` walks a resolution pyramid from the
  coarsest level down: a coarse cell whose (min, max) envelope falls
  entirely inside one label's bin is *certain* — every pixel under it
  gets that label for the cost of reading two aggregate values; only
  straddling cells descend. The result equals full-resolution
  classification exactly (envelopes are sound), but smooth imagery
  resolves most of its area at coarse levels.

The classifier interface is deliberately tiny (value → label, interval →
label-or-None) so other semantic layers can plug in.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.metrics.counters import CostCounter
from repro.pyramid.pyramid import ResolutionPyramid


class BlockClassifier(abc.ABC):
    """Label values; optionally decide labels from sound intervals."""

    @abc.abstractmethod
    def classify_value(self, value: float) -> int:
        """Label of a single value."""

    @abc.abstractmethod
    def classify_interval(self, low: float, high: float) -> int | None:
        """Label shared by every value in [low, high], or None."""

    def classify_array(self, values: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`classify_value` (override for speed)."""
        flat = np.asarray(values, dtype=float).reshape(-1)
        labels = np.fromiter(
            (self.classify_value(v) for v in flat), dtype=int, count=flat.size
        )
        return labels.reshape(np.asarray(values).shape)


class ThresholdClassifier(BlockClassifier):
    """Labels by binning against sorted thresholds.

    ``thresholds = [t1, .., tm]`` produce labels 0..m: label i covers
    ``(t_i, t_{i+1}]``-style bins per :func:`numpy.digitize` semantics.
    """

    def __init__(self, thresholds: list[float]) -> None:
        if not thresholds:
            raise ValueError("need at least one threshold")
        array = np.asarray(thresholds, dtype=float)
        if np.any(np.diff(array) <= 0):
            raise ValueError("thresholds must be strictly increasing")
        self.thresholds = array

    @property
    def n_labels(self) -> int:
        """Number of distinct labels."""
        return self.thresholds.size + 1

    def classify_value(self, value: float) -> int:
        return int(np.digitize(value, self.thresholds))

    def classify_interval(self, low: float, high: float) -> int | None:
        label_low = self.classify_value(low)
        label_high = self.classify_value(high)
        return label_low if label_low == label_high else None

    def classify_array(self, values: np.ndarray) -> np.ndarray:
        return np.digitize(np.asarray(values, dtype=float), self.thresholds)


@dataclass
class ClassificationAudit:
    """Where the progressive classifier resolved each area.

    ``cells_resolved_at_level[L]`` counts *original-resolution* pixels
    whose label was decided at pyramid level L.
    """

    cells_resolved_at_level: dict[int, int] = field(default_factory=dict)

    def resolved(self, level: int, n_pixels: int) -> None:
        """Record pixels resolved at a level."""
        self.cells_resolved_at_level[level] = (
            self.cells_resolved_at_level.get(level, 0) + n_pixels
        )

    @property
    def coarse_fraction(self) -> float:
        """Fraction of pixels resolved above level 0."""
        total = sum(self.cells_resolved_at_level.values())
        if total == 0:
            return 0.0
        fine = self.cells_resolved_at_level.get(0, 0)
        return 1.0 - fine / total


class ProgressiveClassifier:
    """Exact classification via coarse-to-fine pyramid descent."""

    def __init__(
        self, pyramid: ResolutionPyramid, classifier: BlockClassifier
    ) -> None:
        self.pyramid = pyramid
        self.classifier = classifier

    def classify_full(self, counter: CostCounter | None = None) -> np.ndarray:
        """Baseline: classify every original pixel."""
        values = self.pyramid.layer.values
        if counter is not None:
            counter.add_data_points(values.size)
            counter.add_model_evals(values.size, flops_each=1)
        return self.classifier.classify_array(values)

    def classify(
        self, counter: CostCounter | None = None
    ) -> tuple[np.ndarray, ClassificationAudit]:
        """Progressive classification; identical labels, less work.

        Returns the full-resolution label grid and an audit of which
        pyramid level resolved each pixel.
        """
        rows, cols = self.pyramid.layer.shape
        labels = np.full((rows, cols), -1, dtype=int)
        audit = ClassificationAudit()

        # Frontier of unresolved coarse cells per level, coarsest first.
        level_index = self.pyramid.n_levels - 1
        frontier = [
            (level_index, coarse_row, coarse_col)
            for coarse_row in range(self.pyramid.level(level_index).shape[0])
            for coarse_col in range(self.pyramid.level(level_index).shape[1])
        ]

        while frontier:
            level_i, coarse_row, coarse_col = frontier.pop()
            level = self.pyramid.level(level_i)
            row0, col0, row1, col1 = level.fine_window(coarse_row, coarse_col)
            row1, col1 = min(row1, rows), min(col1, cols)
            if row0 >= rows or col0 >= cols:
                continue

            if level_i == 0:
                value = float(level.mean[coarse_row, coarse_col])
                if counter is not None:
                    counter.add_data_points(1)
                    counter.add_model_evals(1, flops_each=1)
                labels[coarse_row, coarse_col] = self.classifier.classify_value(
                    value
                )
                audit.resolved(0, 1)
                continue

            low = float(level.minimum[coarse_row, coarse_col])
            high = float(level.maximum[coarse_row, coarse_col])
            if counter is not None:
                counter.add_data_points(2)
                counter.add_model_evals(1, flops_each=1)
            label = self.classifier.classify_interval(low, high)
            if label is not None:
                labels[row0:row1, col0:col1] = label
                audit.resolved(level_i, (row1 - row0) * (col1 - col0))
                continue

            # Uncertain: descend to the four child cells one level finer.
            child_level = self.pyramid.level(level_i - 1)
            child_rows, child_cols = child_level.shape
            for d_row in (0, 1):
                for d_col in (0, 1):
                    child_row = 2 * coarse_row + d_row
                    child_col = 2 * coarse_col + d_col
                    if child_row < child_rows and child_col < child_cols:
                        frontier.append((level_i - 1, child_row, child_col))

        return labels, audit
