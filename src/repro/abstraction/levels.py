"""The raw → feature → semantics → metadata abstraction ladder.

The paper's progressive data representation has two orthogonal axes:
resolution (handled by :mod:`repro.pyramid`) and *abstraction level* —
"raw data, features, semantics and metadata". :class:`AbstractionLadder`
materializes the three derived levels for a raster layer and reports the
data volume of each, making the "lower data volumes at the expense of
fidelity" trade measurable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.abstraction.features import BlockFeatures, extract_block_features
from repro.abstraction.semantics import BlockClassifier
from repro.data.raster import RasterLayer
from repro.metrics.counters import CostCounter


class AbstractionLevel(enum.IntEnum):
    """Abstraction levels ordered from most to least voluminous."""

    RAW = 0
    FEATURE = 1
    SEMANTIC = 2
    METADATA = 3


@dataclass(frozen=True)
class LayerMetadata:
    """Metadata-level summary of a layer: a handful of scalars."""

    name: str
    shape: tuple[int, int]
    minimum: float
    maximum: float
    mean: float
    std: float

    @property
    def n_values(self) -> int:
        """Data volume of this representation (scalar count)."""
        return 4


class AbstractionLadder:
    """Derived representations of one raster layer.

    Parameters
    ----------
    layer:
        Source raster.
    classifier:
        Labeller used for the semantic level.
    block_size:
        Feature/semantic block granularity.
    """

    def __init__(
        self,
        layer: RasterLayer,
        classifier: BlockClassifier,
        block_size: int = 8,
    ) -> None:
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.layer = layer
        self.classifier = classifier
        self.block_size = block_size
        self._features: dict[tuple[int, int], BlockFeatures] | None = None
        self._semantic: np.ndarray | None = None
        self._metadata: LayerMetadata | None = None

    def raw(self, counter: CostCounter | None = None) -> np.ndarray:
        """The raw level (full data volume)."""
        return self.layer.read_all(counter)

    def features(
        self, counter: CostCounter | None = None
    ) -> dict[tuple[int, int], BlockFeatures]:
        """Block feature level (computed once, cached)."""
        if self._features is None:
            self._features = extract_block_features(
                self.layer.values,
                self.block_size,
                expensive=True,
                counter=counter,
            )
        return self._features

    def semantics(self, counter: CostCounter | None = None) -> np.ndarray:
        """Block label grid (one label per block, from block means)."""
        if self._semantic is None:
            features = self.features(counter)
            block_rows = max(key[0] for key in features) + 1
            block_cols = max(key[1] for key in features) + 1
            labels = np.zeros((block_rows, block_cols), dtype=int)
            for (block_row, block_col), block_features in features.items():
                labels[block_row, block_col] = self.classifier.classify_value(
                    block_features.mean
                )
            self._semantic = labels
        return self._semantic

    def metadata(self) -> LayerMetadata:
        """Metadata level: four scalars describing the whole layer."""
        if self._metadata is None:
            values = self.layer.values
            self._metadata = LayerMetadata(
                name=self.layer.name,
                shape=self.layer.shape,
                minimum=float(values.min()),
                maximum=float(values.max()),
                mean=float(values.mean()),
                std=float(values.std()),
            )
        return self._metadata

    def data_volume(self, level: AbstractionLevel) -> int:
        """Value count of a representation level (the paper's "data
        volume" axis; strictly decreasing up the ladder)."""
        if level is AbstractionLevel.RAW:
            return self.layer.size
        if level is AbstractionLevel.FEATURE:
            return len(self.features()) * 8
        if level is AbstractionLevel.SEMANTIC:
            return int(self.semantics().size)
        return self.metadata().n_values
