"""Block feature extraction with cheap and expensive tiers.

The progressive feature extraction of [12] (which the paper credits with
a 4-8x speedup) works by computing *cheap* features first — enough to
discard most blocks — and spending the *expensive* features (texture
co-occurrence statistics) only on survivors. The two tiers here have the
cost asymmetry that makes the strategy pay:

* cheap: mean, variance, min, max — one pass, O(block) additions;
* expensive: gradient energy, edge density, and grey-level co-occurrence
  contrast/homogeneity — multiple passes plus a quantized co-occurrence
  accumulation, an order of magnitude more operations per pixel.

Work is charged to a :class:`~repro.metrics.counters.CostCounter` using
per-pixel operation counts so the E3 benchmark's speedup is measured in
counted work, not interpreter noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.counters import CostCounter

CHEAP_OPS_PER_PIXEL = 4
EXPENSIVE_OPS_PER_PIXEL = 40


@dataclass(frozen=True)
class BlockFeatures:
    """Feature vector of one raster block."""

    mean: float
    variance: float
    minimum: float
    maximum: float
    gradient_energy: float | None = None
    edge_density: float | None = None
    glcm_contrast: float | None = None
    glcm_homogeneity: float | None = None

    @property
    def has_expensive(self) -> bool:
        """Whether the expensive tier was computed."""
        return self.gradient_energy is not None

    def as_vector(self) -> np.ndarray:
        """Dense vector (expensive slots NaN when absent)."""
        return np.array(
            [
                self.mean,
                self.variance,
                self.minimum,
                self.maximum,
                np.nan if self.gradient_energy is None else self.gradient_energy,
                np.nan if self.edge_density is None else self.edge_density,
                np.nan if self.glcm_contrast is None else self.glcm_contrast,
                np.nan if self.glcm_homogeneity is None else self.glcm_homogeneity,
            ]
        )


def cheap_features(
    block: np.ndarray, counter: CostCounter | None = None
) -> BlockFeatures:
    """First-tier features: one-pass order statistics and moments."""
    block = np.asarray(block, dtype=float)
    if counter is not None:
        counter.add_data_points(block.size)
        counter.add_partial_evals(1, flops_each=CHEAP_OPS_PER_PIXEL * block.size)
    return BlockFeatures(
        mean=float(block.mean()),
        variance=float(block.var()),
        minimum=float(block.min()),
        maximum=float(block.max()),
    )


def _glcm_statistics(
    block: np.ndarray, n_levels: int = 8
) -> tuple[float, float]:
    """Grey-level co-occurrence contrast and homogeneity (offset (0, 1))."""
    low, high = block.min(), block.max()
    if high == low:
        return (0.0, 1.0)
    quantized = np.minimum(
        ((block - low) / (high - low) * n_levels).astype(int), n_levels - 1
    )
    left = quantized[:, :-1].reshape(-1)
    right = quantized[:, 1:].reshape(-1)
    counts = np.zeros((n_levels, n_levels))
    np.add.at(counts, (left, right), 1.0)
    total = counts.sum()
    if total == 0:
        return (0.0, 1.0)
    probabilities = counts / total
    i_index, j_index = np.indices((n_levels, n_levels))
    contrast = float(np.sum(probabilities * (i_index - j_index) ** 2))
    homogeneity = float(
        np.sum(probabilities / (1.0 + np.abs(i_index - j_index)))
    )
    return (contrast, homogeneity)


def expensive_features(
    block: np.ndarray,
    cheap: BlockFeatures | None = None,
    counter: CostCounter | None = None,
) -> BlockFeatures:
    """Full feature tier: cheap moments plus texture statistics.

    ``cheap`` avoids recomputing the first tier when it is already known
    (the progressive path); charging reflects only the expensive work in
    that case.
    """
    block = np.asarray(block, dtype=float)
    if cheap is None:
        cheap = cheap_features(block, counter)
    if counter is not None:
        counter.add_data_points(block.size)
        counter.add_model_evals(
            1, flops_each=EXPENSIVE_OPS_PER_PIXEL * block.size
        )

    grad_row, grad_col = np.gradient(block)
    gradient_energy = float(np.mean(grad_row**2 + grad_col**2))
    magnitude = np.sqrt(grad_row**2 + grad_col**2)
    threshold = magnitude.mean() + magnitude.std()
    edge_density = float(np.mean(magnitude > threshold))
    contrast, homogeneity = _glcm_statistics(block)

    return BlockFeatures(
        mean=cheap.mean,
        variance=cheap.variance,
        minimum=cheap.minimum,
        maximum=cheap.maximum,
        gradient_energy=gradient_energy,
        edge_density=edge_density,
        glcm_contrast=contrast,
        glcm_homogeneity=homogeneity,
    )


def extract_block_features(
    values: np.ndarray,
    block_size: int,
    expensive: bool = True,
    counter: CostCounter | None = None,
) -> dict[tuple[int, int], BlockFeatures]:
    """Extract features for every ``block_size``-square block of a grid.

    Returns ``(block_row, block_col) -> BlockFeatures``. Edge blocks are
    clipped. This is the exhaustive baseline the progressive strategy in
    the E3 benchmark is compared against.
    """
    values = np.asarray(values, dtype=float)
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    rows, cols = values.shape
    features: dict[tuple[int, int], BlockFeatures] = {}
    for block_row, row0 in enumerate(range(0, rows, block_size)):
        for block_col, col0 in enumerate(range(0, cols, block_size)):
            block = values[row0: row0 + block_size, col0: col0 + block_size]
            if expensive:
                features[(block_row, block_col)] = expensive_features(
                    block, counter=counter
                )
            else:
                features[(block_row, block_col)] = cheap_features(
                    block, counter=counter
                )
    return features
