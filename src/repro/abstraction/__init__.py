"""Multiple abstraction levels (paper Section 3.1).

"Multiple abstraction level representations rely on the fact that raw
information can be processed into alternate formulations such as features
(texture, color, shape, etc.) and semantics that require lower data
volumes at the expense of fidelity."

* :mod:`repro.abstraction.features` — block feature extraction (moments,
  histograms, texture energy, gradients), with cheap and expensive tiers
  for the progressive-extraction speedup of [12] (experiment E3);
* :mod:`repro.abstraction.contours` — threshold-region/contour
  extraction ("very rapid identification of areas with low or high
  parameter values, but with a loss of accuracy");
* :mod:`repro.abstraction.semantics` — block classifiers over pyramid
  levels, the progressive classification of [13] (experiment E2);
* :mod:`repro.abstraction.levels` — the raw → feature → semantics →
  metadata ladder as an explicit pipeline.
"""

from repro.abstraction.compressed import (
    CompressedClassification,
    classify_compressed,
)
from repro.abstraction.contours import threshold_regions
from repro.abstraction.features import (
    BlockFeatures,
    cheap_features,
    expensive_features,
    extract_block_features,
)
from repro.abstraction.levels import AbstractionLevel, AbstractionLadder
from repro.abstraction.semantics import (
    BlockClassifier,
    ProgressiveClassifier,
    ThresholdClassifier,
)

__all__ = [
    "AbstractionLadder",
    "AbstractionLevel",
    "BlockClassifier",
    "BlockFeatures",
    "CompressedClassification",
    "classify_compressed",
    "ProgressiveClassifier",
    "ThresholdClassifier",
    "cheap_features",
    "expensive_features",
    "extract_block_features",
    "threshold_regions",
]
