"""A grid-file index over numeric tuples (secondary range-query baseline).

Partitions the data space into a uniform grid of buckets; range queries
visit only intersecting buckets. Simpler than the R*-tree and often
competitive on uniform data, it rounds out the Section 3.2 comparison of
spatial indexes that are effective for range queries yet unhelpful for
locating model-maximizing tuples.
"""

from __future__ import annotations

import numpy as np

from repro.data.table import Table
from repro.exceptions import IndexError_
from repro.metrics.counters import CostCounter


class GridFileIndex:
    """Uniform grid index over selected table columns.

    Parameters
    ----------
    table:
        Source tuples.
    attributes:
        Columns to index; defaults to all.
    cells_per_dim:
        Grid resolution per dimension.
    """

    def __init__(
        self,
        table: Table,
        attributes: list[str] | None = None,
        cells_per_dim: int = 16,
    ) -> None:
        if cells_per_dim <= 0:
            raise IndexError_("cells_per_dim must be positive")
        self.table = table
        self.attributes = (
            list(attributes) if attributes is not None else table.column_names
        )
        if not self.attributes:
            raise IndexError_("need at least one attribute to index")
        self.cells_per_dim = cells_per_dim

        self._points = table.matrix(self.attributes)
        self._low = self._points.min(axis=0)
        self._high = self._points.max(axis=0)
        spans = self._high - self._low
        spans[spans == 0] = 1.0  # constant dimensions collapse to one cell
        self._spans = spans

        self._buckets: dict[tuple[int, ...], list[int]] = {}
        for row_index, point in enumerate(self._points):
            self._buckets.setdefault(self._cell_of(point), []).append(row_index)

    @property
    def n_dims(self) -> int:
        """Indexed dimensionality."""
        return len(self.attributes)

    @property
    def n_buckets(self) -> int:
        """Number of non-empty buckets."""
        return len(self._buckets)

    def _cell_of(self, point: np.ndarray) -> tuple[int, ...]:
        normalized = (point - self._low) / self._spans
        cell = np.clip(
            (normalized * self.cells_per_dim).astype(int),
            0,
            self.cells_per_dim - 1,
        )
        return tuple(int(c) for c in cell)

    def range_query(
        self,
        low: tuple[float, ...],
        high: tuple[float, ...],
        counter: CostCounter | None = None,
    ) -> list[int]:
        """Row ids of points in the closed box ``[low, high]``.

        Visits each intersecting bucket (tallied as a node) and filters
        its points exactly (tallied as tuples examined).
        """
        low_array = np.asarray(low, dtype=float)
        high_array = np.asarray(high, dtype=float)
        if low_array.size != self.n_dims or high_array.size != self.n_dims:
            raise IndexError_("query box dimensionality mismatch")
        if np.any(low_array > high_array):
            raise IndexError_("inverted query box")

        low_cell = self._cell_of(np.maximum(low_array, self._low))
        high_cell = self._cell_of(np.minimum(high_array, self._high))

        results: list[int] = []
        ranges = [
            range(low_cell[d], high_cell[d] + 1) for d in range(self.n_dims)
        ]

        def visit(cell: tuple[int, ...]) -> None:
            bucket = self._buckets.get(cell)
            if counter is not None:
                counter.add_nodes(1)
            if not bucket:
                return
            for row_index in bucket:
                if counter is not None:
                    counter.add_tuples(1)
                point = self._points[row_index]
                if np.all(point >= low_array) and np.all(point <= high_array):
                    results.append(row_index)

        def recurse(prefix: tuple[int, ...], depth: int) -> None:
            if depth == self.n_dims:
                visit(prefix)
                return
            for coordinate in ranges[depth]:
                recurse(prefix + (coordinate,), depth + 1)

        recurse((), 0)
        results.sort()
        return results

    def __repr__(self) -> str:
        return (
            f"GridFileIndex({self.table.name!r}, attributes={self.attributes}, "
            f"buckets={self.n_buckets})"
        )
