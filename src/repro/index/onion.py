"""The Onion index for linear-optimization top-K queries.

Reimplements the technique of Chang, Bergman, Castelli, Li, Lo and Smith,
"The Onion Technique: Indexing for Linear Optimization Queries" (SIGMOD
2000) — reference [11] of the reproduced paper, which quotes its result:
13,000x speedup for top-1 and 1,400x for top-10 over sequential scan on
three-attribute Gaussian data.

**Construction.** Partition the tuples into convex-hull layers by repeated
peeling (:func:`repro.index.hull.hull_layers`). Layer 1 is the outer hull,
layer 2 the hull of the interior, and so on.

**Query.** A linear objective ``w . x`` attains its maximum over any point
set at a vertex of the set's convex hull, so the best tuple is on layer 1;
inductively, the i-th best tuple lies within the first i layers. A top-K
query therefore evaluates only the tuples on the outermost K layers —
for Gaussian data a vanishing fraction of N — instead of all N tuples.

The optimal-layer containment gives an *exact* answer set; no
approximation is involved.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.data.table import Table
from repro.exceptions import IndexError_
from repro.index.hull import hull_layers
from repro.metrics.counters import CostCounter


class OnionIndex:
    """Convex-hull-layer index over a numeric table.

    Parameters
    ----------
    table:
        Source tuples.
    attributes:
        Columns to index (the model's attribute space); defaults to all.
    max_layers:
        Optional cap on peeling depth; remaining interior tuples form one
        final bucket. ``None`` peels fully (exact for any K). A cap
        trades build time for exactness only when K exceeds the cap.

    Notes
    -----
    Index construction cost is excluded from query counters (the paper's
    speedups compare query work; the index is built once and amortized).
    Build statistics are exposed via :attr:`n_layers` and
    :meth:`layer_sizes`.
    """

    def __init__(
        self,
        table: Table,
        attributes: list[str] | None = None,
        max_layers: int | None = None,
    ) -> None:
        self.table = table
        self.attributes = (
            list(attributes) if attributes is not None else table.column_names
        )
        if not self.attributes:
            raise IndexError_("need at least one attribute to index")
        if max_layers is not None and max_layers <= 0:
            raise IndexError_("max_layers must be positive")
        self._points = table.matrix(self.attributes)
        self._layers = hull_layers(self._points, max_layers=max_layers)
        self._capped = max_layers is not None
        self._max_layers = max_layers
        self._pending: list[np.ndarray] = []
        self._next_row = len(table)

    @property
    def n_layers(self) -> int:
        """Number of onion layers."""
        return len(self._layers)

    def layer_sizes(self) -> list[int]:
        """Tuple count per layer, outermost first."""
        return [int(layer.size) for layer in self._layers]

    def layer(self, index: int) -> np.ndarray:
        """Row indices on the given layer (0 = outermost)."""
        if not 0 <= index < len(self._layers):
            raise IndexError_(
                f"layer {index} outside 0..{len(self._layers) - 1}"
            )
        return self._layers[index]

    @property
    def n_pending(self) -> int:
        """Appended tuples not yet merged into the layers."""
        return len(self._pending)

    def insert(self, values: dict[str, float]) -> int:
        """Append a tuple (returns its new row id).

        Appends go to a delta buffer that queries scan alongside the
        layers — the standard maintenance scheme for peeled indexes
        (re-peeling on every insert would cost a full rebuild). Call
        :meth:`rebuild` once the buffer grows past a few percent of the
        data to restore full pruning power; queries stay *exact* either
        way.
        """
        missing = [a for a in self.attributes if a not in values]
        if missing:
            raise IndexError_(f"insert missing attributes {missing}")
        point = np.array([float(values[a]) for a in self.attributes])
        self._pending.append(point)
        row = self._next_row
        self._next_row += 1
        return row

    def rebuild(self) -> None:
        """Merge pending tuples and re-peel the layers."""
        if not self._pending:
            return
        self._points = np.vstack([self._points] + self._pending)
        self._pending = []
        self._layers = hull_layers(self._points, max_layers=self._max_layers)

    def _weights(self, model_weights: dict[str, float]) -> np.ndarray:
        missing = [a for a in self.attributes if a not in model_weights]
        if missing:
            raise IndexError_(f"query missing weights for {missing}")
        extra = [a for a in model_weights if a not in self.attributes]
        if extra:
            raise IndexError_(f"query has weights for unindexed attributes {extra}")
        return np.array([model_weights[a] for a in self.attributes])

    def top_k(
        self,
        model_weights: dict[str, float],
        k: int,
        maximize: bool = True,
        counter: CostCounter | None = None,
    ) -> list[tuple[int, float]]:
        """Exact top-K rows for the linear objective ``w . x``.

        Evaluates the outermost layers until K layers have been examined
        (the containment theorem guarantees the i-th best lies in the
        first i layers), plus any additional capped interior bucket if K
        exceeds the peeled depth. Returns ``(row_index, score)`` pairs,
        best first; work is tallied on ``counter``.
        """
        if k <= 0:
            raise IndexError_("k must be positive")
        weights = self._weights(model_weights)
        sign = 1.0 if maximize else -1.0

        # Min-heap of (signed score, -row): the root is the worst kept
        # answer under the service-wide tie-break (lowest score; among
        # score-equals the largest row), so a boundary-tying candidate
        # with a smaller row wins the eviction comparison and replaces
        # it. A strict score-only comparison here would keep whichever
        # tied row arrived first — hull-layer order, not row order.
        heap: list[tuple[float, int]] = []
        layers_needed = min(k, len(self._layers))
        if self._capped and k > len(self._layers) - 1:
            layers_needed = len(self._layers)  # include the interior bucket

        for layer_index in range(layers_needed):
            rows = self._layers[layer_index]
            scores = sign * (self._points[rows] @ weights)
            if counter is not None:
                counter.add_nodes(1)  # one layer visited
                counter.add_tuples(rows.size)
                counter.add_model_evals(
                    rows.size, flops_each=2 * len(self.attributes)
                )
            for row, score in zip(rows, scores):
                entry = (float(score), -int(row))
                if len(heap) < k:
                    heapq.heappush(heap, entry)
                elif entry > heap[0]:
                    heapq.heapreplace(heap, entry)

        # Appended tuples live outside the layers until rebuild(): scan
        # the delta buffer so queries stay exact. The buffer is one more
        # structure unit visited — tallied as a node so cost accounting
        # covers the same scanned tuples before and after rebuild().
        if self._pending and counter is not None:
            counter.add_nodes(1)
        base_rows = self._points.shape[0]
        for offset, point in enumerate(self._pending):
            score = sign * float(point @ weights)
            if counter is not None:
                counter.add_tuples(1)
                counter.add_model_evals(
                    1, flops_each=2 * len(self.attributes)
                )
            entry = (score, -(base_rows + offset))
            if len(heap) < k:
                heapq.heappush(heap, entry)
            elif entry > heap[0]:
                heapq.heapreplace(heap, entry)

        ranked = sorted(heap, key=lambda item: (-item[0], -item[1]))
        return [(-neg_row, sign * score) for score, neg_row in ranked]

    def __repr__(self) -> str:
        return (
            f"OnionIndex({self.table.name!r}, attributes={self.attributes}, "
            f"layers={self.n_layers})"
        )
