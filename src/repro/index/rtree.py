"""An R*-tree (Beckmann et al. 1990) over numeric tuples.

The paper positions R*-trees as the state of the art for spatial *range*
queries that is nonetheless "sub-optimal for model-based queries, as these
indices do not indicate where to find data points that will maximize the
model". Both halves are implemented so the claim is measurable:

* :meth:`RStarTree.range_query` — the query the structure is built for;
* :meth:`RStarTree.top_k_linear` — best-first linear top-K using MBR
  score bounds, the best an R-tree can do for a linear model; the Onion
  benchmark compares its tuple/node counts against the Onion index.

Implementation notes: quadratic ChooseSubtree with overlap-enlargement at
the leaf level, R*-topological split (axis by minimum margin sum, index by
minimum overlap then minimum area), and forced reinsertion of the 30%
furthest entries once per level per insertion.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.data.table import Table
from repro.exceptions import IndexError_
from repro.metrics.counters import CostCounter


@dataclass(frozen=True)
class Rect:
    """An axis-aligned box: ``low`` and ``high`` per dimension."""

    low: tuple[float, ...]
    high: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.low) != len(self.high):
            raise IndexError_("low/high dimensionality mismatch")
        if any(l > h for l, h in zip(self.low, self.high)):
            raise IndexError_(f"inverted rect {self.low} .. {self.high}")

    @classmethod
    def point(cls, coordinates: tuple[float, ...]) -> "Rect":
        """Degenerate box around a point."""
        return cls(tuple(coordinates), tuple(coordinates))

    @property
    def n_dims(self) -> int:
        """Dimensionality."""
        return len(self.low)

    def area(self) -> float:
        """Product of side lengths."""
        result = 1.0
        for l, h in zip(self.low, self.high):
            result *= h - l
        return result

    def margin(self) -> float:
        """Sum of side lengths (the R* split criterion)."""
        return sum(h - l for l, h in zip(self.low, self.high))

    def center(self) -> tuple[float, ...]:
        """Box center."""
        return tuple((l + h) / 2.0 for l, h in zip(self.low, self.high))

    def union(self, other: "Rect") -> "Rect":
        """Smallest box covering both."""
        return Rect(
            tuple(min(a, b) for a, b in zip(self.low, other.low)),
            tuple(max(a, b) for a, b in zip(self.high, other.high)),
        )

    def intersects(self, other: "Rect") -> bool:
        """Whether the boxes overlap (closed boxes)."""
        return all(
            sl <= oh and ol <= sh
            for sl, sh, ol, oh in zip(self.low, self.high, other.low, other.high)
        )

    def contains_point(self, point: tuple[float, ...]) -> bool:
        """Whether the point lies inside (closed) box."""
        return all(l <= p <= h for l, p, h in zip(self.low, point, self.high))

    def overlap_area(self, other: "Rect") -> float:
        """Area of the intersection (0 when disjoint)."""
        result = 1.0
        for sl, sh, ol, oh in zip(self.low, self.high, other.low, other.high):
            extent = min(sh, oh) - max(sl, ol)
            if extent <= 0:
                return 0.0
            result *= extent
        return result

    def enlargement(self, other: "Rect") -> float:
        """Area growth needed to absorb ``other``."""
        return self.union(other).area() - self.area()

    def linear_upper_bound(self, weights: np.ndarray) -> float:
        """Max of ``w . x`` over the box (per-dim corner selection)."""
        total = 0.0
        for weight, l, h in zip(weights, self.low, self.high):
            total += weight * (h if weight >= 0 else l)
        return total


@dataclass
class _Entry:
    """A node slot: a box plus either a child node or a data row id."""

    rect: Rect
    child: "_Node | None" = None
    row: int | None = None


@dataclass
class _Node:
    """An R-tree node. ``height`` is 1 for leaves, child height + 1 above."""

    leaf: bool
    height: int = 1
    entries: list[_Entry] = field(default_factory=list)

    def mbr(self) -> Rect:
        rect = self.entries[0].rect
        for entry in self.entries[1:]:
            rect = rect.union(entry.rect)
        return rect


class RStarTree:
    """R*-tree over points, built by one-at-a-time insertion.

    Parameters
    ----------
    n_dims:
        Dimensionality of indexed points.
    max_entries:
        Node capacity M (min capacity is ``0.4 * M`` per the R* paper).
    """

    def __init__(self, n_dims: int, max_entries: int = 16) -> None:
        if n_dims <= 0:
            raise IndexError_("n_dims must be positive")
        if max_entries < 4:
            raise IndexError_("max_entries must be at least 4")
        self.n_dims = n_dims
        self.max_entries = max_entries
        self.min_entries = max(2, int(0.4 * max_entries))
        self._root = _Node(leaf=True)
        self._size = 0
        self._reinsert_p = max(1, int(0.3 * max_entries))

    @classmethod
    def from_table(
        cls,
        table: Table,
        attributes: list[str] | None = None,
        max_entries: int = 16,
        bulk: bool = True,
    ) -> "RStarTree":
        """Build from every row of a table (row id = table row index).

        ``bulk=True`` (default) uses Sort-Tile-Recursive packing —
        O(N log N) and orders of magnitude faster than one-at-a-time R*
        insertion; ``bulk=False`` exercises the incremental insert path.
        """
        attributes = list(attributes or table.column_names)
        tree = cls(n_dims=len(attributes), max_entries=max_entries)
        matrix = table.matrix(attributes)
        if bulk:
            tree._bulk_load(matrix)
        else:
            for row_index in range(matrix.shape[0]):
                tree.insert(
                    tuple(float(v) for v in matrix[row_index]), row_index
                )
        return tree

    def _bulk_load(self, matrix: np.ndarray) -> None:
        """Sort-Tile-Recursive packing of all rows into a fresh tree."""
        if self._size:
            raise IndexError_("bulk load requires an empty tree")
        n_rows = matrix.shape[0]
        if n_rows == 0:
            return

        entries = [
            _Entry(rect=Rect.point(tuple(float(v) for v in matrix[row])), row=row)
            for row in range(n_rows)
        ]
        capacity = self.max_entries

        def pack(level_entries: list[_Entry], leaf: bool, height: int) -> _Node:
            if len(level_entries) <= capacity:
                return _Node(leaf=leaf, height=height, entries=level_entries)

            # STR: sort by dim 0, slice into vertical slabs, sort each slab
            # by dim 1, and so on recursively through the dimensions.
            def tile(
                items: list[_Entry], dims_left: int, node_capacity: int
            ) -> list[list[_Entry]]:
                if dims_left <= 1 or len(items) <= node_capacity:
                    items = sorted(items, key=lambda e: e.rect.center())
                    return [
                        items[i: i + node_capacity]
                        for i in range(0, len(items), node_capacity)
                    ]
                axis = self.n_dims - dims_left
                items = sorted(items, key=lambda e: e.rect.center()[axis])
                n_groups = -(-len(items) // node_capacity)
                n_slabs = int(np.ceil(n_groups ** (1.0 / dims_left)))
                slab_size = -(-len(items) // n_slabs)
                groups: list[list[_Entry]] = []
                for start in range(0, len(items), slab_size):
                    slab = items[start: start + slab_size]
                    groups.extend(tile(slab, dims_left - 1, node_capacity))
                return groups

            groups = tile(level_entries, self.n_dims, capacity)
            nodes = [
                _Node(leaf=leaf, height=height, entries=group)
                for group in groups
                if group
            ]
            parent_entries = [
                _Entry(rect=child.mbr(), child=child) for child in nodes
            ]
            return pack(parent_entries, leaf=False, height=height + 1)

        self._root = pack(entries, leaf=True, height=1)
        self._size = n_rows

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Tree height (1 = root is a leaf)."""
        return self._root.height

    # -- insertion -----------------------------------------------------------

    def insert(self, point: tuple[float, ...], row: int) -> None:
        """Insert a point with a data row id."""
        if len(point) != self.n_dims:
            raise IndexError_(
                f"point has {len(point)} dims, index has {self.n_dims}"
            )
        entry = _Entry(rect=Rect.point(point), row=row)
        self._insert_entry(entry, entry_height=0, reinserted_levels=set())
        self._size += 1

    def _insert_entry(
        self, entry: _Entry, entry_height: int, reinserted_levels: set[int]
    ) -> None:
        """Insert an entry into a node of height ``entry_height + 1``.

        Point entries have height 0 and land in leaves; subtree entries
        evicted from internal nodes during forced reinsertion carry their
        child's height and re-enter at the same level.
        """
        path = self._choose_path(entry.rect, target_height=entry_height + 1)
        node = path[-1]
        node.entries.append(entry)
        level = len(path) - 1
        self._handle_overflow(path, level, reinserted_levels)

    def _choose_path(self, rect: Rect, target_height: int) -> list[_Node]:
        """Descend choosing subtrees until a node of ``target_height``."""
        path = [self._root]
        node = self._root
        while node.height > target_height:
            children_are_leaves = node.entries[0].child.leaf  # type: ignore[union-attr]
            if children_are_leaves and target_height == 1:
                best = self._least_overlap_enlargement(node, rect)
            else:
                best = self._least_area_enlargement(node, rect)
            best.rect = best.rect.union(rect)
            node = best.child  # type: ignore[assignment]
            path.append(node)
        return path

    @staticmethod
    def _least_area_enlargement(node: _Node, rect: Rect) -> _Entry:
        return min(
            node.entries,
            key=lambda e: (e.rect.enlargement(rect), e.rect.area()),
        )

    @staticmethod
    def _least_overlap_enlargement(node: _Node, rect: Rect) -> _Entry:
        def overlap_delta(candidate: _Entry) -> float:
            enlarged = candidate.rect.union(rect)
            before = after = 0.0
            for other in node.entries:
                if other is candidate:
                    continue
                before += candidate.rect.overlap_area(other.rect)
                after += enlarged.overlap_area(other.rect)
            return after - before

        return min(
            node.entries,
            key=lambda e: (overlap_delta(e), e.rect.enlargement(rect), e.rect.area()),
        )

    def _handle_overflow(
        self, path: list[_Node], level: int, reinserted_levels: set[int]
    ) -> None:
        node = path[level]
        if len(node.entries) <= self.max_entries:
            self._tighten(path, level)
            return

        if level > 0 and level not in reinserted_levels:
            reinserted_levels.add(level)
            self._reinsert(path, level, reinserted_levels)
            return

        self._split(path, level, reinserted_levels)

    def _tighten(self, path: list[_Node], level: int) -> None:
        """Refresh MBRs of ancestors after a child changed."""
        for ancestor_level in range(level - 1, -1, -1):
            parent = path[ancestor_level]
            child = path[ancestor_level + 1]
            for entry in parent.entries:
                if entry.child is child:
                    entry.rect = child.mbr()
                    break

    def _reinsert(
        self, path: list[_Node], level: int, reinserted_levels: set[int]
    ) -> None:
        """Forced reinsertion: evict the p entries furthest from center."""
        node = path[level]
        center = np.array(node.mbr().center())

        def distance(entry: _Entry) -> float:
            return float(np.sum((np.array(entry.rect.center()) - center) ** 2))

        node.entries.sort(key=distance)
        evicted = node.entries[-self._reinsert_p:]
        del node.entries[-self._reinsert_p:]
        self._tighten(path, level)

        entry_height = 0 if node.leaf else node.height - 1
        for entry in evicted:
            self._insert_entry(
                entry, entry_height=entry_height,
                reinserted_levels=reinserted_levels,
            )

    def _split(
        self, path: list[_Node], level: int, reinserted_levels: set[int]
    ) -> None:
        node = path[level]
        group_a, group_b = self._rstar_split_groups(node.entries)
        node.entries = group_a
        sibling = _Node(leaf=node.leaf, height=node.height, entries=group_b)

        if level == 0:
            new_root = _Node(leaf=False, height=node.height + 1)
            new_root.entries = [
                _Entry(rect=node.mbr(), child=node),
                _Entry(rect=sibling.mbr(), child=sibling),
            ]
            self._root = new_root
            return

        parent = path[level - 1]
        for entry in parent.entries:
            if entry.child is node:
                entry.rect = node.mbr()
                break
        parent.entries.append(_Entry(rect=sibling.mbr(), child=sibling))
        self._handle_overflow(path[:level], level - 1, reinserted_levels)
        self._tighten(path, level - 1)

    def _rstar_split_groups(
        self, entries: list[_Entry]
    ) -> tuple[list[_Entry], list[_Entry]]:
        """R* topological split: best axis by margin, index by overlap."""
        best: tuple[float, float, float, list[_Entry], list[_Entry]] | None = None
        for axis in range(self.n_dims):
            for key_name in ("low", "high"):
                ordered = sorted(
                    entries, key=lambda e: getattr(e.rect, key_name)[axis]
                )
                for split_at in range(
                    self.min_entries, len(ordered) - self.min_entries + 1
                ):
                    group_a = ordered[:split_at]
                    group_b = ordered[split_at:]
                    mbr_a = group_a[0].rect
                    for entry in group_a[1:]:
                        mbr_a = mbr_a.union(entry.rect)
                    mbr_b = group_b[0].rect
                    for entry in group_b[1:]:
                        mbr_b = mbr_b.union(entry.rect)
                    margin = mbr_a.margin() + mbr_b.margin()
                    overlap = mbr_a.overlap_area(mbr_b)
                    area = mbr_a.area() + mbr_b.area()
                    candidate = (margin, overlap, area, group_a, group_b)
                    if best is None or candidate[:3] < best[:3]:
                        best = candidate
        assert best is not None  # len(entries) > max_entries >= 2*min_entries
        return best[3], best[4]

    # -- queries ---------------------------------------------------------

    def range_query(
        self, rect: Rect, counter: CostCounter | None = None
    ) -> list[int]:
        """Row ids of all points inside the (closed) box."""
        if rect.n_dims != self.n_dims:
            raise IndexError_("query rect dimensionality mismatch")
        results: list[int] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if counter is not None:
                counter.add_nodes(1)
            for entry in node.entries:
                if not entry.rect.intersects(rect):
                    continue
                if node.leaf:
                    if counter is not None:
                        counter.add_tuples(1)
                    results.append(entry.row)  # type: ignore[arg-type]
                else:
                    stack.append(entry.child)  # type: ignore[arg-type]
        results.sort()
        return results

    def top_k_linear(
        self,
        weights: np.ndarray,
        k: int,
        maximize: bool = True,
        counter: CostCounter | None = None,
    ) -> list[tuple[int, float]]:
        """Best-first top-K for a linear objective using MBR bounds.

        Explores nodes in decreasing order of their boxes' linear upper
        bound; a node is expanded only while its bound can still beat the
        current K-th best. Exact, but tuple/node counts reveal why the
        paper calls R-trees sub-optimal here: boxes bound linear scores
        loosely, so far more of the tree is touched than Onion layers.
        """
        if k <= 0:
            raise IndexError_("k must be positive")
        weights = np.asarray(weights, dtype=float)
        if weights.size != self.n_dims:
            raise IndexError_("weights dimensionality mismatch")
        if self._size == 0:
            return []
        signed = weights if maximize else -weights

        node_sequence = itertools.count()
        # Max-heap by upper bound (negate for heapq). Heap keys are
        # (-bound, kind, key): kind 0 = internal node, kind 1 = point, so
        # at equal bounds every node expands before any point emits —
        # a tied point hiding inside a box is surfaced before the tie is
        # consumed. Points carry their row as key, so equal-score points
        # pop row-ascending, the service-wide tie-break (see scan_top_k);
        # nodes use an insertion sequence, where order is free.
        heap: list[tuple[float, int, int, _Entry | None, _Node | None]] = [
            (-self._root.mbr().linear_upper_bound(signed), 0,
             next(node_sequence), None, self._root)
        ]
        results: list[tuple[int, float]] = []

        while heap and len(results) < k:
            bound_negated, kind, _, entry, node = heapq.heappop(heap)
            bound = -bound_negated
            if kind == 1:
                assert entry is not None and entry.row is not None
                score = bound  # for a point, the bound is the exact score
                results.append((entry.row, score if maximize else -score))
                continue
            target = node if node is not None else entry.child  # type: ignore[union-attr]
            if counter is not None:
                counter.add_nodes(1)
            for child_entry in target.entries:  # type: ignore[union-attr]
                child_bound = child_entry.rect.linear_upper_bound(signed)
                if child_entry.row is not None:
                    if counter is not None:
                        counter.add_tuples(1)
                        counter.add_model_evals(1, flops_each=2 * self.n_dims)
                    heapq.heappush(
                        heap,
                        (-child_bound, 1, child_entry.row, child_entry, None),
                    )
                else:
                    heapq.heappush(
                        heap,
                        (-child_bound, 0, next(node_sequence), None,
                         child_entry.child),
                    )
        return results

    def __repr__(self) -> str:
        return (
            f"RStarTree(n_dims={self.n_dims}, size={self._size}, "
            f"height={self.height})"
        )
