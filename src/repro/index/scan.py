"""Sequential-scan baseline (the denominator of every paper speedup).

"Almost all existing methods require applying the model sequentially over
the entire region of the data." :func:`scan_top_k` does exactly that —
evaluate the model on every tuple, keep a K-heap — with full cost
instrumentation.
"""

from __future__ import annotations

import heapq

from repro.data.table import Table
from repro.exceptions import QueryError
from repro.metrics.counters import CostCounter
from repro.models.base import Model


def scan_top_k(
    table: Table,
    model: Model,
    k: int,
    maximize: bool = True,
    counter: CostCounter | None = None,
) -> list[tuple[int, float]]:
    """Exact top-K rows by exhaustive model evaluation.

    Returns ``(row_index, score)`` pairs, best first (ties broken by row
    index). Every row is read through the instrumented table API and
    scored with ``model.evaluate``, so ``counter`` records the full
    O(n*N) work the paper ascribes to unindexed retrieval.

    This is the *differential oracle* for every table index: equal
    signed scores rank by ascending row, the service-wide convention.
    The canonical heap idiom — min-heap entries ``(signed_score, -row)``,
    evict when ``entry > heap[0]``, final sort ``(-score, row)`` — is
    what onion/csvd/rtree must reproduce bit-for-bit.
    """
    if k <= 0:
        raise QueryError("k must be positive")
    sign = 1.0 if maximize else -1.0

    # Min-heap of (signed score, -row); the root is the worst kept
    # answer (lowest score, largest row among ties), so an equal-score
    # smaller-row candidate compares greater and replaces it.
    heap: list[tuple[float, int]] = []
    for row_index in range(len(table)):
        attributes = table.row(row_index, counter)
        score = sign * model.evaluate(attributes)
        if counter is not None:
            counter.add_model_evals(1, flops_each=model.complexity)
        entry = (float(score), -row_index)
        if len(heap) < k:
            heapq.heappush(heap, entry)
        elif entry > heap[0]:
            heapq.heapreplace(heap, entry)

    ranked = sorted(heap, key=lambda item: (-item[0], -item[1]))
    return [(-neg_row, sign * score) for score, neg_row in ranked]
