"""Convex-hull peeling utilities for the Onion index.

:func:`hull_vertices` returns the indices of points on the convex hull of
a point set, handling every degeneracy scipy's Qhull refuses: one point,
collinear/coplanar sets, duplicated points, and d = 1. :func:`hull_layers`
peels a point set into onion layers (hull, hull of the remainder, ...).
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import ConvexHull, QhullError

from repro.exceptions import IndexError_


def _affine_rank(points: np.ndarray) -> int:
    """Dimension of the affine span of the points."""
    if points.shape[0] <= 1:
        return 0
    centered = points - points[0]
    return int(np.linalg.matrix_rank(centered, tol=1e-10))


def hull_vertices(points: np.ndarray) -> np.ndarray:
    """Indices of the convex-hull vertices of ``points``.

    Falls back gracefully on degenerate inputs:

    * 0/1/2 points, or points whose affine span is lower-dimensional than
      the ambient space, are projected onto their span and the hull is
      taken there (1-D span → the two extremes; 0-D → the single point).
    * Exact duplicates are collapsed before the hull and re-expanded after
      (only one representative of each duplicate group is returned).
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise IndexError_("points must be a 2-D array (n_points, n_dims)")
    n_points = points.shape[0]
    if n_points == 0:
        return np.array([], dtype=int)

    unique, representative_index = np.unique(points, axis=0, return_index=True)
    if unique.shape[0] == 1:
        return np.array([int(representative_index[0])])

    rank = _affine_rank(unique)
    if rank == 0:
        return np.array([int(representative_index[0])])
    if rank == 1:
        # Project onto the principal direction; extremes are the hull.
        direction = unique[-1] - unique[0]
        norm = np.linalg.norm(direction)
        projections = (unique - unique[0]) @ (direction / norm)
        extremes = {int(np.argmin(projections)), int(np.argmax(projections))}
        return np.sort(representative_index[list(extremes)])
    if rank < unique.shape[1]:
        # Lower-dimensional flat: project onto an orthonormal basis of the
        # span and take the hull in that subspace.
        centered = unique - unique[0]
        _, _, v_transpose = np.linalg.svd(centered, full_matrices=False)
        projected = centered @ v_transpose[:rank].T
        sub_vertices = hull_vertices(projected)
        return np.sort(representative_index[sub_vertices])

    try:
        hull = ConvexHull(unique)
        return np.sort(representative_index[hull.vertices])
    except QhullError:
        # Rare residual degeneracies: joggle the input.
        try:
            hull = ConvexHull(unique, qhull_options="QJ")
            return np.sort(representative_index[hull.vertices])
        except QhullError as error:
            raise IndexError_(f"convex hull failed: {error}") from error


def hull_layers(
    points: np.ndarray, max_layers: int | None = None
) -> list[np.ndarray]:
    """Peel a point set into convex-hull layers.

    Returns a list of index arrays into ``points``; layer 0 is the outer
    hull, layer 1 the hull of what remains, and so on until all points
    are assigned (or ``max_layers`` is reached, in which case the final
    entry contains all remaining point indices as one interior bucket).

    Duplicate points land in the layer where their representative is
    peeled.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise IndexError_("points must be a 2-D array (n_points, n_dims)")

    remaining = np.arange(points.shape[0])
    layers: list[np.ndarray] = []
    while remaining.size:
        if max_layers is not None and len(layers) == max_layers - 1:
            layers.append(remaining.copy())
            break
        local_vertices = hull_vertices(points[remaining])
        representatives = remaining[local_vertices]

        # Duplicates of peeled points leave with their representative
        # (and join its layer), otherwise identical points recur forever.
        peeled_set = {tuple(points[i]) for i in representatives}
        peeled_mask = np.array(
            [tuple(points[i]) in peeled_set for i in remaining]
        )
        layers.append(np.sort(remaining[peeled_mask]))
        remaining = remaining[~peeled_mask]
    return layers
