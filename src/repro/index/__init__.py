"""Model-specific indexing support (paper Section 3.2).

* :mod:`repro.index.onion` — the **Onion** convex-hull-layer index [11]
  for linear-optimization top-K queries, the paper's headline index
  (13,000x top-1 / 1,400x top-10 speedups on 3-attribute Gaussian data).
* :mod:`repro.index.hull` — convex-hull peeling utilities with robust
  degenerate-input handling.
* :mod:`repro.index.rtree` — an R*-tree; the paper's point of contrast
  ("optimized for spatial range queries ... sub-optimal for model-based
  queries"), equipped with best-first linear top-K so the contrast is
  measurable.
* :mod:`repro.index.gridfile` — a grid-file index (secondary baseline).
* :mod:`repro.index.csvd` — clustering + SVD similarity index (the [14]
  technique the paper contrasts model-based indexing with).
* :mod:`repro.index.scan` — the instrumented sequential-scan baseline
  every speedup is measured against.
"""

from repro.index.csvd import CSVDIndex
from repro.index.gridfile import GridFileIndex
from repro.index.hull import hull_layers, hull_vertices
from repro.index.onion import OnionIndex
from repro.index.rtree import RStarTree, Rect
from repro.index.scan import scan_top_k
from repro.index.vector import FlatIPIndex, IVFIPIndex, ip_scores

__all__ = [
    "CSVDIndex",
    "FlatIPIndex",
    "GridFileIndex",
    "IVFIPIndex",
    "OnionIndex",
    "RStarTree",
    "Rect",
    "hull_layers",
    "hull_vertices",
    "ip_scores",
    "scan_top_k",
]
