"""Vector similarity indexes over tile embeddings (DESIGN.md §10).

Two inner-product top-K indexes over a flat set of embedding vectors,
both funnelled through :class:`~repro.core.engine.TopKHeap` so they
inherit the library-wide tie-break convention (equal score -> smallest
``(row, col)``):

* :class:`FlatIPIndex` — score every vector, one ``offer_block``. The
  exact reference the differential suite pins bitwise against a numpy
  argsort oracle.
* :class:`IVFIPIndex` — an IVF-style coarse quantizer: k-means
  partitions with sound per-partition score caps
  ``ip(centroid, q) + radius * ||q||`` (Cauchy-Schwarz). Probing every
  partition reproduces the flat answer bit-for-bit; probing in
  descending cap order with the threshold stop rule is *exact* while
  skipping partitions no top-K member can live in; a fixed ``nprobe``
  trades recall for work.

Scores accumulate dimension-by-dimension in float64 (term order, never
a BLAS matmul), so a gathered partition subset scores bitwise what the
flat scan scores — the property the IVF==flat differential leans on.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import TopKHeap
from repro.exceptions import IndexError_
from repro.metrics.counters import CostCounter

#: Relative + absolute inflation applied to partition caps, absorbing
#: the rounding of the cap arithmetic itself (a handful of float64 ops,
#: error ~1e-15 relative) so "no true member ever pruned" holds in
#: floats, not just in exact arithmetic.
CAP_RELATIVE_SLACK = 1e-9
CAP_ABSOLUTE_SLACK = 1e-12


def ip_scores(vectors: np.ndarray, query: np.ndarray) -> np.ndarray:
    """Float64 inner products of each row with ``query``, term-ordered.

    Accumulates one dimension at a time so any row subset (an IVF
    partition gather, a refresh block) produces bitwise the same score
    per row as the full matrix would — summation-order stability that a
    GEMV call does not guarantee.
    """
    matrix = np.asarray(vectors)
    if matrix.ndim != 2:
        raise IndexError_(
            f"vector matrix must be 2-D, got shape {matrix.shape}"
        )
    matrix = matrix.astype(np.float64, copy=False)
    flat_query = np.asarray(query, dtype=np.float64).reshape(-1)
    if flat_query.size != matrix.shape[1]:
        raise IndexError_(
            f"query has {flat_query.size} dims, vectors have "
            f"{matrix.shape[1]}"
        )
    scores = flat_query[0] * matrix[:, 0]
    for d in range(1, flat_query.size):
        scores += flat_query[d] * matrix[:, d]
    return scores


def _check_cells(cells: np.ndarray, n: int) -> np.ndarray:
    cells = np.asarray(cells)
    if cells.shape != (n, 2):
        raise IndexError_(
            f"cells must have shape ({n}, 2), got {cells.shape}"
        )
    return cells


class FlatIPIndex:
    """Exact inner-product top-K by full scan + ``offer_block``."""

    def __init__(self, vectors: np.ndarray, cells: np.ndarray) -> None:
        self._vectors = np.asarray(vectors)
        if self._vectors.ndim != 2 or self._vectors.shape[0] == 0:
            raise IndexError_(
                "flat index needs a non-empty (n, dim) vector matrix"
            )
        self._cells = _check_cells(cells, self._vectors.shape[0])

    @classmethod
    def from_embeddings(cls, embeddings) -> "FlatIPIndex":
        """Index a :class:`~repro.embed.tiles.TileEmbeddings` grid.

        Each tile is addressed by its origin cell, so results read as
        grid locations like every other retrieval answer.
        """
        grid = embeddings.vectors
        n_i, n_j, dim = grid.shape
        rows = np.repeat(
            np.asarray(embeddings.tile_row_starts, dtype=np.intp), n_j
        )
        cols = np.tile(
            np.asarray(embeddings.tile_col_starts, dtype=np.intp), n_i
        )
        return cls(grid.reshape(n_i * n_j, dim), np.stack([rows, cols], 1))

    @property
    def n(self) -> int:
        return self._vectors.shape[0]

    @property
    def dim(self) -> int:
        return self._vectors.shape[1]

    def search(
        self,
        query: np.ndarray,
        k: int,
        counter: CostCounter | None = None,
    ) -> list[tuple[float, tuple[int, int]]]:
        """Top-``k`` ``(score, (row, col))`` best-first."""
        scores = ip_scores(self._vectors, query)
        if counter is not None:
            counter.add_tuples(scores.size)
            counter.add_model_evals(scores.size, flops_each=2 * self.dim)
        heap = TopKHeap(k)
        heap.offer_block(scores, self._cells[:, 0], self._cells[:, 1])
        return heap.ranked()


def _kmeans(
    vectors: np.ndarray, n_partitions: int, seed: int, n_iters: int
) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic seeded Lloyd iterations; ``(centroids, labels)``.

    Ties in assignment go to the lowest centroid index (``argmin``);
    empty partitions keep their previous centroid. Everything is
    float64 elementwise, so rebuilds are bit-reproducible.
    """
    n = vectors.shape[0]
    rng = np.random.default_rng(seed)
    centroids = vectors[np.sort(rng.permutation(n)[:n_partitions])].copy()
    labels = np.zeros(n, dtype=np.intp)
    for _ in range(n_iters):
        # Squared distance argmin; the ||v||^2 term is rank-neutral per
        # row, so it is omitted.
        distances = np.empty((n, centroids.shape[0]))
        for p in range(centroids.shape[0]):
            delta = vectors - centroids[p]
            distances[:, p] = np.einsum("nd,nd->n", delta, delta)
        labels = np.argmin(distances, axis=1)
        for p in range(centroids.shape[0]):
            members = labels == p
            if members.any():
                centroids[p] = vectors[members].mean(axis=0)
    return centroids, labels


class IVFIPIndex:
    """Coarse-quantized inner-product index with sound partition caps."""

    def __init__(
        self,
        vectors: np.ndarray,
        cells: np.ndarray,
        n_partitions: int = 8,
        seed: int = 0,
        n_iters: int = 8,
    ) -> None:
        self._vectors = np.asarray(vectors)
        if self._vectors.ndim != 2 or self._vectors.shape[0] == 0:
            raise IndexError_(
                "IVF index needs a non-empty (n, dim) vector matrix"
            )
        if n_partitions < 1:
            raise IndexError_(
                f"n_partitions must be >= 1, got {n_partitions}"
            )
        self._cells = _check_cells(cells, self._vectors.shape[0])
        vectors64 = self._vectors.astype(np.float64)
        n_partitions = min(int(n_partitions), vectors64.shape[0])
        self.centroids, labels = _kmeans(
            vectors64, n_partitions, seed, n_iters
        )
        self._members: list[np.ndarray] = [
            np.flatnonzero(labels == p)
            for p in range(self.centroids.shape[0])
        ]
        self.radii = np.zeros(self.centroids.shape[0])
        for p, members in enumerate(self._members):
            if members.size:
                delta = vectors64[members] - self.centroids[p]
                self.radii[p] = float(
                    np.sqrt(np.einsum("nd,nd->n", delta, delta).max())
                )

    @classmethod
    def from_embeddings(cls, embeddings, **kwargs) -> "IVFIPIndex":
        flat = FlatIPIndex.from_embeddings(embeddings)
        return cls(flat._vectors, flat._cells, **kwargs)

    @property
    def n(self) -> int:
        return self._vectors.shape[0]

    @property
    def dim(self) -> int:
        return self._vectors.shape[1]

    @property
    def n_partitions(self) -> int:
        return self.centroids.shape[0]

    def partition_caps(self, query: np.ndarray) -> np.ndarray:
        """Sound per-partition upper bounds on any member's IP score.

        For member ``v`` of partition ``p``:
        ``ip(v, q) = ip(c_p, q) + ip(v - c_p, q)
                  <= ip(c_p, q) + radius_p * ||q||`` (Cauchy-Schwarz),
        then inflated by a relative+absolute slack covering the cap
        arithmetic's own rounding.
        """
        flat_query = np.asarray(query, dtype=np.float64).reshape(-1)
        if flat_query.size != self.dim:
            raise IndexError_(
                f"query has {flat_query.size} dims, index has {self.dim}"
            )
        center_ip = ip_scores(self.centroids, flat_query)
        caps = center_ip + self.radii * float(
            np.sqrt(np.sum(flat_query * flat_query))
        )
        return caps + (CAP_RELATIVE_SLACK * np.abs(caps) + CAP_ABSOLUTE_SLACK)

    def search(
        self,
        query: np.ndarray,
        k: int,
        nprobe: int | None = None,
        counter: CostCounter | None = None,
    ) -> tuple[list[tuple[float, tuple[int, int]]], int]:
        """Top-``k`` by partition probing; ``(ranked, probed)``.

        ``nprobe=None`` is the *exact* mode: partitions are probed in
        descending cap order and probing stops once the heap is full
        and the next cap falls strictly below the K-th best score — a
        pruned partition then provably holds no answer, not even a
        boundary tie (caps dominate member scores, and an equal cap is
        still probed). Any other ``nprobe`` probes exactly that many
        partitions: recall may drop, and ``nprobe=n_partitions``
        reproduces the flat answer bit-for-bit.
        """
        caps = self.partition_caps(query)
        if counter is not None:
            counter.add_partial_evals(
                caps.size, flops_each=2 * self.dim + 2
            )
        order = np.argsort(-caps, kind="stable")
        heap = TopKHeap(k)
        probed = 0
        for p in order.tolist():
            if nprobe is not None and probed >= nprobe:
                break
            if nprobe is None and heap.full and caps[p] < heap.threshold:
                break
            members = self._members[p]
            if members.size == 0:
                probed += 1
                continue
            scores = ip_scores(self._vectors[members], query)
            if counter is not None:
                counter.add_tuples(members.size)
                counter.add_model_evals(
                    members.size, flops_each=2 * self.dim
                )
            heap.offer_block(
                scores,
                self._cells[members, 0],
                self._cells[members, 1],
            )
            probed += 1
        return heap.ranked(), probed
