"""CSVD: clustering + singular value decomposition indexing (ref [14]).

The paper's Section 3.2 opens by noting that high-dimensional indexing
techniques are "utilized for processing similarity-based queries by
pruning the search space through range queries [14]" — Thomasian,
Castelli and Li's CSVD — before arguing such indexes are sub-optimal for
*model-based* queries. This module implements CSVD so that contrast is
measurable:

* **build**: k-means the points into clusters; inside each cluster, SVD
  the centered points and keep the leading components, storing each
  point's projection plus its (exactly known) residual norm;
* **nearest-neighbour search**: visit clusters in order of
  centroid distance; within a cluster, lower-bound each point's true
  distance by the projected distance minus its residual norm (a sound
  bound by the triangle inequality) and confirm survivors exactly;
* the search is **exact** — bounds only prune, never decide.

`top_k_linear` is also provided (linear bounds from projected box +
residual), so the model-query suboptimality argument can be run on the
same structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import heapq

import numpy as np
from scipy.cluster.vq import kmeans2

from repro.data.table import Table
from repro.exceptions import IndexError_
from repro.metrics.counters import CostCounter


@dataclass
class _Cluster:
    """One CSVD cluster: centroid, local basis, projections, residuals."""

    centroid: np.ndarray
    basis: np.ndarray  # (kept_dims, n_dims) orthonormal rows
    projections: np.ndarray  # (n_members, kept_dims)
    residual_norms: np.ndarray  # (n_members,)
    rows: np.ndarray  # original table row ids


class CSVDIndex:
    """Clustered-SVD index for exact nearest-neighbour search.

    Parameters
    ----------
    table:
        Source tuples.
    attributes:
        Indexed columns (defaults to all).
    n_clusters:
        k-means cluster count (clipped to the row count).
    kept_dims:
        Local SVD components kept per cluster (clipped to dimensionality).
    seed:
        k-means initialization seed.
    """

    def __init__(
        self,
        table: Table,
        attributes: list[str] | None = None,
        n_clusters: int = 8,
        kept_dims: int = 2,
        seed: int = 0,
    ) -> None:
        self.table = table
        self.attributes = (
            list(attributes) if attributes is not None else table.column_names
        )
        if not self.attributes:
            raise IndexError_("need at least one attribute to index")
        if n_clusters <= 0:
            raise IndexError_("n_clusters must be positive")
        if kept_dims <= 0:
            raise IndexError_("kept_dims must be positive")

        points = table.matrix(self.attributes)
        n_rows, n_dims = points.shape
        self._points = points
        n_clusters = min(n_clusters, n_rows)
        kept_dims = min(kept_dims, n_dims)
        self.kept_dims = kept_dims

        centroids, labels = kmeans2(
            points, n_clusters, minit="++", seed=seed
        )
        self._clusters: list[_Cluster] = []
        for cluster_id in range(n_clusters):
            member_rows = np.where(labels == cluster_id)[0]
            if member_rows.size == 0:
                continue
            members = points[member_rows]
            centroid = members.mean(axis=0)
            centered = members - centroid
            # SVD of the centered members; rows of vt are the local basis.
            _, _, vt = np.linalg.svd(centered, full_matrices=False)
            basis = vt[:kept_dims]
            projections = centered @ basis.T
            reconstructed = projections @ basis
            residual_norms = np.linalg.norm(centered - reconstructed, axis=1)
            self._clusters.append(
                _Cluster(
                    centroid=centroid,
                    basis=basis,
                    projections=projections,
                    residual_norms=residual_norms,
                    rows=member_rows,
                )
            )

    @property
    def n_clusters(self) -> int:
        """Number of non-empty clusters."""
        return len(self._clusters)

    def _query_vector(self, query: dict[str, float]) -> np.ndarray:
        missing = [a for a in self.attributes if a not in query]
        if missing:
            raise IndexError_(f"query missing attributes {missing}")
        return np.array([float(query[a]) for a in self.attributes])

    def nearest(
        self,
        query: dict[str, float],
        k: int = 1,
        counter: CostCounter | None = None,
    ) -> list[tuple[int, float]]:
        """Exact k nearest neighbours by Euclidean distance.

        Returns ``(row, distance)`` pairs, nearest first. Work tallies:
        one node per cluster visited, one tuple per candidate whose lower
        bound required an exact confirmation.
        """
        if k <= 0:
            raise IndexError_("k must be positive")
        target = self._query_vector(query)

        # Min-heap of (negated distance, -row): the root is the worst
        # kept answer (largest distance; among distance-ties the largest
        # row), matching the service-wide smallest-row-wins tie-break —
        # see scan_top_k, the canonical idiom.
        best: list[tuple[float, int]] = []

        def kth_distance() -> float:
            return -best[0][0] if len(best) == k else float("inf")

        order = sorted(
            range(len(self._clusters)),
            key=lambda i: np.linalg.norm(
                self._clusters[i].centroid - target
            ),
        )
        for cluster_index in order:
            cluster = self._clusters[cluster_index]
            if counter is not None:
                counter.add_nodes(1)
            centered_query = target - cluster.centroid
            projected_query = cluster.basis @ centered_query
            query_residual = np.linalg.norm(
                centered_query - cluster.basis.T @ projected_query
            )
            projected_distances = np.linalg.norm(
                cluster.projections - projected_query, axis=1
            )
            # Sound lower bound on the true distance: in the orthogonal
            # decomposition span + complement,
            #   d^2 = d_proj^2 + ||r_p - r_q||^2 >= d_proj^2 + (|r_p| - |r_q|)^2.
            residual_gap = np.abs(cluster.residual_norms - query_residual)
            lower_bounds = np.sqrt(projected_distances**2 + residual_gap**2)

            for local_index in np.argsort(lower_bounds):
                # The bound is mathematically <= the true distance but
                # computed with different arithmetic, so it can land a
                # few ulps above it. Prune with relative slack: a bound
                # at (or negligibly above) the kth distance may hide an
                # equal-distance candidate with a smaller row, which the
                # tie-break must admit — survivors are confirmed exactly,
                # so the slack only costs confirmations, never exactness.
                # The absolute term covers kth distance exactly 0, where
                # a tied candidate's bound can still be a positive ulp.
                threshold = kth_distance()
                if lower_bounds[local_index] > threshold * (1 + 1e-9) + 1e-12:
                    break
                row = int(cluster.rows[local_index])
                if counter is not None:
                    counter.add_tuples(1)
                    counter.add_data_points(len(self.attributes))
                distance = float(
                    np.linalg.norm(self._points[row] - target)
                )
                entry = (-distance, -row)
                if len(best) < k:
                    heapq.heappush(best, entry)
                elif entry > best[0]:
                    heapq.heapreplace(best, entry)
        return [
            (-neg_row, -negated)
            for negated, neg_row in sorted(
                best, key=lambda e: (-e[0], -e[1])
            )
        ]

    def top_k_linear(
        self,
        weights: dict[str, float],
        k: int,
        maximize: bool = True,
        counter: CostCounter | None = None,
    ) -> list[tuple[int, float]]:
        """Exact linear top-K via cluster-level score bounds.

        Upper-bounds ``w.x`` over a cluster by the centroid score plus
        ``|w|`` times each member's distance bound (projection norm +
        residual) — a loose, similarity-oriented bound, which is exactly
        why the paper calls such indexes sub-optimal for model queries.
        """
        if k <= 0:
            raise IndexError_("k must be positive")
        weight_vector = self._query_vector(weights)
        sign = 1.0 if maximize else -1.0
        signed = sign * weight_vector
        weight_norm = float(np.linalg.norm(signed))

        best: list[tuple[float, int]] = []

        def kth_score() -> float:
            return best[0][0] if len(best) == k else float("-inf")

        cluster_bounds = []
        for cluster in self._clusters:
            centroid_score = float(signed @ cluster.centroid)
            member_extents = np.sqrt(
                np.sum(cluster.projections**2, axis=1)
            ) + cluster.residual_norms
            bound = centroid_score + weight_norm * float(member_extents.max())
            cluster_bounds.append(bound)

        for cluster_index in np.argsort(cluster_bounds)[::-1]:
            cluster = self._clusters[cluster_index]
            if counter is not None:
                counter.add_nodes(1)
            if cluster_bounds[cluster_index] < kth_score():
                break
            for row in cluster.rows:
                if counter is not None:
                    counter.add_tuples(1)
                    counter.add_model_evals(
                        1, flops_each=2 * len(self.attributes)
                    )
                score = float(signed @ self._points[row])
                # Canonical tie idiom (see scan_top_k): (score, -row)
                # entries make equal-score smaller rows win eviction.
                entry = (score, -int(row))
                if len(best) < k:
                    heapq.heappush(best, entry)
                elif entry > best[0]:
                    heapq.heapreplace(best, entry)
        return [
            (-neg_row, sign * score)
            for score, neg_row in sorted(
                best, key=lambda e: (-e[0], -e[1])
            )
        ]

    def __repr__(self) -> str:
        return (
            f"CSVDIndex({self.table.name!r}, clusters={self.n_clusters}, "
            f"kept_dims={self.kept_dims})"
        )
