#!/usr/bin/env python3
"""The Figure 5 model-revision workflow, priced per iteration.

Runs the paper's loop — hypothesize a model, fit it on training cells,
retrieve the top-K, fold the retrieved cells back into training, repeat —
twice: retrieving exhaustively (the status quo the paper complains about:
"substantial re-computation on the entire data set is required even when
there is a small revision of the model") and progressively (the paper's
framework). Same converged model, very different bills.

Run:  python examples/model_revision_workflow.py
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import RasterRetrievalEngine
from repro.core.workflow import ModelingWorkflow
from repro.data.raster import RasterLayer
from repro.models.linear import hps_risk_model
from repro.synth.events import latent_risk_field
from repro.synth.landsat import generate_scene
from repro.synth.terrain import generate_dem


def main() -> None:
    shape = (256, 256)
    dem = generate_dem(shape, seed=91)
    stack = generate_scene(shape, seed=92, terrain=dem)
    stack.add(dem)
    truth = latent_risk_field(
        stack, hps_risk_model().coefficients, noise_std=0.15, seed=93
    )
    stack.add(RasterLayer("incidents", truth))
    engine = RasterRetrievalEngine(stack, leaf_size=16)

    rng = np.random.default_rng(0)
    initial_cells = [
        (int(row), int(col))
        for row, col in zip(
            rng.integers(0, shape[0], 60), rng.integers(0, shape[1], 60)
        )
    ]
    attributes = tuple(hps_risk_model().attributes)

    print("Figure 5 loop: fit -> retrieve top-25 -> revise, 4 iterations\n")
    totals = {}
    for progressive in (False, True):
        label = "progressive" if progressive else "exhaustive "
        workflow = ModelingWorkflow(
            engine, "incidents", progressive=progressive
        )
        iterations = workflow.run(
            attributes, list(initial_cells), k=25, max_iterations=4,
            tolerance=0.0,
        )
        totals[label] = workflow.total_cost.total_work
        print(f"[{label}] per-iteration retrieval work:")
        for iteration in iterations:
            delta = (
                f"{iteration.coefficient_delta:.4f}"
                if iteration.coefficient_delta != float("inf")
                else "  (first fit)"
            )
            print(
                f"  iter {iteration.iteration}: "
                f"work={iteration.cost.total_work:>9,}  "
                f"training cells={iteration.training_rows:>4}  "
                f"coefficient delta={delta}"
            )
        final = iterations[-1].model
        coefficients = ", ".join(
            f"{name}={weight:.4f}"
            for name, weight in final.coefficients.items()
        )
        print(f"  converged model: {coefficients}\n")

    ratio = totals["exhaustive "] / totals["progressive"]
    print(
        f"total retrieval work: exhaustive {totals['exhaustive ']:,} vs "
        f"progressive {totals['progressive']:,}  ->  {ratio:.1f}x cheaper "
        "revision loops"
    )


if __name__ == "__main__":
    main()
