#!/usr/bin/env python3
"""Hantavirus Pulmonary Syndrome risk retrieval (paper Figures 2-3).

Reproduces the paper's flagship scenario end to end:

1. a synthetic Four-Corners-like archive (TM bands 4/5/7 + DEM),
2. the published linear risk model R = 0.443*X1 + 0.222*X2 + 0.153*X3 +
   0.183*X4 retrieving the top-K highest-risk locations,
3. the Section 4.1 accuracy metrics against sampled incident data,
4. the Figure 3 Bayesian house-risk network ranking candidate houses,
5. a Figure 2-style ASCII risk map.

Run:  python examples/epidemiology_hps.py
"""

from __future__ import annotations

import numpy as np

from repro.apps import epidemiology
from repro.metrics.accuracy import CostModel, cost_curve
from repro.metrics.topk import (
    precision_recall_at_k,
    rank_locations_by_risk,
    relevant_locations,
)


def ascii_risk_map(risk: np.ndarray, width: int = 64, height: int = 24) -> str:
    """Render a coarse Figure 2-style map: darker glyph = higher risk."""
    glyphs = " .:-=+*#%@"
    rows, cols = risk.shape
    row_step = max(1, rows // height)
    col_step = max(1, cols // width)
    coarse = risk[::row_step, ::col_step]
    low, high = coarse.min(), coarse.max()
    scaled = (coarse - low) / (high - low) if high > low else coarse * 0
    lines = []
    for row in scaled:
        lines.append(
            "".join(glyphs[min(int(v * len(glyphs)), len(glyphs) - 1)] for v in row)
        )
    return "\n".join(lines)


def main() -> None:
    scenario = epidemiology.build_scenario(shape=(192, 192), seed=42)
    print(f"study area: {scenario.shape}, model: {scenario.model}")

    # --- top-K retrieval, progressive vs exhaustive -----------------------
    progressive = epidemiology.retrieve_high_risk(scenario, k=25)
    exhaustive = epidemiology.retrieve_high_risk(
        scenario, k=25, progressive=False
    )
    assert sorted(round(s, 6) for s in progressive.scores) == sorted(
        round(s, 6) for s in exhaustive.scores
    )
    ratio = exhaustive.counter.total_work / progressive.counter.total_work
    print(f"\ntop-25 retrieval: progressive = exhaustive answers, "
          f"{ratio:.1f}x less counted work")
    print("highest-risk locations:")
    for answer in progressive.answers[:5]:
        print(f"  ({answer.row:3d}, {answer.col:3d})  R = {answer.score:7.2f}")

    # --- Section 4.1 accuracy metrics -------------------------------------
    risk = scenario.model.evaluate_batch(
        {n: scenario.stack[n].values for n in scenario.model.attributes}
    )
    occurrences = scenario.occurrences.values
    thresholds = np.quantile(risk, [0.80, 0.90, 0.95, 0.99])
    print("\ncost curve (miss cost 5x false alarm):")
    print("  threshold | miss rate | false alarm rate | total cost CT")
    for report in cost_curve(
        risk, occurrences, thresholds, CostModel(miss_cost=5.0)
    ):
        print(
            f"  {report.threshold:9.2f} | {report.miss_rate:9.3f} | "
            f"{report.false_alarm_rate:16.3f} | {report.total_cost:10.1f}"
        )

    ranked = rank_locations_by_risk(risk)
    relevant = relevant_locations(occurrences)
    print("\ntop-K precision/recall (correct = locations with events):")
    for k in (10, 50, 200):
        pr = precision_recall_at_k(ranked, relevant, k=k)
        print(f"  K={k:4d}: precision {pr.precision:.3f}  recall {pr.recall:.3f}")
    chance = len(relevant) / occurrences.size
    print(f"  (chance precision would be {chance:.3f})")

    # --- Figure 3: Bayesian house-risk network ----------------------------
    network = epidemiology.hps_bayes_network()
    observations = [
        {"house": "yes", "bushes": "yes",
         "unusual_raining_season": "yes", "dry_season": "yes"},
        {"house": "yes", "bushes": "yes"},
        {"house": "yes", "bushes": "no", "dry_season": "yes"},
        {"house": "no"},
    ]
    print("\nFigure 3 Bayesian network, P(high risk house | evidence):")
    ranked_houses = epidemiology.rank_houses_by_posterior(
        network, observations, k=4
    )
    for index, posterior in ranked_houses:
        print(f"  house #{index}: {posterior:.3f}  evidence={observations[index]}")

    # --- Figure 2: the risk map -------------------------------------------
    print("\nFigure 2-style risk map (darker = higher modelled risk):")
    print(ascii_risk_map(risk))


if __name__ == "__main__":
    main()
