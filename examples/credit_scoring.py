#!/usr/bin/env python3
"""FICO-style scorecard retrieval with the Onion index (Section 2.1).

Generates an applicant population whose foreclosure behaviour reproduces
the paper's published calibration (<2% above 680, ~8% below 620), then
answers "find the K safest / riskiest applicants" with the Onion index
vs. sequential scan.

Run:  python examples/credit_scoring.py
"""

from __future__ import annotations

from repro.apps import credit
from repro.metrics.counters import CostCounter


def main() -> None:
    # 6-D hull peeling is the expensive part of index construction; 8k
    # applicants with a 20-layer cap builds in ~20 s and covers K <= 20.
    scenario = credit.build_scenario(
        n_applicants=8000, seed=13, max_layers=20
    )
    print(f"population: {scenario.n_applicants:,} applicants")
    print(f"scorecard : {scenario.model}")

    # --- the published calibration -----------------------------------------
    calibration = credit.band_calibration(scenario)
    print("\nforeclosure calibration (paper: <2% above 680, ~8% below 620):")
    print(f"  score >= 680 : {calibration['above_680']:.3%}")
    print(f"  score <  620 : {calibration['below_620']:.3%}")

    # --- Onion-indexed top-K -------------------------------------------------
    print(f"\nOnion index: {scenario.index.n_layers} hull layers, "
          f"outer sizes {scenario.index.layer_sizes()[:4]}")
    for best, label in ((True, "safest"), (False, "riskiest")):
        index_counter, scan_counter = CostCounter(), CostCounter()
        indexed = credit.top_k_applicants(
            scenario, 10, best=best, counter=index_counter
        )
        scanned = credit.top_k_applicants(
            scenario, 10, best=best, use_index=False, counter=scan_counter
        )
        assert [row for row, _ in indexed] == [row for row, _ in scanned]
        print(f"\ntop-10 {label} applicants (index == scan):")
        for row, score in indexed[:3]:
            print(f"  applicant {row:6d}: score {score:5.1f}")
        print(f"  tuples examined: onion {index_counter.tuples_examined:,} "
              f"vs scan {scan_counter.tuples_examined:,} "
              f"({scan_counter.tuples_examined / index_counter.tuples_examined:.0f}x)")

    print("\nnote: with 6 indexed attributes the hull layers are fat "
          "(curse of dimensionality); the paper's 3-attribute benchmark in "
          "benchmarks/bench_onion.py shows the dramatic ratios.")


if __name__ == "__main__":
    main()
