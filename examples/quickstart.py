#!/usr/bin/env python3
"""Quickstart: model-based top-K retrieval over a synthetic archive.

Builds a small multi-modal archive (satellite-like bands + a DEM), fits a
linear risk model to noisy historical data, and retrieves the K
highest-risk locations two ways — sequential scan vs. the paper's
progressive framework — showing that the answers are identical while the
progressive engine touches a fraction of the data.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core.engine import RasterRetrievalEngine
from repro.core.query import TopKQuery
from repro.metrics.efficiency import speedup
from repro.models.linear import fit_linear_model
from repro.synth.events import latent_risk_field
from repro.synth.landsat import generate_scene
from repro.synth.terrain import generate_dem


def main() -> None:
    # 1. A synthetic study area: three imagery bands coupled to terrain.
    shape = (256, 256)
    dem = generate_dem(shape, seed=1)
    stack = generate_scene(shape, seed=2, terrain=dem)
    stack.add(dem)
    print(f"archive: {len(stack)} aligned layers of shape {stack.shape}")

    # 2. "Historical incidents": a latent risk field the model must learn.
    truth = latent_risk_field(
        stack,
        {"tm_band4": 0.5, "tm_band5": 0.2, "elevation": 0.3},
        noise_std=0.2,
        seed=3,
    )

    # 3. Fit the linear model on a sparse training sample (paper steps 1-2).
    import numpy as np

    rng = np.random.default_rng(4)
    rows = rng.integers(0, shape[0], 200)
    cols = rng.integers(0, shape[1], 200)
    model = fit_linear_model(
        {
            name: stack[name].values[rows, cols]
            for name in ("tm_band4", "tm_band5", "tm_band7", "elevation")
        },
        truth[rows, cols],
        name="fitted_risk",
    )
    print(f"fitted model: {model}")

    # 4. Retrieve the top-25 highest-risk locations (paper steps 3-5).
    engine = RasterRetrievalEngine(stack, leaf_size=16)
    query = TopKQuery(model=model, k=25)

    exhaustive = engine.exhaustive_top_k(query)
    progressive = engine.progressive_top_k(query)

    assert sorted(round(s, 9) for s in exhaustive.scores) == sorted(
        round(s, 9) for s in progressive.scores
    ), "progressive retrieval must be exact"

    print("\ntop-5 locations (row, col, score):")
    for answer in progressive.answers[:5]:
        print(f"  ({answer.row:3d}, {answer.col:3d})  {answer.score:8.3f}")

    # 5. The whole point: same answer, far less work.
    report = speedup(exhaustive.counter, progressive.counter)
    print("\nwork comparison (exhaustive vs progressive):")
    print(f"  data points touched : {exhaustive.counter.data_points:>9,} vs "
          f"{progressive.counter.data_points:>9,}")
    print(f"  total counted work  : {exhaustive.counter.total_work:>9,} vs "
          f"{progressive.counter.total_work:>9,}")
    print(f"  speedup (work ratio): {report.work_ratio:.1f}x")
    print(f"  tiles pruned        : {progressive.audit.tiles_pruned} / "
          f"{progressive.audit.tiles_screened} screened")


if __name__ == "__main__":
    main()
