#!/usr/bin/env python3
"""Fire-ants swarming forecast over a weather-station grid (Figure 1).

Runs the paper's finite state model — rain, then three or more dry days,
then a day reaching 25 C — over a grid of synthetic weather stations and
retrieves the top-K regions most likely to swarm, cross-checked against
a naive history-rescan baseline.

Run:  python examples/fireants_forecast.py
"""

from __future__ import annotations

from repro.apps import fireants
from repro.metrics.counters import CostCounter


def main() -> None:
    scenario = fireants.build_scenario(
        n_station_rows=6, n_station_cols=6, n_days=365, seed=7
    )
    print("Figure 1 machine:")
    print(scenario.machine.render())

    # --- top-K swarming regions -------------------------------------------
    counter = CostCounter()
    top = fireants.top_k_swarming_regions(scenario, k=5, counter=counter)
    print(f"\ntop-5 swarming regions over {scenario.n_days} days "
          f"({counter.data_points:,} weather samples read):")
    print("  region   | swarm days | first onset | onsets")
    for cell, run in top:
        onset = run.first_acceptance
        print(
            f"  {str(cell):8s} | {run.accepting_days:10d} | "
            f"day {onset:7d} | {list(run.acceptance_times[:6])}"
        )

    # --- FSM vs naive rescan ------------------------------------------------
    fsm_counter, naive_counter = CostCounter(), CostCounter()
    mismatches = 0
    for cell in scenario.stations:
        fsm_onsets, naive_onsets = fireants.verify_against_naive(
            scenario, cell, fsm_counter, naive_counter
        )
        if list(fsm_onsets) != naive_onsets:
            mismatches += 1
    print(f"\ncross-check vs naive window rescan: "
          f"{len(scenario.stations) - mismatches}/{len(scenario.stations)} "
          "stations agree exactly")
    print(f"  FSM work   : {fsm_counter.total_work:>9,} counted units")
    print(f"  naive work : {naive_counter.total_work:>9,} counted units "
          f"({naive_counter.total_work / fsm_counter.total_work:.1f}x more)")

    # --- machines extracted from data (paper Section 3) -------------------
    ranked = fireants.rank_stations_by_dynamics(scenario, k=5)
    print("\nstations ranked by distance(extracted FSM, Figure 1 target):")
    for cell, distance in ranked:
        print(f"  {str(cell):8s}  behavioural distance {distance:.4f}")


if __name__ == "__main__":
    main()
