#!/usr/bin/env python3
"""Riverbed strata retrieval from well logs (paper Figure 4).

Searches a synthetic well field for the knowledge-model pattern "shale on
top of sandstone on top of siltstone, with the shale gamma ray above 45
API", evaluated as a fuzzy Cartesian composite query with SPROC — and
shows the naive / DP / sorted-fast work gap the paper quotes.

Run:  python examples/geology_riverbed.py
"""

from __future__ import annotations

from repro.apps import geology
from repro.metrics.counters import CostCounter
from repro.sproc.dp import sproc_top_k
from repro.sproc.fast import fast_top_k
from repro.sproc.naive import naive_top_k
from repro.synth.welllog import LITHOLOGY_NAMES, WellLogParams, layer_runs


def main() -> None:
    scenario = geology.build_scenario(
        n_wells=30,
        total_depth_m=200.0,
        seed=11,
        params=WellLogParams(riverbed_probability=0.4),
    )
    print(f"well field: {scenario.n_wells} wells, 200 m logs, 0.5 m samples")

    # --- retrieve the best riverbed candidates -----------------------------
    matches = geology.find_riverbeds(scenario, k_total=8)
    print("\ntop riverbed matches (shale/sandstone/siltstone, GR>45):")
    print("  well       | score | depth interval")
    for match in matches:
        print(
            f"  {match.well_name} | {match.score:5.3f} | "
            f"{match.depth_top_m:6.1f} - {match.depth_bottom_m:6.1f} m"
        )

    # --- show the winning well's layer column ------------------------------
    if matches:
        best = matches[0]
        well = next(w for w in scenario.wells if w.name == best.well_name)
        print(f"\nlayer column of {best.well_name} (top 12 runs):")
        for code, start, stop in layer_runs(well)[:12]:
            name = LITHOLOGY_NAMES[code]
            gamma = well.values("gamma_ray")[start:stop].mean()
            marker = " <-- match" if start in {
                layer_runs(well)[i][1] for i in best.assignment
            } else ""
            print(
                f"  {well.depth_at(start):6.1f} m  {name:10s} "
                f"GR~{gamma:5.1f}{marker}"
            )

    # --- SPROC complexity story (paper Section 3.2) -------------------------
    biggest = max(scenario.wells, key=lambda w: len(layer_runs(w)))
    query, runs = geology.riverbed_query(biggest)
    print(f"\nSPROC work comparison on {biggest.name} "
          f"(L={len(runs)} layer runs, M=3 components, K=5):")
    for label, evaluate in (
        ("naive O(L^M)      ", naive_top_k),
        ("SPROC DP O(MKL^2) ", sproc_top_k),
        ("sorted fast [16]  ", fast_top_k),
    ):
        counter = CostCounter()
        answers = evaluate(query, 5, counter)
        print(f"  {label}: {counter.tuples_examined:>9,} tuples examined, "
              f"best score {answers[0][1] if answers else 0.0:.3f}")


if __name__ == "__main__":
    main()
