#!/usr/bin/env python3
"""Multi-modal fusion: imagery + elevation + weather in one query.

The paper stresses that its scenarios are multi-modal — "this model is
multi-modal, as it consists of data from images and weather pattern"
(Figure 3). This example fuses:

* the published HPS linear risk model over TM bands + DEM (raster
  modality), with
* the "unusual raining season followed by a dry season" rule evaluated
  per weather-station region (series modality),

into one per-location score, and shows how the fused top-K differs from
either modality alone.

Run:  python examples/multimodal_fusion.py
"""

from __future__ import annotations

from repro.apps import epidemiology
from repro.apps.epidemiology import multimodal_risk_query, wet_then_dry_degree
from repro.metrics.counters import CostCounter
from repro.synth.weather import WeatherParams, generate_station_grid


def main() -> None:
    scenario = epidemiology.build_scenario(shape=(128, 128), seed=42)
    station_shape = (4, 4)
    stations = generate_station_grid(
        *station_shape,
        n_days=365,
        seed=43,
        params=WeatherParams(wet_to_dry=0.3, dry_to_wet=0.15),
    )
    print(f"study area {scenario.shape}, {len(stations)} weather regions")

    print("\nper-region wet-then-dry degrees:")
    for row in range(station_shape[0]):
        degrees = [
            wet_then_dry_degree(stations[(row, col)])
            for col in range(station_shape[1])
        ]
        print("  " + "  ".join(f"{degree:4.2f}" for degree in degrees))

    counter = CostCounter()
    query = multimodal_risk_query(scenario, stations, station_shape)
    fused_top = query.top_k(10, counter=counter)

    # Single-modality rankings for contrast.
    raster_only = multimodal_risk_query(
        scenario, stations, station_shape, weather_weight=0.0001
    ).top_k(10)
    weather_only = multimodal_risk_query(
        scenario, stations, station_shape, risk_weight=0.0001
    ).top_k(10)

    print("\ntop-10 locations (fused vs single-modality):")
    print("  rank | fused           | imagery-only    | weather-only")
    for rank in range(10):
        print(
            f"  {rank + 1:4d} | {str(fused_top[rank][0]):15s} | "
            f"{str(raster_only[rank][0]):15s} | "
            f"{str(weather_only[rank][0]):15s}"
        )

    fused_cells = {cell for cell, _ in fused_top}
    raster_cells = {cell for cell, _ in raster_only}
    moved = len(fused_cells - raster_cells)
    print(f"\nweather evidence moved {moved}/10 of the imagery-only answers")
    print(f"data points touched: {counter.data_points:,}")


if __name__ == "__main__":
    main()
