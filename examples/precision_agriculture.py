#!/usr/bin/env python3
"""Precision agriculture: stressed zones + harvest windows (Section 1).

Two model-based retrievals over one crop field:

* progressive feature extraction finds the most stressed field blocks —
  cheap statistics screen everywhere, expensive texture features run only
  on candidates (the strategy behind the paper's 4-8x quote);
* a finite state model over daily weather forecasts harvest windows
  (mature crop + two consecutive dry days).

Run:  python examples/precision_agriculture.py
"""

from __future__ import annotations

from repro.apps import agriculture
from repro.metrics.counters import CostCounter


def main() -> None:
    scenario = agriculture.build_scenario(
        shape=(256, 256), n_days=240, seed=17
    )
    print(f"field: {scenario.vigor.shape} vigor map, "
          f"{len(scenario.weather)}-day season")

    # --- stressed-zone detection -------------------------------------------
    progressive_counter, exhaustive_counter = CostCounter(), CostCounter()
    zones = agriculture.find_stressed_zones(
        scenario, k=8, vigor_threshold=100.0, progressive=True,
        counter=progressive_counter,
    )
    exhaustive = agriculture.find_stressed_zones(
        scenario, k=8, vigor_threshold=100.0, progressive=False,
        counter=exhaustive_counter,
    )
    assert [z.block for z in zones] == [z.block for z in exhaustive]

    print("\ntop stressed blocks (16x16 cells each):")
    print("  block    | mean vigor | gradient energy | stress score")
    for zone in zones[:5]:
        print(
            f"  {str(zone.block):8s} | {zone.features.mean:10.1f} | "
            f"{zone.features.gradient_energy:15.2f} | "
            f"{zone.stress_score:10.1f}"
        )
    ratio = exhaustive_counter.total_work / progressive_counter.total_work
    print(f"\nprogressive feature extraction: identical ranking, "
          f"{ratio:.1f}x less counted work "
          f"(paper's [12] quotes 4-8x)")

    # --- harvest-window forecast ---------------------------------------------
    run = agriculture.harvest_windows(scenario)
    symbols = agriculture.harvest_symbols(scenario.weather)
    maturity_day = next(
        (i for i, s in enumerate(symbols) if s != "growing"), None
    )
    print(f"\nharvest forecast: crop matures on day {maturity_day}")
    if run.accepted:
        print(f"  harvest windows open on days {list(run.acceptance_times[:8])}")
        print(f"  total workable days: {run.accepting_days}")
    else:
        print("  no harvest window this season (too wet)")


if __name__ == "__main__":
    main()
