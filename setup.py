"""Setup shim for offline editable installs.

Metadata lives in pyproject.toml; this file exists so ``pip install -e .``
works without network access (PEP 517 build isolation would try to
download setuptools/wheel).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Model-based multi-modal information retrieval from large archives "
        "(reproduction of Li et al., ICDCS 2000)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
)
