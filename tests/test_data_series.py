"""Tests for time and depth series."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.series import DepthSeries, TimeSeries
from repro.exceptions import ArchiveError
from repro.metrics.counters import CostCounter


def _weather(n=5) -> TimeSeries:
    return TimeSeries(
        "w",
        np.arange(n, dtype=float),
        {"rain_mm": np.arange(n, dtype=float), "temperature_c": np.full(n, 20.0)},
    )


class TestSeriesValidation:
    def test_axis_must_increase(self):
        with pytest.raises(ArchiveError):
            TimeSeries("w", np.array([0.0, 0.0, 1.0]), {"x": np.zeros(3)})

    def test_axis_must_be_1d(self):
        with pytest.raises(ArchiveError):
            TimeSeries("w", np.zeros((2, 2)), {"x": np.zeros((2, 2))})

    def test_empty_series_rejected(self):
        with pytest.raises(ArchiveError):
            TimeSeries("w", np.array([]), {"x": np.array([])})

    def test_needs_attributes(self):
        with pytest.raises(ArchiveError):
            TimeSeries("w", np.arange(3.0), {})

    def test_attribute_shape_must_match_axis(self):
        with pytest.raises(ArchiveError):
            TimeSeries("w", np.arange(3.0), {"x": np.zeros(4)})

    def test_values_read_only(self):
        series = _weather()
        with pytest.raises(ValueError):
            series.values("rain_mm")[0] = 9.0


class TestSeriesAccess:
    def test_read_tallies(self):
        series = _weather()
        counter = CostCounter()
        assert series.read("rain_mm", 3, counter) == 3.0
        assert counter.data_points == 1

    def test_read_range_tallies(self):
        series = _weather()
        counter = CostCounter()
        window = series.read_range("rain_mm", 1, 4, counter)
        assert list(window) == [1.0, 2.0, 3.0]
        assert counter.data_points == 3

    def test_read_record_collects_attributes(self):
        series = _weather()
        record = series.read_record(2)
        assert record == {"rain_mm": 2.0, "temperature_c": 20.0}

    def test_unknown_attribute_raises(self):
        with pytest.raises(ArchiveError):
            _weather().values("humidity")

    def test_window_restricts(self):
        series = _weather(6)
        sub = series.window(2, 5)
        assert len(sub) == 3
        assert sub.values("rain_mm")[0] == 2.0
        assert isinstance(sub, TimeSeries)

    def test_window_bounds_checked(self):
        with pytest.raises(ArchiveError):
            _weather().window(3, 3)
        with pytest.raises(ArchiveError):
            _weather().window(-1, 2)

    def test_len_and_names(self):
        series = _weather(7)
        assert len(series) == 7
        assert series.attribute_names == ["rain_mm", "temperature_c"]


class TestDepthSeries:
    def test_depth_at(self):
        log = DepthSeries(
            "well", np.array([0.0, 0.5, 1.0]), {"gamma_ray": np.ones(3)}
        )
        assert log.depth_at(1) == 0.5

    def test_window_preserves_type(self):
        log = DepthSeries(
            "well", np.array([0.0, 0.5, 1.0]), {"gamma_ray": np.ones(3)}
        )
        assert isinstance(log.window(0, 2), DepthSeries)


class TestNonFiniteRejection:
    def test_nan_attribute_rejected(self):
        with pytest.raises(ArchiveError):
            TimeSeries(
                "bad",
                np.arange(3.0),
                {"x": np.array([1.0, np.nan, 3.0])},
            )
