"""Tests for tile grids."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data.tiles import TileGrid
from repro.exceptions import ArchiveError


class TestTileGrid:
    def test_exact_division(self):
        grid = TileGrid((8, 8), tile_size=4)
        assert grid.n_tiles == 4
        assert grid.tile(1, 1).shape == (4, 4)

    def test_edge_tiles_clipped(self):
        grid = TileGrid((10, 7), tile_size=4)
        assert grid.n_tile_rows == 3
        assert grid.n_tile_cols == 2
        edge = grid.tile(2, 1)
        assert edge.shape == (2, 3)

    def test_invalid_parameters(self):
        with pytest.raises(ArchiveError):
            TileGrid((0, 5), 2)
        with pytest.raises(ArchiveError):
            TileGrid((5, 5), 0)

    def test_tile_address_bounds(self):
        grid = TileGrid((8, 8), 4)
        with pytest.raises(ArchiveError):
            grid.tile(2, 0)

    def test_tile_of_cell(self):
        grid = TileGrid((10, 10), 4)
        tile = grid.tile_of_cell(5, 9)
        assert tile.key == (1, 2)
        assert tile.contains(5, 9)

    def test_tile_of_cell_bounds(self):
        grid = TileGrid((4, 4), 2)
        with pytest.raises(ArchiveError):
            grid.tile_of_cell(4, 0)

    def test_cells_iterate_row_major(self):
        grid = TileGrid((4, 4), 2)
        cells = list(grid.tile(0, 1).cells())
        assert cells == [(0, 2), (0, 3), (1, 2), (1, 3)]

    @given(st.integers(1, 40), st.integers(1, 40), st.integers(1, 17))
    def test_tiles_partition_grid(self, rows, cols, tile_size):
        """Every cell belongs to exactly one tile."""
        grid = TileGrid((rows, cols), tile_size)
        seen = {}
        for tile in grid:
            for cell in tile.cells():
                assert cell not in seen, f"cell {cell} covered twice"
                seen[cell] = tile.key
        assert len(seen) == rows * cols
        assert sum(tile.size for tile in grid) == rows * cols
