"""Tests for synthetic weather."""

from __future__ import annotations

import numpy as np
import pytest

from repro.synth.weather import (
    WeatherParams,
    generate_station_grid,
    generate_weather,
)


class TestWeatherParams:
    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            WeatherParams(wet_to_dry=0.0)
        with pytest.raises(ValueError):
            WeatherParams(dry_to_wet=1.5)

    def test_ar_coefficient_bounds(self):
        with pytest.raises(ValueError):
            WeatherParams(temp_ar_coefficient=1.0)

    def test_rain_mean_positive(self):
        with pytest.raises(ValueError):
            WeatherParams(rain_mean_mm=0.0)


class TestGenerateWeather:
    def test_attributes_and_length(self):
        weather = generate_weather(100, seed=1)
        assert len(weather) == 100
        assert weather.attribute_names == ["rain_mm", "temperature_c"]

    def test_deterministic(self):
        first = generate_weather(50, seed=2)
        second = generate_weather(50, seed=2)
        assert np.array_equal(first.values("rain_mm"), second.values("rain_mm"))

    def test_rain_non_negative(self):
        weather = generate_weather(500, seed=3)
        assert weather.values("rain_mm").min() >= 0.0

    def test_has_wet_and_dry_spells(self):
        weather = generate_weather(730, seed=4)
        rain = weather.values("rain_mm")
        dry = rain == 0.0
        assert 0.2 < dry.mean() < 0.95
        # There must be at least one 3+ day dry run (fire-ants trigger).
        run = best = 0
        for is_dry in dry:
            run = run + 1 if is_dry else 0
            best = max(best, run)
        assert best >= 3

    def test_seasonal_temperature_cycle(self):
        weather = generate_weather(730, seed=5)
        temperature = weather.values("temperature_c")
        by_half = temperature[:365].reshape(-1)
        summer = by_half[150:240].mean()
        winter = np.concatenate([by_half[:60], by_half[300:]]).mean()
        assert summer > winter + 5.0

    def test_n_days_positive(self):
        with pytest.raises(ValueError):
            generate_weather(0, seed=1)


class TestStationGrid:
    def test_grid_shape_and_names(self):
        stations = generate_station_grid(2, 3, 30, seed=1)
        assert set(stations) == {(r, c) for r in range(2) for c in range(3)}
        assert stations[(1, 2)].name == "station_1_2"

    def test_stations_differ(self):
        stations = generate_station_grid(2, 2, 60, seed=2)
        first = stations[(0, 0)].values("rain_mm")
        second = stations[(1, 1)].values("rain_mm")
        assert not np.array_equal(first, second)

    def test_deterministic(self):
        first = generate_station_grid(2, 2, 30, seed=3)
        second = generate_station_grid(2, 2, 30, seed=3)
        for key in first:
            assert np.array_equal(
                first[key].values("temperature_c"),
                second[key].values("temperature_c"),
            )

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            generate_station_grid(0, 2, 10, seed=1)

    def test_south_is_warmer(self):
        stations = generate_station_grid(5, 1, 365, seed=4)
        north = stations[(0, 0)].values("temperature_c").mean()
        south = stations[(4, 0)].values("temperature_c").mean()
        assert south > north
