"""Tests for 1-D series pyramids."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.series import TimeSeries
from repro.metrics.counters import CostCounter
from repro.pyramid.series_pyramid import SeriesPyramid


def _series(values: np.ndarray) -> TimeSeries:
    return TimeSeries(
        "s", np.arange(float(values.size)), {"x": np.asarray(values, float)}
    )


class TestStructure:
    def test_level_zero_is_original(self):
        values = np.arange(10.0)
        pyramid = SeriesPyramid(_series(values), "x", n_levels=3)
        assert np.array_equal(pyramid.level(0).mean, values)
        assert pyramid.level(0).scale == 1

    def test_window_counts_halve(self):
        pyramid = SeriesPyramid(_series(np.zeros(16)), "x", n_levels=3)
        assert [pyramid.level(i).n_windows for i in range(4)] == [16, 8, 4, 2]

    def test_levels_capped_by_length(self):
        pyramid = SeriesPyramid(_series(np.zeros(10)), "x", n_levels=99)
        assert pyramid.coarsest.n_windows >= 1
        assert pyramid.n_levels <= 4  # 2^3 = 8 <= 10 < 16

    def test_negative_levels_rejected(self):
        with pytest.raises(ValueError):
            SeriesPyramid(_series(np.zeros(8)), "x", n_levels=-1)

    def test_level_bounds_checked(self):
        pyramid = SeriesPyramid(_series(np.zeros(8)), "x", n_levels=2)
        with pytest.raises(ValueError):
            pyramid.level(9)

    def test_window_addressing(self):
        pyramid = SeriesPyramid(_series(np.zeros(16)), "x", n_levels=2)
        level = pyramid.level(2)
        assert level.window_of(0) == 0
        assert level.window_of(7) == 1
        assert level.sample_range(1) == (4, 8)


class TestEnvelopeSoundness:
    @given(
        st.lists(st.floats(-1e4, 1e4), min_size=2, max_size=60),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_window_bounds_its_samples(self, raw, data):
        values = np.array(raw)
        pyramid = SeriesPyramid(_series(values), "x", n_levels=4)
        for level_index in range(pyramid.n_levels):
            level = pyramid.level(level_index)
            for window in range(level.n_windows):
                start, stop = level.sample_range(window)
                segment = values[start: min(stop, values.size)]
                if segment.size == 0:
                    continue
                assert level.minimum[window] <= segment.min() + 1e-9
                assert level.maximum[window] >= segment.max() - 1e-9

    @given(
        st.lists(st.floats(-1e4, 1e4), min_size=2, max_size=60),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_range_envelope_sound(self, raw, data):
        values = np.array(raw)
        pyramid = SeriesPyramid(_series(values), "x", n_levels=4)
        start = data.draw(st.integers(0, values.size - 1))
        stop = data.draw(st.integers(start + 1, values.size))
        low, high = pyramid.range_envelope(start, stop)
        segment = values[start:stop]
        assert low <= segment.min() + 1e-9
        assert high >= segment.max() - 1e-9

    def test_range_envelope_validation(self):
        pyramid = SeriesPyramid(_series(np.zeros(8)), "x")
        with pytest.raises(ValueError):
            pyramid.range_envelope(4, 4)
        with pytest.raises(ValueError):
            pyramid.range_envelope(0, 99)

    def test_envelope_counter(self):
        pyramid = SeriesPyramid(_series(np.zeros(16)), "x", n_levels=2)
        counter = CostCounter()
        pyramid.level(2).read_envelopes(counter)
        assert counter.data_points == 2 * 4
