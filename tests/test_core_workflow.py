"""Tests for the Figure 5 model-revision workflow."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import RasterRetrievalEngine
from repro.core.workflow import ModelingWorkflow
from repro.data.raster import RasterLayer, RasterStack
from repro.exceptions import ModelError


@pytest.fixture(scope="module")
def stack():
    rng = np.random.default_rng(21)
    built = RasterStack()
    a = rng.uniform(0, 10, (64, 64))
    b = rng.uniform(0, 10, (64, 64))
    built.add(RasterLayer("a", a))
    built.add(RasterLayer("b", b))
    # The true process the workflow should converge toward.
    built.add(
        RasterLayer(
            "target", 2.0 * a - 1.0 * b + rng.normal(0, 0.1, (64, 64))
        )
    )
    return built


@pytest.fixture()
def engine(stack):
    return RasterRetrievalEngine(stack, leaf_size=8)


def _initial_cells(n=30, seed=0):
    rng = np.random.default_rng(seed)
    return [
        (int(row), int(col))
        for row, col in zip(rng.integers(0, 64, n), rng.integers(0, 64, n))
    ]


class TestWorkflowRun:
    def test_converges_to_generating_coefficients(self, engine):
        workflow = ModelingWorkflow(engine, "target")
        iterations = workflow.run(("a", "b"), _initial_cells(), k=15)
        final = iterations[-1].model
        assert final.coefficients["a"] == pytest.approx(2.0, abs=0.1)
        assert final.coefficients["b"] == pytest.approx(-1.0, abs=0.1)

    def test_coefficient_delta_shrinks(self, engine):
        workflow = ModelingWorkflow(engine, "target")
        iterations = workflow.run(
            ("a", "b"), _initial_cells(), k=15, max_iterations=5,
            tolerance=0.0,
        )
        deltas = [
            it.coefficient_delta
            for it in iterations
            if it.coefficient_delta != float("inf")
        ]
        assert deltas[-1] < deltas[0] + 1e-9

    def test_stops_on_tolerance(self, engine):
        workflow = ModelingWorkflow(engine, "target")
        iterations = workflow.run(
            ("a", "b"), _initial_cells(), k=15, tolerance=1e9
        )
        # inf on iteration 0, tiny delta on iteration 1 -> stop at 2.
        assert len(iterations) == 2

    def test_training_pool_grows(self, engine):
        workflow = ModelingWorkflow(engine, "target")
        iterations = workflow.run(
            ("a", "b"), _initial_cells(), k=15, max_iterations=4,
            tolerance=0.0,
        )
        sizes = [it.training_rows for it in iterations]
        assert sizes == sorted(sizes)
        assert sizes[-1] > sizes[0]

    def test_progressive_cheaper_than_exhaustive(self, engine):
        progressive = ModelingWorkflow(engine, "target", progressive=True)
        progressive.run(("a", "b"), _initial_cells(), k=15, max_iterations=3,
                        tolerance=0.0)
        exhaustive = ModelingWorkflow(engine, "target", progressive=False)
        exhaustive.run(("a", "b"), _initial_cells(), k=15, max_iterations=3,
                       tolerance=0.0)
        assert (
            progressive.total_cost.total_work
            < exhaustive.total_cost.total_work
        )

    def test_results_are_exact_regardless_of_strategy(self, engine):
        progressive = ModelingWorkflow(engine, "target", progressive=True)
        iters_p = progressive.run(
            ("a", "b"), _initial_cells(), k=10, max_iterations=1
        )
        exhaustive = ModelingWorkflow(engine, "target", progressive=False)
        iters_e = exhaustive.run(
            ("a", "b"), _initial_cells(), k=10, max_iterations=1
        )
        scores_p = sorted(round(s, 9) for s in iters_p[0].result.scores)
        scores_e = sorted(round(s, 9) for s in iters_e[0].result.scores)
        assert scores_p == scores_e


class TestWorkflowValidation:
    def test_unknown_target_layer(self, engine):
        with pytest.raises(ModelError):
            ModelingWorkflow(engine, "missing")

    def test_too_few_training_cells(self, engine):
        workflow = ModelingWorkflow(engine, "target")
        with pytest.raises(ModelError):
            workflow.run(("a", "b"), [(0, 0)], k=5)

    def test_max_iterations_positive(self, engine):
        workflow = ModelingWorkflow(engine, "target")
        with pytest.raises(ModelError):
            workflow.run(("a", "b"), _initial_cells(), max_iterations=0)
