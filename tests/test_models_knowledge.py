"""Tests for fuzzy knowledge models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.models.fuzzy import FuzzyAnd, sigmoid_membership, triangle_membership
from repro.models.knowledge import FuzzyRule, KnowledgeModel, RulePredicate


def _gamma_rule() -> FuzzyRule:
    return FuzzyRule(
        name="hot_gamma",
        predicates=(
            RulePredicate("gamma_ray", sigmoid_membership(45.0, 0.5), "gr>45"),
        ),
    )


def _moisture_rule() -> FuzzyRule:
    return FuzzyRule(
        name="moist",
        predicates=(
            RulePredicate("moisture", triangle_membership(0, 50, 100), "moist"),
            RulePredicate("gamma_ray", sigmoid_membership(45.0, 0.5), "gr>45"),
        ),
        weight=2.0,
    )


class TestRulePredicate:
    def test_degree(self):
        predicate = RulePredicate("x", triangle_membership(0, 5, 10))
        assert predicate.degree({"x": 5.0}) == 1.0

    def test_missing_attribute_raises(self):
        predicate = RulePredicate("x", triangle_membership(0, 5, 10))
        with pytest.raises(ModelError):
            predicate.degree({"y": 5.0})


class TestFuzzyRule:
    def test_min_conjunction(self):
        rule = _moisture_rule()
        degree = rule.degree({"moisture": 50.0, "gamma_ray": 45.0})
        assert degree == pytest.approx(0.5)  # min(1.0, 0.5)

    def test_product_conjunction(self):
        rule = FuzzyRule(
            "r",
            predicates=_moisture_rule().predicates,
            conjunction=FuzzyAnd("product"),
        )
        degree = rule.degree({"moisture": 50.0, "gamma_ray": 45.0})
        assert degree == pytest.approx(0.5)  # 1.0 * 0.5

    def test_needs_predicates(self):
        with pytest.raises(ModelError):
            FuzzyRule("empty", predicates=())

    def test_weight_positive(self):
        with pytest.raises(ModelError):
            FuzzyRule("w", predicates=_gamma_rule().predicates, weight=0.0)

    def test_attributes_deduplicated(self):
        assert _moisture_rule().attributes == ("moisture", "gamma_ray")


class TestKnowledgeModel:
    def test_weighted_combination(self):
        model = KnowledgeModel([_gamma_rule(), _moisture_rule()])
        point = {"gamma_ray": 100.0, "moisture": 0.0}
        # gamma rule ~1.0 (weight 1), moisture rule min(0, ~1)=0 (weight 2).
        assert model.evaluate(point) == pytest.approx(1.0 / 3.0, abs=0.01)

    def test_or_combination(self):
        model = KnowledgeModel(
            [_gamma_rule(), _moisture_rule()], combination="or"
        )
        point = {"gamma_ray": 100.0, "moisture": 0.0}
        assert model.evaluate(point) == pytest.approx(1.0, abs=0.01)

    def test_scores_in_unit_interval(self):
        model = KnowledgeModel([_gamma_rule(), _moisture_rule()])
        rng = np.random.default_rng(0)
        for _ in range(30):
            point = {
                "gamma_ray": rng.uniform(0, 150),
                "moisture": rng.uniform(0, 100),
            }
            assert 0.0 <= model.evaluate(point) <= 1.0

    def test_rule_degrees_exposed(self):
        model = KnowledgeModel([_gamma_rule(), _moisture_rule()])
        degrees = model.rule_degrees({"gamma_ray": 100.0, "moisture": 50.0})
        assert set(degrees) == {"hot_gamma", "moist"}

    def test_batch_matches_scalar(self):
        model = KnowledgeModel([_moisture_rule()])
        columns = {
            "moisture": np.array([0.0, 50.0, 100.0]),
            "gamma_ray": np.array([45.0, 45.0, 100.0]),
        }
        batch = model.evaluate_batch(columns)
        for i in range(3):
            point = {name: columns[name][i] for name in columns}
            assert batch[i] == pytest.approx(model.evaluate(point))

    def test_needs_rules(self):
        with pytest.raises(ModelError):
            KnowledgeModel([])

    def test_unknown_combination(self):
        with pytest.raises(ModelError):
            KnowledgeModel([_gamma_rule()], combination="xor")

    def test_attributes_and_complexity(self):
        model = KnowledgeModel([_gamma_rule(), _moisture_rule()])
        assert set(model.attributes) == {"gamma_ray", "moisture"}
        assert model.complexity == 2 * 3

    def test_supports_intervals(self):
        assert KnowledgeModel([_gamma_rule()]).supports_intervals


class TestIntervalSoundness:
    def test_predicate_interval_bounds_samples(self):
        predicate = RulePredicate("x", triangle_membership(0, 5, 10))
        low, high = predicate.degree_interval({"x": (2.0, 8.0)})
        for value in np.linspace(2.0, 8.0, 50):
            degree = predicate.degree({"x": float(value)})
            assert low - 1e-12 <= degree <= high + 1e-12
        assert high == 1.0  # the peak at 5 is inside the box

    def test_rule_interval_bounds_samples(self):
        rule = _moisture_rule()
        intervals = {"moisture": (20.0, 70.0), "gamma_ray": (30.0, 60.0)}
        low, high = rule.degree_interval(intervals)
        rng = np.random.default_rng(0)
        for _ in range(100):
            point = {
                "moisture": float(rng.uniform(20, 70)),
                "gamma_ray": float(rng.uniform(30, 60)),
            }
            assert low - 1e-9 <= rule.degree(point) <= high + 1e-9

    def test_model_interval_bounds_samples(self):
        for combination in ("weighted", "or"):
            model = KnowledgeModel(
                [_gamma_rule(), _moisture_rule()], combination=combination
            )
            intervals = {"moisture": (0.0, 100.0), "gamma_ray": (40.0, 50.0)}
            low, high = model.evaluate_interval(intervals)
            rng = np.random.default_rng(1)
            for _ in range(100):
                point = {
                    "moisture": float(rng.uniform(0, 100)),
                    "gamma_ray": float(rng.uniform(40, 50)),
                }
                score = model.evaluate(point)
                assert low - 1e-9 <= score <= high + 1e-9

    def test_degenerate_interval_is_point_degree(self):
        model = KnowledgeModel([_gamma_rule()])
        low, high = model.evaluate_interval({"gamma_ray": (50.0, 50.0)})
        exact = model.evaluate({"gamma_ray": 50.0})
        assert low == pytest.approx(exact)
        assert high == pytest.approx(exact)

    def test_missing_interval_raises(self):
        model = KnowledgeModel([_moisture_rule()])
        with pytest.raises(ModelError):
            model.evaluate_interval({"moisture": (0.0, 1.0)})
