"""Tests for synthetic well logs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.synth.welllog import (
    GAMMA_RAY_RESPONSE,
    LITHOLOGY_CODES,
    LITHOLOGY_NAMES,
    WellLogParams,
    generate_well_field,
    generate_well_log,
    layer_runs,
)


class TestWellLogParams:
    def test_unknown_lithology_rejected(self):
        with pytest.raises(ValueError):
            WellLogParams(lithologies=("granite",))

    def test_layer_thickness_validation(self):
        with pytest.raises(ValueError):
            WellLogParams(mean_layer_m=0.5, min_layer_m=1.0)

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            WellLogParams(riverbed_probability=1.5)


class TestGenerateWellLog:
    def test_depth_axis_and_attributes(self):
        log = generate_well_log(50.0, seed=1)
        assert log.attribute_names == ["lithology", "gamma_ray"]
        assert log.depth_at(0) == 0.0
        assert log.axis.max() < 50.0

    def test_deterministic(self):
        first = generate_well_log(80.0, seed=2)
        second = generate_well_log(80.0, seed=2)
        assert np.array_equal(first.values("lithology"), second.values("lithology"))

    def test_lithology_codes_valid(self):
        log = generate_well_log(100.0, seed=3)
        codes = set(log.values("lithology").astype(int))
        assert codes <= set(LITHOLOGY_NAMES)

    def test_gamma_tracks_lithology(self):
        """Shale samples must read hotter than sandstone samples."""
        log = generate_well_log(
            400.0, seed=4, params=WellLogParams(riverbed_probability=1.0)
        )
        lithology = log.values("lithology").astype(int)
        gamma = log.values("gamma_ray")
        shale = gamma[lithology == LITHOLOGY_CODES["shale"]]
        sandstone = gamma[lithology == LITHOLOGY_CODES["sandstone"]]
        assert shale.size and sandstone.size
        assert shale.mean() > sandstone.mean() + 30.0

    def test_gamma_non_negative(self):
        log = generate_well_log(200.0, seed=5)
        assert log.values("gamma_ray").min() >= 0.0

    def test_riverbed_planting(self):
        """With probability 1 every well must contain the triplet."""
        params = WellLogParams(riverbed_probability=1.0)
        for seed in range(5):
            log = generate_well_log(150.0, seed=seed, params=params)
            runs = layer_runs(log)
            sequence = [LITHOLOGY_NAMES[code] for code, _, _ in runs]
            found = any(
                sequence[i: i + 3] == ["shale", "sandstone", "siltstone"]
                for i in range(len(sequence) - 2)
            )
            assert found, f"seed {seed}: no riverbed in {sequence}"

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            generate_well_log(0.0, seed=1)


class TestLayerRuns:
    def test_runs_partition_samples(self):
        log = generate_well_log(120.0, seed=6)
        runs = layer_runs(log)
        assert runs[0][1] == 0
        assert runs[-1][2] == len(log)
        for (_, _, stop), (_, start, _) in zip(runs, runs[1:]):
            assert stop == start

    def test_runs_are_maximal(self):
        """Consecutive runs must have different lithologies."""
        log = generate_well_log(120.0, seed=7)
        runs = layer_runs(log)
        for (code_a, _, _), (code_b, _, _) in zip(runs, runs[1:]):
            assert code_a != code_b

    def test_runs_cover_constant_log(self):
        from repro.data.series import DepthSeries

        log = DepthSeries(
            "flat",
            np.arange(4.0),
            {"lithology": np.zeros(4), "gamma_ray": np.ones(4)},
        )
        assert layer_runs(log) == [(0, 0, 4)]


class TestWellField:
    def test_field_size_and_names(self):
        field = generate_well_field(5, 60.0, seed=8)
        assert len(field) == 5
        assert field[0].name == "well_0000"

    def test_wells_differ(self):
        field = generate_well_field(2, 60.0, seed=9)
        assert not np.array_equal(
            field[0].values("lithology"), field[1].values("lithology")
        )

    def test_n_wells_positive(self):
        with pytest.raises(ValueError):
            generate_well_field(0, 60.0, seed=1)

    def test_response_table_consistency(self):
        assert set(GAMMA_RAY_RESPONSE) == set(LITHOLOGY_CODES)
