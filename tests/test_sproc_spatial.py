"""Tests for spatial composite-object retrieval and land-use synthesis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.raster import RasterLayer
from repro.exceptions import QueryError
from repro.metrics.counters import CostCounter
from repro.sproc.naive import naive_top_k
from repro.sproc.spatial import (
    find_surrounded,
    region_ring,
    surrounded_by_query,
    surroundedness,
)
from repro.synth.landuse import generate_landuse


def _box_overlap(first, second) -> bool:
    return not (
        first[2] <= second[0]
        or second[2] <= first[0]
        or first[3] <= second[1]
        or second[3] <= first[1]
    )


@pytest.fixture(scope="module")
def scene():
    return generate_landuse((96, 96), n_houses=8, seed=13)


class TestLanduseScene:
    def test_houses_do_not_overlap(self, scene):
        for i, first in enumerate(scene.houses):
            for second in scene.houses[i + 1:]:
                assert not _box_overlap(first.box, second.box)

    def test_surroundedness_ground_truth_in_unit_interval(self, scene):
        for house in scene.houses:
            assert 0.0 <= house.bush_surroundedness <= 1.0

    def test_some_houses_surrounded_some_not(self):
        scene = generate_landuse(
            (96, 96), n_houses=10, surrounded_fraction=0.5, seed=5
        )
        values = [h.bush_surroundedness for h in scene.houses]
        assert max(values) > 0.7
        assert min(values) < 0.5

    def test_scores_separate_classes(self, scene):
        house_values = scene.house_score.values
        for house in scene.houses:
            row0, col0, row1, col1 = house.box
            assert house_values[row0:row1, col0:col1].mean() > 0.7
        background = house_values[scene.bush_mask]
        assert background.mean() < 0.3

    def test_deterministic(self):
        first = generate_landuse((64, 64), seed=9)
        second = generate_landuse((64, 64), seed=9)
        assert np.array_equal(
            first.house_score.values, second.house_score.values
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_landuse((8, 8))
        with pytest.raises(ValueError):
            generate_landuse((64, 64), surrounded_fraction=1.5)


class TestSurroundedness:
    def test_ring_excludes_region(self, scene):
        from repro.abstraction.contours import threshold_regions

        region = threshold_regions(scene.house_score.values, 0.5)[0]
        ring = region_ring(region, scene.shape, width=2)
        assert not (ring & region.cells)
        assert ring

    def test_fully_enclosed_region_scores_one(self):
        from repro.abstraction.contours import Region

        inner = Region(
            1, frozenset({(5, 5)}), (5, 5, 6, 6)
        )
        outer_cells = {
            (row, col)
            for row in range(3, 9)
            for col in range(3, 9)
            if (row, col) != (5, 5)
        }
        outer = Region(2, frozenset(outer_cells), (3, 3, 9, 9))
        assert surroundedness(inner, outer, (20, 20), width=2) == 1.0

    def test_distant_regions_score_zero(self):
        from repro.abstraction.contours import Region

        first = Region(1, frozenset({(0, 0)}), (0, 0, 1, 1))
        second = Region(2, frozenset({(50, 50)}), (50, 50, 51, 51))
        assert surroundedness(first, second, (64, 64)) == 0.0


class TestSurroundedByQuery:
    def test_query_structure(self, scene):
        query, houses, bushes = surrounded_by_query(
            scene.house_score, scene.bush_score
        )
        assert query.n_components == 2
        assert query.n_objects == len(houses) + len(bushes)

    def test_cross_typed_assignments_score_zero(self, scene):
        query, houses, bushes = surrounded_by_query(
            scene.house_score, scene.bush_score
        )
        if len(houses) >= 2:
            # Two house regions: no context score, no compatibility.
            assert query.score((0, 1)) == 0.0

    def test_matches_naive_oracle(self, scene):
        query, houses, bushes = surrounded_by_query(
            scene.house_score, scene.bush_score
        )
        matches = find_surrounded(scene.house_score, scene.bush_score, k=3)
        oracle = [
            (assignment, score)
            for assignment, score in naive_top_k(query, 3)
            if score > 0
        ]
        assert [round(m.score, 9) for m in matches] == [
            round(score, 9) for _, score in oracle
        ]

    def test_layer_shape_mismatch(self, scene):
        small = RasterLayer("tiny", np.zeros((4, 4)))
        with pytest.raises(QueryError):
            surrounded_by_query(scene.house_score, small)

    def test_no_candidates_raises(self):
        flat = RasterLayer("flat", np.zeros((32, 32)))
        with pytest.raises(QueryError):
            surrounded_by_query(flat, flat)


class TestFindSurrounded:
    def test_best_match_is_truly_surrounded(self, scene):
        matches = find_surrounded(scene.house_score, scene.bush_score, k=3)
        assert matches
        best = matches[0]
        overlapping = [
            house
            for house in scene.houses
            if _box_overlap(house.box, best.primary.bounding_box)
        ]
        assert overlapping
        assert max(h.bush_surroundedness for h in overlapping) > 0.6

    def test_scores_sorted(self, scene):
        matches = find_surrounded(scene.house_score, scene.bush_score, k=5)
        scores = [match.score for match in matches]
        assert scores == sorted(scores, reverse=True)

    def test_counter_tallies(self, scene):
        counter = CostCounter()
        find_surrounded(
            scene.house_score, scene.bush_score, k=2, counter=counter
        )
        assert counter.data_points > 0


class TestHighRiskHouses:
    def test_weather_gates_the_score(self, scene):
        import numpy as np

        from repro.apps.epidemiology import find_high_risk_houses
        from repro.data.series import TimeSeries

        wet_then_dry = TimeSeries(
            "good",
            np.arange(100.0),
            {
                "rain_mm": np.concatenate([np.full(50, 5.0), np.zeros(50)]),
                "temperature_c": np.full(100, 20.0),
            },
        )
        always_dry = TimeSeries(
            "bad",
            np.arange(100.0),
            {
                "rain_mm": np.zeros(100),
                "temperature_c": np.full(100, 20.0),
            },
        )
        risky = find_high_risk_houses(scene, wet_then_dry, k=3)
        safe = find_high_risk_houses(scene, always_dry, k=3)
        assert risky[0][0] > 0.3
        assert all(score == 0.0 for score, _ in safe)
