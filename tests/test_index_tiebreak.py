"""Cross-strategy tie-break agreement across every table index.

The router promises bit-identical answers whichever structure executes
a query, which requires every index to implement the service-wide
tie-break: on equal signed score, the smallest row id wins.
``scan_top_k`` is the differential oracle (its canonical heap idiom is
documented in :mod:`repro.index.scan`); these tests drive onion, CSVD,
and the R*-tree against it on integer-valued data engineered to tie
heavily, pin the specific boundary-tie regressions fixed in the routing
PR, and assert the Onion delta-buffer's cost accounting matches the
rebuilt index exactly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.table import Table
from repro.index.csvd import CSVDIndex
from repro.index.onion import OnionIndex
from repro.index.rtree import RStarTree
from repro.index.scan import scan_top_k
from repro.metrics.counters import CostCounter
from repro.models.linear import LinearModel


def _tie_table(n_rows: int, n_dims: int, seed: int) -> Table:
    """Integer-valued points in {0, 1, 2}^d: tiny value alphabet, heavy
    duplication, so score ties at the K boundary are the common case."""
    generator = np.random.default_rng(seed)
    values = generator.integers(0, 3, size=(n_rows, n_dims)).astype(float)
    return Table(
        "ties", {f"a{j}": values[:, j] for j in range(n_dims)}
    )


def _tie_model(n_dims: int, seed: int) -> LinearModel:
    generator = np.random.default_rng(seed)
    return LinearModel(
        {
            f"a{j}": float(generator.choice([-2.0, -1.0, 1.0, 2.0]))
            for j in range(n_dims)
        },
        intercept=0.0,
    )


def _rounded(answers: list[tuple[int, float]]) -> list[tuple[int, float]]:
    return [(row, round(score, 9)) for row, score in answers]


class TestCrossIndexTieAgreement:
    """Every index's top-K equals the scan oracle, ties included."""

    @given(
        n_rows=st.integers(min_value=4, max_value=40),
        n_dims=st.integers(min_value=2, max_value=3),
        k=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=10_000),
        maximize=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_all_index_types_match_scan_oracle(
        self, n_rows, n_dims, k, seed, maximize
    ):
        table = _tie_table(n_rows, n_dims, seed)
        model = _tie_model(n_dims, seed + 1)
        k = min(k, n_rows)
        oracle = _rounded(scan_top_k(table, model, k, maximize=maximize))
        weights = dict(model.coefficients)

        onion = OnionIndex(table)
        assert _rounded(onion.top_k(weights, k, maximize=maximize)) == (
            oracle
        ), "onion disagrees with scan oracle"

        csvd = CSVDIndex(table, n_clusters=4, kept_dims=2, seed=0)
        # Onion/csvd score w.x without the intercept; the oracle uses the
        # full model — intercept 0 keeps them directly comparable.
        assert _rounded(
            csvd.top_k_linear(weights, k, maximize=maximize)
        ) == oracle, "csvd disagrees with scan oracle"

        tree = RStarTree(n_dims=n_dims)
        points = table.matrix(table.column_names)
        for row in range(n_rows):
            tree.insert(tuple(points[row]), row)
        weight_vector = np.array(
            [weights[f"a{j}"] for j in range(n_dims)]
        )
        assert _rounded(
            tree.top_k_linear(weight_vector, k, maximize=maximize)
        ) == oracle, "rtree disagrees with scan oracle"

    @given(
        n_rows=st.integers(min_value=4, max_value=40),
        n_dims=st.integers(min_value=2, max_value=3),
        k=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_csvd_nearest_ties_row_ascending(self, n_rows, n_dims, k, seed):
        table = _tie_table(n_rows, n_dims, seed)
        k = min(k, n_rows)
        generator = np.random.default_rng(seed + 7)
        query = {
            f"a{j}": float(generator.integers(0, 3))
            for j in range(n_dims)
        }
        target = np.array([query[f"a{j}"] for j in range(n_dims)])
        points = table.matrix(table.column_names)
        distances = np.linalg.norm(points - target, axis=1)
        brute = sorted(
            range(n_rows),
            key=lambda row: (round(float(distances[row]), 9), row),
        )[:k]
        expected = [
            (row, round(float(distances[row]), 9)) for row in brute
        ]
        csvd = CSVDIndex(table, n_clusters=4, kept_dims=2, seed=0)
        assert _rounded(csvd.nearest(query, k)) == expected


class TestOnionBoundaryTieRegression:
    """Pin the strict-comparison bug: a tie straddling the K boundary
    must resolve to the smaller row, even across hull layers."""

    def test_cross_layer_boundary_tie_keeps_smallest_row(self):
        # Row 0 (layer 2, interior) ties row 2 (layer 1) at score 1.0
        # under w = (0.5, 0.5); the old strict `score > heap[0][0]`
        # eviction kept whichever tied row was seen first in layer order
        # (row 2) instead of row 0.
        table = Table(
            "tie",
            {
                "x": np.array([1.0, 0.0, 2.0, 2.0, 0.0]),
                "y": np.array([1.0, 0.0, 0.0, 2.0, 2.0]),
            },
        )
        index = OnionIndex(table)
        answers = index.top_k({"x": 0.5, "y": 0.5}, k=2)
        assert _rounded(answers) == [(3, 2.0), (0, 1.0)]

    def test_within_layer_tie_keeps_smallest_row(self):
        # All four corners of a square tie under w = (0, 1) except the
        # two top corners; those tie each other and the smaller row must
        # win the single remaining slot.
        table = Table(
            "square",
            {
                "x": np.array([0.0, 2.0, 2.0, 0.0]),
                "y": np.array([2.0, 2.0, 0.0, 0.0]),
            },
        )
        index = OnionIndex(table)
        answers = index.top_k({"x": 0.0, "y": 1.0}, k=1)
        assert _rounded(answers) == [(0, 2.0)]


class TestOnionDeltaBufferCounters:
    """Pre-rebuild (layers + pending buffer) and post-rebuild states of
    the same logical data must account the same work classes."""

    @pytest.fixture()
    def index_with_pending(self) -> OnionIndex:
        table = Table(
            "base",
            {
                "x": np.array([1.0, 0.0, 2.0, 2.0, 0.0]),
                "y": np.array([1.0, 0.0, 0.0, 2.0, 2.0]),
            },
        )
        index = OnionIndex(table)
        index.insert({"x": 3.0, "y": 3.0})
        index.insert({"x": 0.5, "y": 0.5})
        return index

    def test_counters_equal_before_and_after_rebuild(
        self, index_with_pending
    ):
        index = index_with_pending
        weights = {"x": 0.5, "y": 0.5}
        # k covers every tuple, so both states must evaluate all 7
        # points: equal model evals and tuples by construction, and the
        # delta buffer must be tallied as a visited structure unit
        # (node) exactly like the layer holding those tuples after the
        # rebuild absorbs them.
        before = CostCounter()
        answers_before = index.top_k(weights, k=7, counter=before)
        index.rebuild()
        after = CostCounter()
        answers_after = index.top_k(weights, k=7, counter=after)

        assert _rounded(answers_before) == _rounded(answers_after)
        assert before.model_evals == after.model_evals
        assert before.tuples_examined == after.tuples_examined
        # (3.0, 3.0) forms a new outermost layer on rebuild and
        # (0.5, 0.5) joins the interior, so layer count grows by exactly
        # the one structure unit the pending buffer contributed before.
        assert before.nodes_visited == after.nodes_visited

    def test_pending_scan_charges_a_node(self, index_with_pending):
        index = index_with_pending
        counter = CostCounter()
        index.top_k({"x": 1.0, "y": 0.0}, k=1, counter=counter)
        # One outermost layer + the pending delta buffer.
        assert counter.nodes_visited == 2

    def test_no_pending_no_extra_node(self):
        table = Table(
            "base",
            {"x": np.array([0.0, 1.0, 2.0]), "y": np.array([0.0, 1.0, 2.0])},
        )
        index = OnionIndex(table)
        counter = CostCounter()
        index.top_k({"x": 1.0, "y": 0.0}, k=1, counter=counter)
        assert counter.nodes_visited == 1

    def test_answers_exact_while_pending(self, index_with_pending):
        index = index_with_pending
        weights = {"x": 0.5, "y": 0.5}
        got = index.top_k(weights, k=3)
        # (3.0, 3.0) is row 5 (appended first), best at 3.0; then row 3
        # at 2.0; then the row-0/row-2 tie at 1.0 -> row 0.
        assert _rounded(got) == [(5, 3.0), (3, 2.0), (0, 1.0)]
