"""Tests for the vectorized kernel layer (PR 2).

Every kernel here has a scalar reference implementation in the same
codebase; these tests prove the vectorized paths reproduce the scalar
answers — including boundary-score ties, counter totals, and the
sharded service — rather than merely approximating them.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import RasterRetrievalEngine, TopKHeap
from repro.core.query import TopKQuery
from repro.core.series_engine import fsm_sweep
from repro.data.raster import RasterLayer, RasterStack
from repro.data.series import TimeSeries
from repro.metrics.counters import CostCounter
from repro.models.fsm_runner import (
    RAIN_THRESHOLD_MM,
    WEATHER_ALPHABET,
    compile_fsm,
    encode_weather,
    fire_ants_model,
    fire_ants_symbol_machine,
    naive_window_match,
    run_compiled_batch,
    run_fsm,
    run_fsm_batch,
    symbolize_weather,
)
from repro.models.fuzzy import (
    FuzzyAnd,
    FuzzyOr,
    gaussian_membership,
    sigmoid_membership,
    trapezoid_membership,
    triangle_membership,
)
from repro.models.knowledge import FuzzyRule, KnowledgeModel, RulePredicate
from repro.exceptions import ModelError
from repro.models.linear import LinearModel, stacked_interval_batch
from repro.service import RetrievalService, SharedTopKHeap


# --- TopKHeap.offer_block ------------------------------------------------


def _ranked_reference(k, entries):
    """Feed entries through per-cell offer — the scalar reference."""
    heap = TopKHeap(k)
    for score, row, col in entries:
        heap.offer(score, (row, col))
    return heap.ranked()


class TestOfferBlock:
    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_matches_per_cell_offer(self, data):
        """offer_block must leave the heap exactly where per-cell offers
        would — including score ties resolved by smallest (row, col)."""
        k = data.draw(st.integers(1, 8))
        n = data.draw(st.integers(0, 60))
        # Coarse scores force heavy tie structure.
        scores = [data.draw(st.sampled_from([-1.0, 0.0, 1.0, 2.0])) for _ in range(n)]
        cells = [
            (data.draw(st.integers(0, 6)), data.draw(st.integers(0, 6)))
            for _ in range(n)
        ]
        entries = [
            (score, row, col) for score, (row, col) in zip(scores, cells)
        ]

        block_heap = TopKHeap(k)
        # Random chunking: partial fills, threshold prefilter, and the
        # partition prefilter all get exercised across examples.
        start = 0
        while start < n:
            size = data.draw(st.integers(1, n - start))
            chunk = entries[start: start + size]
            block_heap.offer_block(
                np.array([e[0] for e in chunk]),
                np.array([e[1] for e in chunk]),
                np.array([e[2] for e in chunk]),
            )
            start += size

        assert block_heap.ranked() == _ranked_reference(k, entries)

    def test_empty_block_is_noop(self):
        heap = TopKHeap(3)
        heap.offer(1.0, (0, 0))
        heap.offer_block(np.array([]), np.array([]), np.array([]))
        assert heap.ranked() == [(1.0, (0, 0))]

    def test_zero_length_blocks_all_paths(self):
        """Zero-length offers must be no-ops on every internal path: the
        early guard (empty input — the shared scan emits these for
        fully-pruned sibling blocks) and the post-prefilter guard (a
        full heap rejecting every candidate; np.partition would raise on
        the emptied remainder)."""
        heap = TopKHeap(2)
        heap.offer_block(
            np.array([], dtype=float),
            np.array([], dtype=np.int64),
            np.array([], dtype=np.int64),
        )
        assert heap.ranked() == []
        heap.offer(5.0, (0, 0))
        heap.offer(4.0, (1, 1))
        # Full heap: the threshold prefilter drops every entry.
        heap.offer_block(
            np.array([1.0, 2.0, 3.0]),
            np.array([2, 3, 4]),
            np.array([2, 3, 4]),
        )
        assert heap.ranked() == [(5.0, (0, 0)), (4.0, (1, 1))]

    def test_k_below_one_rejected_at_construction(self):
        """Regression: TopKHeap(0) used to build an always-"full" heap
        whose threshold indexed into an empty list (IndexError deep in
        the offer path). The contract is now explicit at construction."""
        for bad_k in (0, -1, -7):
            with pytest.raises(ValueError):
                TopKHeap(bad_k)
            with pytest.raises(ValueError):
                SharedTopKHeap(bad_k)
        assert TopKHeap(1).ranked() == []

    def test_boundary_ties_survive_prefilter(self):
        """Entries tied with the threshold/partition cutoff must still be
        offered: a smaller cell at the same score wins the tie-break."""
        heap = TopKHeap(2)
        heap.offer(5.0, (9, 9))
        heap.offer(5.0, (8, 8))
        heap.offer_block(
            np.array([5.0, 5.0, 4.0]),
            np.array([0, 1, 2]),
            np.array([0, 1, 2]),
        )
        assert heap.ranked() == [(5.0, (0, 0)), (5.0, (1, 1))]

    def test_shared_heap_block_offers_from_threads(self):
        """Concurrent offer_block calls must keep the exact top-k of the
        union (single lock hold per block, no deadlock)."""
        heap = SharedTopKHeap(10)
        rng = np.random.default_rng(3)
        blocks = [
            (
                rng.integers(0, 50, 200).astype(float),
                rng.integers(0, 40, 200),
                rng.integers(0, 40, 200),
            )
            for _ in range(8)
        ]
        threads = [
            threading.Thread(target=heap.offer_block, args=block)
            for block in blocks
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        all_entries = [
            (float(s), int(r), int(c))
            for scores, rows, cols in blocks
            for s, r, c in zip(scores, rows, cols)
        ]
        assert heap.ranked() == _ranked_reference(10, all_entries)


# --- batched interval bounds --------------------------------------------


def _random_boxes(data, attributes, n):
    lows = {}
    highs = {}
    for name in attributes:
        low = np.array(
            [data.draw(st.floats(-50, 50)) for _ in range(n)]
        )
        width = np.array(
            [data.draw(st.floats(0, 30)) for _ in range(n)]
        )
        lows[name] = low
        highs[name] = low + width
    return lows, highs


class TestIntervalBatch:
    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_linear_bitwise_equal_to_scalar(self, data):
        n_attrs = data.draw(st.integers(1, 4))
        attributes = [f"a{i}" for i in range(n_attrs)]
        model = LinearModel(
            {
                name: data.draw(
                    st.floats(-3, 3).filter(lambda w: w != 0)
                )
                for name in attributes
            },
            intercept=data.draw(st.floats(-10, 10)),
        )
        n = data.draw(st.integers(1, 12))
        lows, highs = _random_boxes(data, attributes, n)
        batch_low, batch_high = model.evaluate_interval_batch(lows, highs)
        for i in range(n):
            box = {
                name: (float(lows[name][i]), float(highs[name][i]))
                for name in attributes
            }
            low, high = model.evaluate_interval(box)
            # Bitwise equality: the engine's frontier ordering must not
            # depend on which path produced the bound.
            assert batch_low[i] == low
            assert batch_high[i] == high

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_knowledge_bitwise_equal_to_scalar(self, data):
        memberships = [
            triangle_membership(0.0, 5.0, 10.0),
            trapezoid_membership(-5.0, 0.0, 3.0, 8.0),
            gaussian_membership(2.0, 4.0),
            sigmoid_membership(1.0, steepness=0.8),
        ]
        attributes = ["x", "y"]
        rules = []
        n_rules = data.draw(st.integers(1, 3))
        for r in range(n_rules):
            predicates = tuple(
                RulePredicate(
                    attribute=data.draw(st.sampled_from(attributes)),
                    membership=data.draw(st.sampled_from(memberships)),
                )
                for _ in range(data.draw(st.integers(1, 3)))
            )
            rules.append(
                FuzzyRule(
                    name=f"r{r}",
                    predicates=predicates,
                    weight=data.draw(st.floats(0.5, 2.0)),
                    conjunction=FuzzyAnd(
                        data.draw(st.sampled_from(["min", "product"]))
                    ),
                )
            )
        model = KnowledgeModel(
            rules,
            combination=data.draw(st.sampled_from(["or", "weighted"])),
            disjunction=FuzzyOr(data.draw(st.sampled_from(["max", "sum"]))),
        )
        n = data.draw(st.integers(1, 10))
        lows, highs = _random_boxes(data, attributes, n)
        batch_low, batch_high = model.evaluate_interval_batch(lows, highs)
        for i in range(n):
            box = {
                name: (float(lows[name][i]), float(highs[name][i]))
                for name in attributes
            }
            low, high = model.evaluate_interval(box)
            assert batch_low[i] == low
            assert batch_high[i] == high

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_stacked_bitwise_equal_to_per_model(self, data):
        """The batch executor's stacked bounds must be bitwise equal to
        each model bounding the boxes on its own — any drift would
        change frontier ordering between batch and solo searches."""
        n_attrs = data.draw(st.integers(1, 4))
        attributes = [f"a{i}" for i in range(n_attrs)]
        n_models = data.draw(st.integers(1, 6))
        models = [
            LinearModel(
                {
                    name: data.draw(
                        st.floats(-3, 3).filter(lambda w: w != 0)
                    )
                    for name in attributes
                },
                intercept=data.draw(st.floats(-10, 10)),
            )
            for _ in range(n_models)
        ]
        n = data.draw(st.integers(1, 12))
        lows, highs = _random_boxes(data, attributes, n)
        stacked = stacked_interval_batch(models, lows, highs)
        assert len(stacked) == n_models
        for model, (stacked_low, stacked_high) in zip(models, stacked):
            solo_low, solo_high = model.evaluate_interval_batch(
                lows, highs
            )
            assert (stacked_low == solo_low).all()
            assert (stacked_high == solo_high).all()

    def test_stacked_rejects_mismatched_attribute_orders(self):
        a = LinearModel({"x": 1.0, "y": 2.0})
        b = LinearModel({"y": 2.0, "x": 1.0})
        with pytest.raises(ModelError):
            stacked_interval_batch([a, b], {}, {})
        with pytest.raises(ModelError):
            stacked_interval_batch([], {}, {})

    def test_default_fallback_loops_over_scalar(self):
        """Models without a closed form inherit a loop that defers to
        their own evaluate_interval."""

        class Boxy(LinearModel):
            # Force the base-class default by hiding the override.
            evaluate_interval_batch = (
                LinearModel.__mro__[1].evaluate_interval_batch
            )

        model = Boxy({"x": 2.0, "y": -1.0}, intercept=3.0)
        lows = {"x": np.array([0.0, 1.0]), "y": np.array([-2.0, 0.0])}
        highs = {"x": np.array([1.0, 4.0]), "y": np.array([0.0, 5.0])}
        batch_low, batch_high = model.evaluate_interval_batch(lows, highs)
        for i in range(2):
            low, high = model.evaluate_interval(
                {
                    "x": (float(lows["x"][i]), float(highs["x"][i])),
                    "y": (float(lows["y"][i]), float(highs["y"][i])),
                }
            )
            assert batch_low[i] == low
            assert batch_high[i] == high

    def test_gaussian_scalar_and_batch_square_identically(self):
        """Regression: the scalar gaussian squared via python ``** 2``
        (C pow) while the batch path squared via numpy ``** 2``
        (multiply); the two differ by 1 ulp for some inputs, e.g. the
        one below, breaking scalar/batch bitwise equality."""
        membership = gaussian_membership(2.0, 4.0)
        values = np.array([7.252635198114874, -33.0, 0.1, 41.5])
        degrees = membership.batch(values)
        for value, degree in zip(values, degrees):
            assert membership(float(value)) == degree

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_membership_batch_and_interval_batch_match_scalar(self, data):
        membership = data.draw(
            st.sampled_from(
                [
                    triangle_membership(-2.0, 1.0, 6.0),
                    trapezoid_membership(0.0, 2.0, 4.0, 9.0),
                    gaussian_membership(0.0, 2.5),
                    sigmoid_membership(3.0, steepness=-1.2),
                ]
            )
        )
        values = np.array(
            [data.draw(st.floats(-12, 12)) for _ in range(8)]
        )
        batched = membership.batch(values)
        for value, degree in zip(values, batched):
            assert degree == membership(float(value))
        lows = np.minimum(values[:4], values[4:])
        highs = np.maximum(values[:4], values[4:])
        minima, maxima = membership.interval_batch(lows, highs)
        for i in range(4):
            low, high = membership.interval(float(lows[i]), float(highs[i]))
            assert minima[i] == low
            assert maxima[i] == high


# --- engine end-to-end: vectorized search vs per-cell reference ----------


class TestSearchMatchesPerCellReference:
    @given(
        rows=st.integers(4, 20),
        cols=st.integers(4, 20),
        n_layers=st.integers(1, 3),
        seed=st.integers(0, 500),
        k=st.integers(1, 20),
        maximize=st.booleans(),
        n_shards=st.integers(1, 4),
    )
    @settings(max_examples=25, deadline=None)
    def test_all_strategies_and_service(
        self, rows, cols, n_layers, seed, k, maximize, n_shards,
        make_tie_stack,
    ):
        """Every strategy — and the sharded service — must equal a
        per-cell offer loop over exact scores, ties included."""
        stack = make_tie_stack(rows, cols, n_layers, seed)
        rng = np.random.default_rng(seed + 1)
        model = LinearModel(
            {
                name: float(rng.choice([-2.0, -1.0, 1.0, 2.0]))
                for name in stack.names
            },
            intercept=0.5,
        )
        query = TopKQuery(model=model, k=k, maximize=maximize)

        sign = 1.0 if maximize else -1.0
        columns = {name: stack[name].values for name in stack.names}
        scores = sign * model.evaluate_batch(columns)
        reference_heap = TopKHeap(k)
        for row in range(rows):
            for col in range(cols):
                reference_heap.offer(float(scores[row, col]), (row, col))
        expected = [
            (cell[0], cell[1], round(sign * signed, 9))
            for signed, cell in reference_heap.ranked()
        ]

        def answers(result):
            return [
                (a.row, a.col, round(a.score, 9)) for a in result.answers
            ]

        engine = RasterRetrievalEngine(stack, leaf_size=4)
        assert answers(engine.exhaustive_top_k(query)) == expected
        for use_tiles in (True, False):
            for use_levels in (True, False):
                result = engine.progressive_top_k(
                    query, use_tiles=use_tiles, use_model_levels=use_levels
                )
                assert answers(result) == expected, result.strategy

        service = RetrievalService(stack, leaf_size=4, n_shards=n_shards)
        assert answers(service.top_k(query)) == expected


# --- FSM batch kernel ----------------------------------------------------


def _weather_series(name, rain, temperature):
    n = len(rain)
    return TimeSeries(
        name,
        np.arange(n, dtype=float),
        {
            "rain_mm": np.array(rain, dtype=float),
            "temperature_c": np.array(temperature, dtype=float),
        },
    )


def _random_weather(data, n_days):
    rain = [
        5.0 if data.draw(st.booleans()) else 0.0 for _ in range(n_days)
    ]
    temperature = [
        data.draw(st.sampled_from([18.0, 26.0])) for _ in range(n_days)
    ]
    return rain, temperature


class TestFSMBatch:
    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_batch_matches_scalar_runs_and_counters(self, data):
        """The table kernel must reproduce scalar runs — trajectories,
        acceptance bookkeeping, and counter totals — for random weather."""
        machine = fire_ants_symbol_machine()
        n_series = data.draw(st.integers(1, 5))
        n_days = data.draw(st.integers(0, 25))
        all_symbols = []
        scalar_counter = CostCounter()
        scalar_runs = []
        for _ in range(n_series):
            rain, temperature = _random_weather(data, n_days)
            events = [
                {"rain_mm": r, "temperature_c": t}
                for r, t in zip(rain, temperature)
            ]
            symbols = symbolize_weather(events)
            all_symbols.append(symbols)
            scalar_runs.append(run_fsm(machine, symbols, scalar_counter))

        code_of = {symbol: i for i, symbol in enumerate(WEATHER_ALPHABET)}
        codes = np.array(
            [[code_of[s] for s in symbols] for symbols in all_symbols],
            dtype=np.intp,
        ).reshape(n_series, n_days)
        batch_counter = CostCounter()
        batch_runs = run_fsm_batch(
            machine, codes, WEATHER_ALPHABET, batch_counter
        )

        assert [r.trajectory for r in batch_runs] == [
            r.trajectory for r in scalar_runs
        ]
        assert [r.acceptance_times for r in batch_runs] == [
            r.acceptance_times for r in scalar_runs
        ]
        assert [r.accepting_days for r in batch_runs] == [
            r.accepting_days for r in scalar_runs
        ]
        assert batch_counter.model_evals == scalar_counter.model_evals
        assert batch_counter.flops == scalar_counter.flops

    def test_encode_weather_matches_symbolize(self):
        rain = np.array([5.0, 0.0, 0.0, 0.05])
        temperature = np.array([30.0, 30.0, 20.0, 25.0])
        events = [
            {"rain_mm": r, "temperature_c": t}
            for r, t in zip(rain, temperature)
        ]
        codes = encode_weather(rain, temperature)
        assert [WEATHER_ALPHABET[c] for c in codes] == symbolize_weather(events)

    def test_compile_rejects_partial_machines(self):
        """A missing="error" machine that is not total over the alphabet
        must fail at compile time, not mid-sweep."""
        from repro.exceptions import FSMError

        machine = fire_ants_symbol_machine()
        with pytest.raises(FSMError):
            compile_fsm(machine, ("rain", "dry_hot", "volcano"))

    def test_compiled_batch_rejects_bad_shapes(self):
        compiled = compile_fsm(fire_ants_symbol_machine(), WEATHER_ALPHABET)
        with pytest.raises(ValueError):
            run_compiled_batch(compiled, np.zeros(4, dtype=np.intp))

    def test_fsm_sweep_handles_mixed_lengths(self):
        machine = fire_ants_symbol_machine()
        collection = {
            "short": _weather_series(
                "short", [5.0, 0.0, 0.0], [20.0, 20.0, 20.0]
            ),
            "long": _weather_series(
                "long",
                [5.0, 0.0, 0.0, 0.0, 0.0],
                [20.0, 20.0, 20.0, 20.0, 28.0],
            ),
            "short2": _weather_series(
                "short2", [0.0, 0.0, 0.0], [28.0, 28.0, 28.0]
            ),
        }

        def encoder(series, counter=None):
            rain = series.read_range("rain_mm", 0, len(series), counter)
            temperature = series.read_range(
                "temperature_c", 0, len(series), counter
            )
            return encode_weather(rain, temperature)

        counter = CostCounter()
        runs = fsm_sweep(
            collection, machine, encoder, WEATHER_ALPHABET, counter
        )
        assert list(runs) == list(collection)
        assert runs["long"].acceptance_times == (4,)
        assert not runs["short"].accepted
        # 2 attributes per day per series.
        assert counter.data_points == 2 * (3 + 5 + 3)


# --- the single-pass naive baseline vs the quadratic original ------------


def _quadratic_rescan_reference(
    series, dry_days_required=3, flight_temperature_c=25.0
):
    """The seed's O(n²) backward-rescan baseline, kept verbatim as the
    behavioural reference for the single-pass rewrite."""
    onsets = []
    previously_flying = False
    for day in range(len(series)):
        today_rain = series.read("rain_mm", day)
        today_temp = series.read("temperature_c", day)
        flying = False
        if (
            today_rain <= RAIN_THRESHOLD_MM
            and today_temp >= flight_temperature_c
        ):
            dry_run = 0
            for back_day in range(day - 1, -1, -1):
                rain = series.read("rain_mm", back_day)
                if rain > RAIN_THRESHOLD_MM:
                    break
                dry_run += 1
            flying = dry_run >= dry_days_required
        if flying and not previously_flying:
            onsets.append(day)
        previously_flying = flying
    return onsets


class TestNaiveSinglePass:
    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_matches_quadratic_original(self, data):
        n_days = data.draw(st.integers(1, 50))
        rain, temperature = _random_weather(data, n_days)
        required = data.draw(st.integers(1, 5))
        series = _weather_series("w", rain, temperature)
        assert naive_window_match(
            series, dry_days_required=required
        ) == _quadratic_rescan_reference(series, dry_days_required=required)

    def test_linear_data_reads(self):
        """The rewrite reads each sample exactly once — 2 data points per
        day — where the original re-read history every hot dry day."""
        n = 80
        series = _weather_series("w", [0.0] * n, [30.0] * n)
        counter = CostCounter()
        naive_window_match(series, counter=counter)
        assert counter.data_points == 2 * n

    def test_onsets_match_fsm_on_canonical_sequence(self):
        rain = [5.0, 0.0, 0.0, 0.0, 0.0]
        temperature = [20.0, 20.0, 20.0, 20.0, 28.0]
        series = _weather_series("w", rain, temperature)
        events = [
            {"rain_mm": r, "temperature_c": t}
            for r, t in zip(rain, temperature)
        ]
        machine = fire_ants_model()
        run = run_fsm(machine, events)
        assert naive_window_match(series) == list(run.acceptance_times)


class TestOfferBlockViews:
    """``offer_block`` must accept any array the engine hands it —
    float32 embedding scores, strided slices, 2-D column views — and
    land on exactly the heap state per-cell ``offer`` calls produce."""

    @staticmethod
    def _reference(scores, rows, cols, k):
        heap = TopKHeap(k)
        for score, row, col in zip(
            np.asarray(scores, dtype=np.float64).reshape(-1).tolist(),
            np.asarray(rows).reshape(-1).tolist(),
            np.asarray(cols).reshape(-1).tolist(),
        ):
            heap.offer(score, (int(row), int(col)))
        return heap.ranked()

    @given(
        n=st.integers(1, 60),
        k=st.integers(1, 12),
        seed=st.integers(0, 200),
    )
    @settings(max_examples=40, deadline=None)
    def test_float32_block_matches_scalar_offers(self, n, k, seed):
        rng = np.random.default_rng(seed)
        # Quantized so float32 blocks carry genuine score ties.
        scores = rng.integers(-3, 4, size=n).astype(np.float32) / 2
        rows = rng.integers(0, 8, size=n)
        cols = rng.integers(0, 8, size=n)
        heap = TopKHeap(k)
        heap.offer_block(scores, rows, cols)
        assert heap.ranked() == self._reference(scores, rows, cols, k)

    @given(
        n=st.integers(2, 60),
        k=st.integers(1, 12),
        seed=st.integers(0, 200),
        step=st.integers(2, 4),
    )
    @settings(max_examples=40, deadline=None)
    def test_strided_view_matches_contiguous(self, n, k, seed, step):
        rng = np.random.default_rng(seed)
        dense = rng.standard_normal(n * step)
        strided = dense[::step]
        assert not strided.flags["C_CONTIGUOUS"]
        rows = np.arange(n)
        cols = np.arange(n)[::-1].copy()
        heap = TopKHeap(k)
        heap.offer_block(strided, rows, cols)
        contiguous = TopKHeap(k)
        contiguous.offer_block(strided.copy(), rows, cols)
        assert heap.ranked() == contiguous.ranked()
        assert heap.ranked() == self._reference(strided, rows, cols, k)

    def test_2d_column_view_float32(self):
        """The shape engine code actually produces: a column sliced out
        of a float32 matrix — non-contiguous AND narrow."""
        matrix = np.arange(24, dtype=np.float32).reshape(6, 4)
        column = matrix[:, 1]
        assert not column.flags["OWNDATA"]
        heap = TopKHeap(3)
        heap.offer_block(column, np.arange(6), np.zeros(6, dtype=int))
        assert heap.ranked() == self._reference(
            column, np.arange(6), np.zeros(6, dtype=int), 3
        )

    def test_empty_block_is_a_noop(self):
        heap = TopKHeap(2)
        heap.offer(1.0, (0, 0))
        heap.offer_block(np.empty(0, dtype=np.float32), [], [])
        heap.offer(2.0, (1, 1))
        heap.offer_block(np.empty((0, 3)), np.empty(0), np.empty(0))
        assert heap.ranked() == [(2.0, (1, 1)), (1.0, (0, 0))]
