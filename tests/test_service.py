"""Tests for the sharded, cached retrieval service.

The service's contract is the engine's contract, concurrently: the
merged answer set must be *identical* to the single-engine answer at
every shard count — including on archives engineered to have score ties
at the K boundary, where the shared smallest-``(row, col)`` tie-break
is what keeps the four strategies and every shard count in agreement.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import RasterRetrievalEngine, TopKHeap
from repro.core.query import TopKQuery
from repro.data.archive import Archive
from repro.data.raster import RasterLayer, RasterStack
from repro.exceptions import PlanError, QueryError
from repro.models.linear import LinearModel, hps_risk_model
from repro.service import (
    QueryCache,
    RetrievalService,
    SharedTopKHeap,
    model_fingerprint,
    query_fingerprint,
    row_band_shards,
)


class TestCrossStrategyTieAgreement:
    """All four strategies and the sharded service return identical
    answers on tie-heavy archives (the satellite bugfix's contract)."""

    @given(
        rows=st.integers(4, 24),
        cols=st.integers(4, 24),
        n_layers=st.integers(1, 3),
        seed=st.integers(0, 1000),
        k=st.integers(1, 30),
        maximize=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_strategies_and_shards_agree_on_ties(
        self, rows, cols, n_layers, seed, k, maximize,
        make_tie_stack, answer_list,
    ):
        stack = make_tie_stack(rows, cols, n_layers, seed)
        rng = np.random.default_rng(seed + 1)
        coefficients = {
            name: float(rng.choice([-2.0, -1.0, 1.0, 2.0]))
            for name in stack.names
        }
        model = LinearModel(coefficients, intercept=1.0)
        engine = RasterRetrievalEngine(stack, leaf_size=4)
        query = TopKQuery(model=model, k=k, maximize=maximize)

        expected = answer_list(engine.exhaustive_top_k(query))
        for use_tiles in (True, False):
            for use_levels in (True, False):
                result = engine.progressive_top_k(
                    query, use_tiles=use_tiles, use_model_levels=use_levels
                )
                assert answer_list(result) == expected, (
                    f"strategy ({use_tiles=}, {use_levels=}) diverged"
                )

        service = RetrievalService(stack, leaf_size=4, cache_size=0)
        for n_shards in (1, 2, 4):
            sharded = service.top_k(query, n_shards=n_shards)
            assert answer_list(sharded) == expected, (
                f"service at {n_shards} shards diverged"
            )

    def test_constant_layer_boundary_tie(self):
        """Every cell ties; the answer must be the k smallest (row, col)
        cells for every strategy and every shard count."""
        stack = RasterStack()
        stack.add(RasterLayer("a", np.full((8, 8), 3.0)))
        engine = RasterRetrievalEngine(stack, leaf_size=4)
        query = TopKQuery(model=LinearModel({"a": 1.0}), k=5)
        expected = [(0, 0), (0, 1), (0, 2), (0, 3), (0, 4)]

        assert engine.exhaustive_top_k(query).locations == expected
        for use_tiles in (True, False):
            for use_levels in (True, False):
                result = engine.progressive_top_k(
                    query, use_tiles=use_tiles, use_model_levels=use_levels
                )
                assert result.locations == expected

        service = RetrievalService(stack, leaf_size=4, cache_size=0)
        for n_shards in (1, 2, 4):
            assert service.top_k(query, n_shards=n_shards).locations == expected

    def test_minimize_direction_ties(self, make_tie_stack, answer_list):
        stack = make_tie_stack(12, 12, 2, seed=7)
        model = LinearModel({"layer0": -1.0, "layer1": 2.0})
        engine = RasterRetrievalEngine(stack, leaf_size=4)
        service = RetrievalService(stack, leaf_size=4, cache_size=0)
        query = TopKQuery(model=model, k=9, maximize=False)
        expected = answer_list(engine.exhaustive_top_k(query))
        assert answer_list(engine.progressive_top_k(query)) == expected
        for n_shards in (2, 4):
            assert answer_list(service.top_k(query, n_shards=n_shards)) == expected


class TestServiceExecution:
    @pytest.fixture(scope="class")
    def scene(self):
        from repro.synth.landsat import generate_scene
        from repro.synth.terrain import generate_dem

        dem = generate_dem((96, 96), seed=31)
        stack = generate_scene((96, 96), seed=32, terrain=dem)
        stack.add(dem)
        return stack

    def test_matches_engine_on_real_scene(self, scene, answer_list):
        service = RetrievalService(scene, leaf_size=8, cache_size=0)
        query = TopKQuery(model=hps_risk_model(), k=12)
        expected = answer_list(service.engine.progressive_top_k(query))
        for n_shards in (1, 2, 4, 7):
            assert answer_list(service.top_k(query, n_shards=n_shards)) == expected

    def test_region_restricted_sharded_query(self, scene, answer_list):
        service = RetrievalService(scene, leaf_size=8, cache_size=0)
        query = TopKQuery(
            model=hps_risk_model(), k=6, region=(10, 15, 70, 60)
        )
        expected = answer_list(service.engine.progressive_top_k(query))
        result = service.top_k(query, n_shards=4)
        assert answer_list(result) == expected
        for row, col in result.locations:
            assert 10 <= row < 70 and 15 <= col < 60

    def test_merged_counter_and_audit(self, scene):
        service = RetrievalService(scene, leaf_size=8, cache_size=0)
        query = TopKQuery(model=hps_risk_model(), k=10)
        result = service.top_k(query, n_shards=4)
        assert result.counter.notes["shards"] == 4
        assert result.counter.total_work > 0
        assert result.counter.wall_seconds > 0
        assert result.audit.tiles_screened > 0
        assert result.strategy == "both-sharded[4]"

    def test_data_progressive_knob(self, scene, answer_list):
        service = RetrievalService(scene, leaf_size=8, cache_size=0)
        query = TopKQuery(model=hps_risk_model(), k=5)
        expected = answer_list(
            service.engine.progressive_top_k(query, use_model_levels=False)
        )
        result = service.top_k(query, n_shards=3, use_model_levels=False)
        assert answer_list(result) == expected
        assert result.strategy == "data-progressive-sharded[3]"

    def test_invalid_arguments(self, scene):
        with pytest.raises(QueryError):
            RetrievalService(scene, n_shards=0)
        service = RetrievalService(scene, cache_size=0)
        query = TopKQuery(model=hps_risk_model(), k=3)
        with pytest.raises(QueryError):
            service.top_k(query, n_shards=0)
        with pytest.raises(QueryError):
            service.top_k(query, pruning="magic")


class TestQueryCache:
    def _service(self, make_tie_stack, **kwargs):
        stack = make_tie_stack(16, 16, 2, seed=3)
        return RetrievalService(stack, leaf_size=4, **kwargs)

    def _query(self, k=5):
        return TopKQuery(model=LinearModel({"layer0": 2.0, "layer1": 1.0}), k=k)

    def test_cache_hit_returns_same_answers(
        self, make_tie_stack, answer_list
    ):
        service = self._service(make_tie_stack, cache_size=8)
        cold = service.top_k(self._query())
        warm = service.top_k(self._query())
        assert service.stats.cache_hits == 1
        assert service.stats.cache_misses == 1
        assert warm.strategy == cold.strategy + "-cached"
        assert answer_list(warm) == answer_list(cold)

    def test_cache_miss_on_different_question(self, make_tie_stack):
        service = self._service(make_tie_stack, cache_size=8)
        service.top_k(self._query(k=5))
        service.top_k(self._query(k=6))
        service.top_k(self._query(k=5), use_model_levels=False)
        service.top_k(
            TopKQuery(
                model=LinearModel({"layer0": 2.0, "layer1": 1.0}),
                k=5,
                maximize=False,
            )
        )
        assert service.stats.cache_hits == 0
        assert service.stats.cache_misses == 4

    def test_equal_models_share_entries(self, make_tie_stack):
        """Linear models fingerprint by value, not identity."""
        service = self._service(make_tie_stack, cache_size=8)
        service.top_k(self._query())
        service.top_k(self._query())  # new but equal model instance
        assert service.stats.cache_hits == 1

    def test_clipped_region_normalizes_key(self, make_tie_stack):
        """region=None and the explicit whole-grid region hit one entry."""
        service = self._service(make_tie_stack, cache_size=8)
        model = LinearModel({"layer0": 2.0, "layer1": 1.0})
        service.top_k(TopKQuery(model=model, k=5))
        service.top_k(TopKQuery(model=model, k=5, region=(0, 0, 16, 16)))
        assert service.stats.cache_hits == 1

    def test_use_cache_false_bypasses(self, make_tie_stack):
        service = self._service(make_tie_stack, cache_size=8)
        service.top_k(self._query(), use_cache=False)
        service.top_k(self._query(), use_cache=False)
        assert service.stats.cache_hits == 0
        assert len(service.cache) == 0

    def test_cache_disabled(self, make_tie_stack):
        service = self._service(make_tie_stack, cache_size=0)
        assert service.cache is None
        result = service.top_k(self._query())
        assert len(result) == 5

    def test_invalidation_after_archive_layer_change(self, answer_list):
        rng = np.random.default_rng(9)
        archive = Archive("study")
        for name in ("a", "b"):
            archive.add(
                RasterLayer(name, rng.integers(0, 4, (16, 16)).astype(float))
            )
        service = RetrievalService.from_archive(
            archive, ["a", "b"], leaf_size=4, cache_size=8
        )
        query = TopKQuery(model=LinearModel({"a": 1.0, "b": 1.0}), k=4)
        cold = service.top_k(query)
        assert service.top_k(query).strategy.endswith("-cached")

        archive.add(
            RasterLayer("c", rng.integers(0, 4, (16, 16)).astype(float))
        )
        after = service.top_k(query)
        assert not after.strategy.endswith("-cached")
        assert service.stats.invalidations == 1
        assert answer_list(after) == answer_list(cold)

    def test_explicit_invalidate(self, make_tie_stack):
        service = self._service(make_tie_stack, cache_size=8)
        service.top_k(self._query())
        service.invalidate()
        service.top_k(self._query())
        assert service.stats.cache_hits == 0
        assert service.stats.invalidations == 1

    def test_lru_eviction_order(self):
        cache = QueryCache(maxsize=2)
        sentinel = object()
        cache.put("a", sentinel)
        cache.put("b", sentinel)
        assert cache.get("a") is sentinel  # refresh "a"
        cache.put("c", sentinel)  # evicts "b", the LRU entry
        assert "a" in cache and "c" in cache and "b" not in cache
        with pytest.raises(ValueError):
            QueryCache(maxsize=0)

    def test_fingerprints(self):
        model_a = LinearModel({"x": 1.0, "y": 2.0}, intercept=3.0)
        model_b = LinearModel({"y": 2.0, "x": 1.0}, intercept=3.0)
        assert model_fingerprint(model_a) == model_fingerprint(model_b)
        query_a = TopKQuery(model=model_a, k=5)
        query_b = TopKQuery(model=model_b, k=5)
        assert query_fingerprint(query_a, (0, 0, 4, 4), p=1) == query_fingerprint(
            query_b, (0, 0, 4, 4), p=1
        )
        assert query_fingerprint(query_a, (0, 0, 4, 4)) != query_fingerprint(
            TopKQuery(model=model_a, k=6), (0, 0, 4, 4)
        )


class TestSharding:
    def test_row_bands_partition_exactly(self):
        region = (3, 2, 20, 11)
        for n_shards in (1, 2, 3, 5, 16, 17, 100):
            bands = row_band_shards(region, n_shards)
            assert len(bands) == min(n_shards, 17)
            assert bands[0][0] == 3 and bands[-1][2] == 20
            heights = []
            for index, (row0, col0, row1, col1) in enumerate(bands):
                assert (col0, col1) == (2, 11)
                assert row0 < row1
                heights.append(row1 - row0)
                if index:
                    assert row0 == bands[index - 1][2]  # contiguous, disjoint
            assert sum(heights) == 17
            assert max(heights) - min(heights) <= 1

    def test_invalid_shard_requests(self):
        with pytest.raises(QueryError):
            row_band_shards((0, 0, 4, 4), 0)
        with pytest.raises(QueryError):
            row_band_shards((4, 0, 4, 4), 2)

    def test_region_roots_cover_region_disjointly(self, make_tie_stack):
        stack = make_tie_stack(24, 24, 1, seed=5)
        engine = RasterRetrievalEngine(stack, leaf_size=4)
        region = (5, 3, 17, 22)
        roots = engine.screen.region_roots(region)
        covered = np.zeros((24, 24), dtype=int)
        for node in roots:
            row0, col0, row1, col1 = node.window
            assert row0 < region[2] and col0 < region[3]  # intersects
            assert row1 > region[0] and col1 > region[1]
            covered[row0:row1, col0:col1] += 1
        assert covered.max() == 1, "region roots must be pairwise disjoint"
        assert (covered[region[0]:region[2], region[1]:region[3]] == 1).all()

    def test_region_roots_rejects_empty(self, make_tie_stack):
        stack = make_tie_stack(8, 8, 1, seed=5)
        engine = RasterRetrievalEngine(stack, leaf_size=4)
        with pytest.raises(PlanError):
            engine.screen.region_roots((30, 30, 40, 40))


class TestSharedTopKHeap:
    def test_concurrent_offers_match_sequential(self):
        rng = np.random.default_rng(17)
        cells = [(int(r), int(c)) for r, c in rng.integers(0, 40, (2000, 2))]
        scores = [float(s) for s in rng.integers(0, 25, 2000)]  # many ties

        sequential = TopKHeap(10)
        for score, cell in zip(scores, cells):
            sequential.offer(score, cell)

        shared = SharedTopKHeap(10)
        chunks = np.array_split(np.arange(2000), 4)
        threads = [
            threading.Thread(
                target=lambda idx=chunk: [
                    shared.offer(scores[i], cells[i]) for i in idx
                ]
            )
            for chunk in chunks
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert shared.ranked() == sequential.ranked()

    def test_tie_break_prefers_smaller_cell(self):
        heap = TopKHeap(2)
        heap.offer(1.0, (5, 5))
        heap.offer(1.0, (3, 3))
        heap.offer(1.0, (0, 0))  # evicts (5, 5), the largest tied cell
        assert heap.ranked() == [(1.0, (0, 0)), (1.0, (3, 3))]
        heap.offer(1.0, (4, 4))  # larger than both kept cells: rejected
        assert heap.ranked() == [(1.0, (0, 0)), (1.0, (3, 3))]


class TestHeuristicEnvelopeSoundnessAtFullMargin:
    def test_margin_one_recovers_sound_envelopes(self):
        """The satellite bugfix: margin=1 must equal (min, max) exactly,
        even on skewed data where the node mean is far from the envelope
        midpoint."""
        rng = np.random.default_rng(23)
        values = rng.exponential(scale=5.0, size=(32, 32))  # heavy skew
        stack = RasterStack()
        stack.add(RasterLayer("skewed", values))
        engine = RasterRetrievalEngine(stack, leaf_size=4)
        screen = engine.screen

        nodes = [screen.root()]
        while nodes:
            node = nodes.pop()
            sound = screen.envelopes(node)
            pseudo = screen.heuristic_envelopes(node, margin=1.0)
            for name in sound:
                assert pseudo[name][0] == pytest.approx(sound[name][0])
                assert pseudo[name][1] == pytest.approx(sound[name][1])
            nodes.extend(screen.children(node))

    def test_full_margin_heuristic_is_exact(
        self, make_tie_stack, answer_list
    ):
        """With centering fixed, margin=1 heuristic pruning returns the
        exact answer set (it was only 'mostly right' before)."""
        stack = make_tie_stack(20, 20, 2, seed=13)
        engine = RasterRetrievalEngine(stack, leaf_size=4)
        query = TopKQuery(
            model=LinearModel({"layer0": 3.0, "layer1": -1.0}), k=8
        )
        expected = answer_list(engine.exhaustive_top_k(query))
        result = engine.progressive_top_k(
            query, pruning="heuristic", heuristic_margin=1.0
        )
        assert answer_list(result) == expected
