"""Tests for FSM distances."""

from __future__ import annotations

import pytest

from repro.exceptions import FSMError
from repro.models.fsm import FiniteStateMachine, State, Transition
from repro.models.fsm_distance import (
    behavioural_distance,
    equivalent_on,
    structural_distance,
)

ALPHABET = ["a", "b"]


def _symbol(expected: str):
    return lambda symbol: symbol == expected


def _machine(flip_on: str = "a", accepting: str = "on") -> FiniteStateMachine:
    states = [State("off", accepting == "off"), State("on", accepting == "on")]
    transitions = [
        Transition("off", "on", _symbol(flip_on), flip_on),
        Transition("on", "off", _symbol(flip_on), flip_on),
    ]
    return FiniteStateMachine(states, "off", transitions)


def _renamed_machine() -> FiniteStateMachine:
    """Behaviourally identical to _machine() but different state names."""
    states = [State("zero"), State("one", accepting=True)]
    transitions = [
        Transition("zero", "one", _symbol("a"), "a"),
        Transition("one", "zero", _symbol("a"), "a"),
    ]
    return FiniteStateMachine(states, "zero", transitions)


class TestStructuralDistance:
    def test_identical_machines_distance_zero(self):
        assert structural_distance(_machine(), _machine(), ALPHABET) == 0.0

    def test_different_guard_symbol_increases_distance(self):
        distance = structural_distance(_machine("a"), _machine("b"), ALPHABET)
        assert distance > 0.0

    def test_different_acceptance_increases_distance(self):
        distance = structural_distance(
            _machine(accepting="on"), _machine(accepting="off"), ALPHABET
        )
        assert distance > 0.0

    def test_renaming_states_maximizes_structural_distance(self):
        """Structural distance is name-sensitive (its known weakness)."""
        distance = structural_distance(_machine(), _renamed_machine(), ALPHABET)
        assert distance == 1.0

    def test_symmetry(self):
        first, second = _machine("a"), _machine("b")
        assert structural_distance(first, second, ALPHABET) == pytest.approx(
            structural_distance(second, first, ALPHABET)
        )

    def test_bounded_unit_interval(self):
        distance = structural_distance(_machine(), _machine("b"), ALPHABET)
        assert 0.0 <= distance <= 1.0

    def test_empty_alphabet_rejected(self):
        with pytest.raises(FSMError):
            structural_distance(_machine(), _machine(), [])


class TestBehaviouralDistance:
    def test_identical_machines_distance_zero(self):
        assert behavioural_distance(_machine(), _machine(), ALPHABET) == 0.0

    def test_renamed_machines_distance_zero(self):
        """Behavioural distance sees through renaming."""
        assert (
            behavioural_distance(_machine(), _renamed_machine(), ALPHABET)
            == 0.0
        )

    def test_different_machines_positive(self):
        distance = behavioural_distance(_machine("a"), _machine("b"), ALPHABET)
        assert distance > 0.1

    def test_deterministic_for_seed(self):
        first = behavioural_distance(_machine("a"), _machine("b"), ALPHABET, seed=3)
        second = behavioural_distance(_machine("a"), _machine("b"), ALPHABET, seed=3)
        assert first == second

    def test_parameter_validation(self):
        with pytest.raises(FSMError):
            behavioural_distance(_machine(), _machine(), [])
        with pytest.raises(FSMError):
            behavioural_distance(_machine(), _machine(), ALPHABET, n_steps=0)


class TestEquivalence:
    def test_renamed_machines_equivalent(self):
        assert equivalent_on(_machine(), _renamed_machine(), ALPHABET)

    def test_different_guards_not_equivalent(self):
        assert not equivalent_on(_machine("a"), _machine("b"), ALPHABET)

    def test_initially_distinguishable(self):
        assert not equivalent_on(
            _machine(accepting="on"), _machine(accepting="off"), ALPHABET
        )

    def test_depth_limited_search(self):
        # Equivalent up to depth 0 (initial states agree) even for
        # machines that later diverge.
        assert equivalent_on(
            _machine("a"), _machine("b"), ALPHABET, max_depth=0
        )

    def test_empty_alphabet_rejected(self):
        with pytest.raises(FSMError):
            equivalent_on(_machine(), _machine(), [])
