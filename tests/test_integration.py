"""End-to-end integration tests across subsystems.

Each test walks one full retrieval story from synthetic archive to ranked
answers, crossing module boundaries the unit tests keep apart.
"""

from __future__ import annotations

import numpy as np

from repro.apps import epidemiology
from repro.core.engine import RasterRetrievalEngine
from repro.core.planner import plan_query
from repro.core.query import TopKQuery
from repro.core.screening import TileScreen
from repro.core.workflow import ModelingWorkflow
from repro.data.archive import Archive
from repro.data.catalog import CatalogEntry, Modality
from repro.data.raster import RasterLayer
from repro.metrics.accuracy import CostModel, optimal_threshold
from repro.metrics.counters import CostCounter
from repro.metrics.efficiency import speedup
from repro.metrics.topk import (
    precision_recall_at_k,
    rank_locations_by_risk,
    relevant_locations,
)
from repro.models.linear import fit_linear_model, hps_risk_model
from repro.synth.events import latent_risk_field
from repro.synth.landsat import generate_scene
from repro.synth.terrain import generate_dem


class TestArchiveToAnswers:
    """The paper's end-to-end story: archive -> model -> top-K."""

    def test_full_hps_pipeline(self):
        # 1. Build a cataloged multi-modal archive.
        shape = (96, 96)
        dem = generate_dem(shape, seed=31)
        scene = generate_scene(shape, seed=32, terrain=dem)
        archive = Archive("four_corners")
        for name in scene.names:
            archive.add(
                scene[name],
                CatalogEntry(name, Modality.IMAGERY, tags={"sensor": "tm"}),
            )
        archive.add(dem, CatalogEntry("elevation", Modality.ELEVATION))

        # 2. Metadata-level scoping finds the imagery without touching data.
        imagery_names = archive.find(modality="imagery")
        assert sorted(imagery_names) == sorted(scene.names)

        # 3. Assemble the model's stack and retrieve progressively.
        model = hps_risk_model()
        stack = archive.stack(list(model.attributes))
        engine = RasterRetrievalEngine(stack, leaf_size=8)
        query = TopKQuery(model=model, k=20)
        progressive = engine.progressive_top_k(query)
        exhaustive = engine.exhaustive_top_k(query)

        # 4. Same answers, much less work.
        assert sorted(round(s, 9) for s in progressive.scores) == sorted(
            round(s, 9) for s in exhaustive.scores
        )
        report = speedup(exhaustive.counter, progressive.counter)
        assert report.work_ratio > 3.0

    def test_accuracy_metrics_close_the_loop(self):
        """Fit on history, retrieve, score against ground truth (S4.1)."""
        scenario = epidemiology.build_scenario(shape=(80, 80), seed=33)
        risk = scenario.model.evaluate_batch(
            {
                name: scenario.stack[name].values
                for name in scenario.model.attributes
            }
        )
        occurrences = scenario.occurrences.values

        # Threshold tuning via the cost model.
        thresholds = np.quantile(risk, np.linspace(0.5, 0.99, 20))
        best = optimal_threshold(
            risk, occurrences, thresholds,
            CostModel(miss_cost=5.0, false_alarm_cost=1.0),
        )
        assert best.total_cost <= min(
            r.total_cost
            for r in [
                best,
            ]
        )

        # Top-K precision beats chance.
        ranked = rank_locations_by_risk(risk)
        relevant = relevant_locations(occurrences)
        report = precision_recall_at_k(ranked, relevant, k=50)
        chance = len(relevant) / occurrences.size
        assert report.precision > 2 * chance

    def test_workflow_revision_loop_over_archive(self):
        """Figure 5 loop on a synthetic truth the fit can recover."""
        shape = (64, 64)
        dem = generate_dem(shape, seed=34)
        scene = generate_scene(shape, seed=35, terrain=dem)
        scene.add(dem)
        truth = latent_risk_field(
            scene, hps_risk_model().coefficients, noise_std=0.1, seed=36
        )
        scene.add(RasterLayer("incidents", truth))
        engine = RasterRetrievalEngine(scene, leaf_size=8)
        workflow = ModelingWorkflow(engine, "incidents")
        rng = np.random.default_rng(0)
        cells = [
            (int(r), int(c))
            for r, c in zip(rng.integers(0, 64, 50), rng.integers(0, 64, 50))
        ]
        iterations = workflow.run(
            tuple(hps_risk_model().attributes), cells, k=20, max_iterations=4
        )
        # The fitted model must rank locations like the truth.
        final_model = iterations[-1].model
        fitted_risk = final_model.evaluate_batch(
            {
                name: scene[name].values
                for name in final_model.attributes
            }
        )
        correlation = np.corrcoef(
            fitted_risk.reshape(-1), truth.reshape(-1)
        )[0, 1]
        assert correlation > 0.95

    def test_planner_feeds_engine(self):
        shape = (64, 64)
        dem = generate_dem(shape, seed=37)
        scene = generate_scene(shape, seed=38, terrain=dem)
        scene.add(dem)
        model = hps_risk_model()
        screen = TileScreen(scene, leaf_size=8)
        query = TopKQuery(model=model, k=10)
        engine = RasterRetrievalEngine(scene, leaf_size=8)

        contribution_plan = plan_query(query, screen, ordering="contribution")
        selectivity_plan = plan_query(query, screen, ordering="selectivity")
        baseline = engine.exhaustive_top_k(query)
        for plan in (contribution_plan, selectivity_plan):
            result = engine.progressive_top_k(
                query,
                use_tiles=plan.use_tiles,
                use_model_levels=plan.use_model_levels,
                term_order=plan.term_order,
            )
            assert sorted(round(s, 9) for s in result.scores) == sorted(
                round(s, 9) for s in baseline.scores
            )


class TestCrossValidatedFit:
    def test_fit_then_index_then_query(self):
        """Train a model on one region, retrieve on another (step 5 of the
        paper's workflow: apply the revised model to a much bigger set)."""
        shape = (48, 48)
        dem = generate_dem(shape, seed=41)
        scene = generate_scene(shape, seed=42, terrain=dem)
        scene.add(dem)
        truth = latent_risk_field(
            scene, {"tm_band4": 0.6, "elevation": 0.4}, noise_std=0.05,
            seed=43,
        )

        rng = np.random.default_rng(44)
        rows = rng.integers(0, 48, 60)
        cols = rng.integers(0, 48, 60)
        columns = {
            "tm_band4": scene["tm_band4"].values[rows, cols],
            "elevation": scene["elevation"].values[rows, cols],
        }
        model = fit_linear_model(columns, truth[rows, cols])

        bigger = generate_scene((96, 96), seed=45,
                                terrain=generate_dem((96, 96), seed=46))
        bigger.add(generate_dem((96, 96), seed=46, name="elevation2"))
        # Rename for the model's attribute names.
        stack = bigger.subset(["tm_band4"])
        stack.add(RasterLayer("elevation", bigger["elevation2"].values))

        engine = RasterRetrievalEngine(stack, leaf_size=8)
        query = TopKQuery(model=model, k=10)
        counter_check = CostCounter()
        result = engine.progressive_top_k(query)
        baseline = engine.exhaustive_top_k(query)
        assert sorted(round(s, 9) for s in result.scores) == sorted(
            round(s, 9) for s in baseline.scores
        )
        assert counter_check.total_work == 0  # nothing charged to outsiders
