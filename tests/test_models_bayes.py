"""Tests for Bayesian network representation and inference."""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import BayesNetError
from repro.metrics.counters import CostCounter
from repro.models.bayes import BayesianNetwork, Variable
from repro.models.bayes_infer import VariableElimination


def _sprinkler() -> BayesianNetwork:
    """The classic rain/sprinkler/wet-grass network."""
    network = BayesianNetwork("sprinkler")
    network.add_variable(Variable("rain", ("yes", "no")))
    network.add_variable(Variable("sprinkler", ("on", "off")), parents=("rain",))
    network.add_variable(
        Variable("grass_wet", ("yes", "no")), parents=("sprinkler", "rain")
    )
    network.set_cpt("rain", np.array([0.2, 0.8]))
    network.set_cpt("sprinkler", np.array([[0.01, 0.99], [0.4, 0.6]]))
    network.set_cpt(
        "grass_wet",
        np.array(
            [
                [[0.99, 0.01], [0.9, 0.1]],   # sprinkler on, rain yes/no
                [[0.8, 0.2], [0.0, 1.0]],     # sprinkler off
            ]
        ),
    )
    network.validate()
    return network


def _brute_force_posterior(
    network: BayesianNetwork, target: str, evidence: dict[str, str]
) -> dict[str, float]:
    """Posterior by full joint enumeration (oracle)."""
    names = network.variable_names
    target_variable = network.variable(target)
    totals = {state: 0.0 for state in target_variable.states}
    state_spaces = [network.variable(name).states for name in names]
    for combination in itertools.product(*state_spaces):
        assignment = dict(zip(names, combination))
        if any(assignment[k] != v for k, v in evidence.items()):
            continue
        totals[assignment[target]] += network.joint_probability(assignment)
    normalizer = sum(totals.values())
    return {state: value / normalizer for state, value in totals.items()}


class TestVariable:
    def test_needs_states(self):
        with pytest.raises(BayesNetError):
            Variable("x", ())

    def test_duplicate_states_rejected(self):
        with pytest.raises(BayesNetError):
            Variable("x", ("a", "a"))

    def test_index_of(self):
        variable = Variable("x", ("a", "b"))
        assert variable.index_of("b") == 1
        with pytest.raises(BayesNetError):
            variable.index_of("c")


class TestConstruction:
    def test_parents_must_exist(self):
        network = BayesianNetwork()
        with pytest.raises(BayesNetError):
            network.add_variable(Variable("b", ("x",)), parents=("a",))

    def test_duplicate_variable_rejected(self):
        network = BayesianNetwork()
        network.add_variable(Variable("a", ("x",)))
        with pytest.raises(BayesNetError):
            network.add_variable(Variable("a", ("x",)))

    def test_duplicate_parents_rejected(self):
        network = BayesianNetwork()
        network.add_variable(Variable("a", ("x", "y")))
        with pytest.raises(BayesNetError):
            network.add_variable(Variable("b", ("x",)), parents=("a", "a"))

    def test_cpt_shape_validated(self):
        network = BayesianNetwork()
        network.add_variable(Variable("a", ("x", "y")))
        with pytest.raises(BayesNetError):
            network.set_cpt("a", np.array([[0.5, 0.5]]))

    def test_cpt_normalization_validated(self):
        network = BayesianNetwork()
        network.add_variable(Variable("a", ("x", "y")))
        with pytest.raises(BayesNetError):
            network.set_cpt("a", np.array([0.5, 0.6]))

    def test_cpt_negativity_rejected(self):
        network = BayesianNetwork()
        network.add_variable(Variable("a", ("x", "y")))
        with pytest.raises(BayesNetError):
            network.set_cpt("a", np.array([-0.1, 1.1]))

    def test_validate_requires_all_cpts(self):
        network = BayesianNetwork()
        network.add_variable(Variable("a", ("x", "y")))
        with pytest.raises(BayesNetError):
            network.validate()

    def test_children(self):
        network = _sprinkler()
        assert network.children("rain") == ("sprinkler", "grass_wet")
        assert network.children("grass_wet") == ()


class TestSemantics:
    def test_joint_probability_chain_rule(self):
        network = _sprinkler()
        probability = network.joint_probability(
            {"rain": "yes", "sprinkler": "on", "grass_wet": "yes"}
        )
        assert probability == pytest.approx(0.2 * 0.01 * 0.99)

    def test_joint_probabilities_sum_to_one(self):
        network = _sprinkler()
        total = 0.0
        for rain in ("yes", "no"):
            for sprinkler in ("on", "off"):
                for grass in ("yes", "no"):
                    total += network.joint_probability(
                        {"rain": rain, "sprinkler": sprinkler, "grass_wet": grass}
                    )
        assert total == pytest.approx(1.0)

    def test_partial_assignment_rejected(self):
        network = _sprinkler()
        with pytest.raises(BayesNetError):
            network.joint_probability({"rain": "yes"})

    def test_sampling_frequencies(self):
        network = _sprinkler()
        samples = network.sample(20000, seed=1)
        rain_fraction = sum(s["rain"] == "yes" for s in samples) / len(samples)
        assert rain_fraction == pytest.approx(0.2, abs=0.02)

    def test_sampling_deterministic(self):
        network = _sprinkler()
        assert network.sample(10, seed=3) == network.sample(10, seed=3)


class TestVariableElimination:
    def test_prior_marginal(self):
        inference = VariableElimination(_sprinkler())
        assert inference.query("rain")["yes"] == pytest.approx(0.2)

    def test_matches_brute_force_on_explaining_away(self):
        network = _sprinkler()
        inference = VariableElimination(network)
        evidence = {"grass_wet": "yes"}
        expected = _brute_force_posterior(network, "rain", evidence)
        actual = inference.query("rain", evidence)
        for state in expected:
            assert actual[state] == pytest.approx(expected[state])

    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_matches_brute_force_on_random_evidence(self, data):
        network = _sprinkler()
        inference = VariableElimination(network)
        target = data.draw(st.sampled_from(network.variable_names))
        evidence = {}
        for name in network.variable_names:
            if name == target:
                continue
            if data.draw(st.booleans()):
                evidence[name] = data.draw(
                    st.sampled_from(network.variable(name).states)
                )
        expected = _brute_force_posterior(network, target, evidence)
        actual = inference.query(target, evidence)
        for state in expected:
            assert actual[state] == pytest.approx(expected[state])

    def test_target_in_evidence_rejected(self):
        inference = VariableElimination(_sprinkler())
        with pytest.raises(BayesNetError):
            inference.query("rain", {"rain": "yes"})

    def test_zero_probability_evidence_detected(self):
        network = BayesianNetwork()
        network.add_variable(Variable("a", ("x", "y")))
        network.add_variable(Variable("b", ("u", "v")), parents=("a",))
        network.set_cpt("a", np.array([1.0, 0.0]))
        network.set_cpt("b", np.array([[1.0, 0.0], [0.5, 0.5]]))
        inference = VariableElimination(network)
        with pytest.raises(BayesNetError):
            inference.query("a", {"b": "v"})

    def test_counter_tallies_inference_work(self):
        counter = CostCounter()
        VariableElimination(_sprinkler()).query("rain", counter=counter)
        assert counter.model_evals == 1
        assert counter.flops > 0

    def test_probability_shortcut(self):
        inference = VariableElimination(_sprinkler())
        assert inference.probability("rain", "yes") == pytest.approx(0.2)
        with pytest.raises(BayesNetError):
            inference.probability("rain", "maybe")
