"""Tests for the exception hierarchy and the public API surface."""

from __future__ import annotations

import importlib

import pytest

import repro
from repro import exceptions


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        subclasses = [
            exceptions.ArchiveError,
            exceptions.LayerMismatchError,
            exceptions.ModelError,
            exceptions.FSMError,
            exceptions.NonDeterministicFSMError,
            exceptions.BayesNetError,
            exceptions.IndexError_,
            exceptions.QueryError,
            exceptions.PlanError,
        ]
        for subclass in subclasses:
            assert issubclass(subclass, exceptions.ReproError)

    def test_specialization_chains(self):
        assert issubclass(
            exceptions.LayerMismatchError, exceptions.ArchiveError
        )
        assert issubclass(exceptions.FSMError, exceptions.ModelError)
        assert issubclass(
            exceptions.NonDeterministicFSMError, exceptions.FSMError
        )
        assert issubclass(exceptions.BayesNetError, exceptions.ModelError)

    def test_index_error_does_not_shadow_builtin(self):
        assert exceptions.IndexError_ is not IndexError
        assert not issubclass(exceptions.IndexError_, IndexError)

    def test_one_catch_all(self):
        with pytest.raises(exceptions.ReproError):
            raise exceptions.QueryError("caught by the base class")


class TestPublicApi:
    def test_top_level_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.core",
            "repro.models",
            "repro.index",
            "repro.sproc",
            "repro.data",
            "repro.pyramid",
            "repro.abstraction",
            "repro.synth",
            "repro.metrics",
            "repro.apps",
        ],
    )
    def test_subpackage_all_exports_resolve(self, module_name):
        module = importlib.import_module(module_name)
        exported = getattr(module, "__all__", [])
        assert exported, f"{module_name} must declare __all__"
        for name in exported:
            assert getattr(module, name, None) is not None, (
                f"{module_name}.{name} in __all__ but missing"
            )

    def test_version_is_set(self):
        assert repro.__version__

    def test_every_public_module_has_docstring(self):
        import pkgutil

        for module_info in pkgutil.walk_packages(
            repro.__path__, prefix="repro."
        ):
            module = importlib.import_module(module_info.name)
            assert module.__doc__, f"{module_info.name} lacks a docstring"
