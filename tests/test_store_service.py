"""Region-scoped cache invalidation over a disk-backed archive.

Counters are only deterministic on the single-shard path (sharded
execution shares one top-K heap across threads, so counted work is
timing-dependent), so every service here runs ``n_shards=1``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.query import TopKQuery
from repro.data.archive import Archive
from repro.data.raster import RasterLayer, RasterStack
from repro.data.series import TimeSeries
from repro.data.store import ArchiveWriter, open_archive
from repro.models.linear import LinearModel
from repro.service.cache import regions_intersect
from repro.service.retrieval import RetrievalService


def build_store(tmp_path, seed=1, size=256):
    rng = np.random.default_rng(seed)
    source = Archive("demo")
    source.add(RasterLayer("a", rng.standard_normal((size, size))))
    source.add(RasterLayer("b", rng.standard_normal((size, size))))
    source.add(
        TimeSeries("clock", np.arange(5.0), {"tick": np.arange(5.0)})
    )
    ArchiveWriter.create(tmp_path / "store", source, screen_leaf_size=16)
    return open_archive(tmp_path / "store")


def service_for(archive):
    return RetrievalService.from_archive(archive, ["a", "b"], n_shards=1)


def answers(result):
    return [(a.row, a.col, a.score) for a in result.answers]


class TestRegionsIntersect:
    def test_half_open_semantics(self):
        assert regions_intersect((0, 0, 10, 10), (5, 5, 15, 15))
        assert not regions_intersect((0, 0, 10, 10), (10, 0, 20, 10))
        assert not regions_intersect((0, 0, 10, 10), (0, 10, 10, 20))

    def test_empty_region_intersects_nothing(self):
        assert not regions_intersect((0, 0, 0, 0), (0, 0, 10, 10))
        assert not regions_intersect((5, 5, 5, 9), (0, 0, 10, 10))


class TestRegionScopedInvalidation:
    def test_untouched_entries_survive_intersecting_drop(self, tmp_path):
        disk = build_store(tmp_path)
        service = service_for(disk)
        model = LinearModel({"a": 1.0, "b": 0.5})
        q_left = TopKQuery(model=model, k=3, region=(0, 0, 256, 100))
        q_right = TopKQuery(model=model, k=3, region=(0, 150, 256, 256))
        service.top_k(q_left)
        service.top_k(q_right)
        assert service.top_k(q_left).strategy.endswith("-cached")
        assert service.top_k(q_right).strategy.endswith("-cached")

        rng = np.random.default_rng(7)
        disk.append_region(
            {"a": rng.standard_normal((50, 50))}, (100, 200, 150, 250)
        )

        # Left never intersected the dirty rectangle: still served from
        # cache. Right did: dropped and recomputed.
        assert service.top_k(q_left).strategy.endswith("-cached")
        recomputed = service.top_k(q_right)
        assert not recomputed.strategy.endswith("-cached")

        fresh = service_for(open_archive(tmp_path / "store"))
        expected = fresh.top_k(q_right)
        assert answers(recomputed) == answers(expected)
        assert (
            recomputed.counter.data_points == expected.counter.data_points
        )
        assert answers(service.top_k(q_left)) == answers(
            fresh.top_k(q_left)
        )

    def test_surviving_onion_index_is_restamped_not_rebuilt(self, tmp_path):
        disk = build_store(tmp_path)
        service = service_for(disk)
        model = LinearModel({"a": 1.0, "b": 0.5})
        region = (0, 0, 128, 100)
        service.top_k(
            TopKQuery(model=model, k=3, region=region), strategy="onion"
        )
        built = service.router.index_cache.peek(
            region, ("a", "b"), service._seen_generation
        )
        assert built is not None

        rng = np.random.default_rng(7)
        disk.append_region(
            {"b": rng.standard_normal((20, 20))}, (200, 200, 220, 220)
        )
        service.top_k(TopKQuery(model=model, k=3, region=region))
        survivor = service.router.index_cache.peek(
            region, ("a", "b"), service._seen_generation
        )
        assert survivor is built

    def test_intersecting_onion_index_is_dropped(self, tmp_path):
        disk = build_store(tmp_path)
        service = service_for(disk)
        model = LinearModel({"a": 1.0, "b": 0.5})
        region = (0, 0, 128, 100)
        service.top_k(
            TopKQuery(model=model, k=3, region=region), strategy="onion"
        )
        rng = np.random.default_rng(7)
        disk.append_region(
            {"a": rng.standard_normal((8, 8))}, (50, 50, 58, 58)
        )
        service.top_k(TopKQuery(model=model, k=3, region=region))
        assert (
            service.router.index_cache.peek(
                region, ("a", "b"), service._seen_generation
            )
            is None
        )

    def test_screen_refreshed_answers_stay_sound(self, tmp_path):
        # The mutation flips the region's extremes; stale screen
        # envelopes would prune the new optimum away.
        disk = build_store(tmp_path)
        service = service_for(disk)
        model = LinearModel({"a": 1.0})
        query = TopKQuery(model=model, k=1)
        service.top_k(query)
        disk.append_region(
            {"a": np.full((16, 16), 1e6)}, (64, 64, 80, 80)
        )
        top = service.top_k(query)
        assert top.answers[0].score == pytest.approx(1e6)
        assert 64 <= top.answers[0].row < 80

    def test_series_append_invalidates_nothing_spatial(self, tmp_path):
        disk = build_store(tmp_path)
        service = service_for(disk)
        model = LinearModel({"a": 1.0, "b": 0.5})
        query = TopKQuery(model=model, k=3, region=(0, 0, 256, 100))
        service.top_k(query)
        assert service.top_k(query).strategy.endswith("-cached")
        disk.append_days(
            "clock", np.array([5.0, 6.0]), {"tick": np.array([5.0, 6.0])}
        )
        assert service.top_k(query).strategy.endswith("-cached")

    def test_unscoped_add_still_fully_invalidates(self, tmp_path):
        disk = build_store(tmp_path)
        service = service_for(disk)
        model = LinearModel({"a": 1.0, "b": 0.5})
        query = TopKQuery(model=model, k=3, region=(0, 0, 256, 100))
        service.top_k(query)
        assert service.top_k(query).strategy.endswith("-cached")
        disk.add(RasterLayer("c", np.ones((4, 4))))
        assert not service.top_k(query).strategy.endswith("-cached")

    def test_log_overflow_falls_back_to_full_invalidation(self, tmp_path):
        rng = np.random.default_rng(3)
        source = Archive("tiny")
        source.add(RasterLayer("a", rng.standard_normal((64, 64))))
        source.add(RasterLayer("b", rng.standard_normal((64, 64))))
        ArchiveWriter.create(tmp_path / "store", source, screen_leaf_size=8)
        disk = open_archive(tmp_path / "store")
        service = service_for(disk)
        model = LinearModel({"a": 1.0, "b": 0.5})
        query = TopKQuery(model=model, k=3, region=(0, 0, 64, 8))
        service.top_k(query)
        assert service.top_k(query).strategy.endswith("-cached")

        # Push the bounded mutation log past capacity with appends that
        # never touch the cached region.
        for _ in range(300):
            disk.append_region(
                {"b": rng.standard_normal((4, 4))}, (60, 60, 64, 64)
            )
        assert disk.mutations_since(service._seen_generation) is None

        # The service cannot prove the cached region untouched, so the
        # entry must go — soundness over retention.
        assert not service.top_k(query).strategy.endswith("-cached")


def fused_query(model, region=None, cell=(10, 10), alpha=0.5, k=3):
    return TopKQuery(
        model=model, k=k, region=region, similar_to=cell, alpha=alpha
    )


class TestEmbeddingStoreIntegration:
    def test_memmap_twin_embeds_bit_identically(self, tmp_path):
        """A disk-backed (memory-mapped) archive and its in-memory twin
        must produce the same embedding grid to the last bit — the
        term-order discipline crossing the mmap boundary."""
        disk = build_store(tmp_path, seed=1)
        rng = np.random.default_rng(1)
        twin_stack = RasterStack(
            {
                "a": RasterLayer("a", rng.standard_normal((256, 256))),
                "b": RasterLayer("b", rng.standard_normal((256, 256))),
            }
        )
        on_disk = service_for(disk).embeddings()
        in_memory = RetrievalService(
            twin_stack, leaf_size=16, n_shards=1
        ).embeddings()
        assert np.array_equal(on_disk.vectors, in_memory.vectors)
        assert on_disk.grid_shape == in_memory.grid_shape

    def test_embeddings_save_load_round_trip(self, tmp_path):
        disk = build_store(tmp_path, seed=2)
        service = service_for(disk)
        embeddings = service.embeddings()
        path = tmp_path / "tiles.npz"
        embeddings.save(path)
        reloaded = type(embeddings).load(
            path, service.engine.stack, service.engine.screen
        )
        assert np.array_equal(reloaded.vectors, embeddings.vectors)
        assert reloaded.generation == embeddings.generation
        assert reloaded.dim == embeddings.dim
        assert reloaded.embedder.seed == embeddings.embedder.seed

    def test_append_region_refreshes_only_dirty_tiles(self, tmp_path):
        """A region-scoped mutation restamps the surviving embedding
        grid in place: same object, surviving vectors untouched bitwise,
        only the dirty tile block re-embedded, generation current."""
        disk = build_store(tmp_path, seed=3)
        service = service_for(disk)
        embeddings = service.embeddings()
        n_tiles = embeddings.n_tiles
        assert embeddings.embedded_tiles == n_tiles
        before = embeddings.vectors.copy()

        rng = np.random.default_rng(7)
        disk.append_region(
            {"a": rng.standard_normal((32, 32))}, (64, 64, 96, 96)
        )
        refreshed = service.embeddings()
        assert refreshed is embeddings
        assert refreshed.generation == service._seen_generation
        # leaf_size=16: rows 64..96 and cols 64..96 are a 2x2 tile block.
        assert refreshed.embedded_tiles == n_tiles + 4
        changed = ~np.all(refreshed.vectors == before, axis=-1)
        i0 = 64 // 16
        assert changed[:i0, :].sum() == 0 and changed[i0 + 2:, :].sum() == 0
        assert changed[:, :i0].sum() == 0 and changed[:, i0 + 2:].sum() == 0

        # And the refreshed grid equals what a cold service would build.
        fresh = service_for(open_archive(tmp_path / "store")).embeddings()
        assert np.array_equal(refreshed.vectors, fresh.vectors)

    def test_fused_answers_track_mutations(self, tmp_path):
        disk = build_store(tmp_path, seed=4)
        service = service_for(disk)
        model = LinearModel({"a": 1.0, "b": 0.5})
        query = fused_query(model, cell=(70, 70))
        stale = service.top_k(query)
        assert service.top_k(query).strategy.endswith("-cached")

        rng = np.random.default_rng(9)
        disk.append_region(
            {"a": rng.standard_normal((32, 32))}, (64, 64, 96, 96)
        )
        # The mutation dirtied the example tile: the cached fused answer
        # must go, and the recomputation must match a cold service.
        recomputed = service.top_k(query)
        assert not recomputed.strategy.endswith("-cached")
        fresh = service_for(open_archive(tmp_path / "store"))
        assert answers(recomputed) == answers(fresh.top_k(query))
        assert answers(recomputed) != answers(stale) or np.array_equal(
            service.embeddings().vectors, fresh.embeddings().vectors
        )

    def test_fused_cache_entry_scopes_to_example_tile(self, tmp_path):
        """A fused entry's cache region covers the example tile too: a
        mutation touching only that tile (not the query region) still
        drops the entry."""
        disk = build_store(tmp_path, seed=5)
        service = service_for(disk)
        model = LinearModel({"a": 1.0, "b": 0.5})
        query = fused_query(
            model, region=(0, 0, 64, 64), cell=(200, 200)
        )
        service.top_k(query)
        assert service.top_k(query).strategy.endswith("-cached")
        rng = np.random.default_rng(11)
        disk.append_region(
            {"b": rng.standard_normal((8, 8))}, (196, 196, 204, 204)
        )
        assert not service.top_k(query).strategy.endswith("-cached")

    def test_unscoped_add_drops_embeddings_entirely(self, tmp_path):
        disk = build_store(tmp_path, seed=6)
        service = service_for(disk)
        first = service.embeddings()
        disk.add(RasterLayer("c", np.ones((4, 4))))
        model = LinearModel({"a": 1.0})
        service.top_k(TopKQuery(model=model, k=1))
        assert service.embeddings() is not first
