"""Fleet-wide observability over the HTTP front end.

The headline acceptance test: one ``POST /query`` against a 2-worker
fleet with span shipping on yields a merged Chrome trace whose events
span **two distinct pids** (front end + worker) with the front-end
request span as the root — the cross-process stitching the tentpole
promises, driven end to end through real processes and real HTTP.

Around it: ``X-Trace-Id`` on every response status path (200, 400,
404, 405, 429, even malformed request lines), the ``/traces`` /
``/traces/chrome`` / ``/events`` / ``/slo`` read paths, and the ops
console rendering against the live server.
"""

from __future__ import annotations

import http.client
import json
import socket

import numpy as np
import pytest

from repro.core.query import TopKQuery
from repro.data.raster import RasterLayer, RasterStack
from repro.models.linear import LinearModel
from repro.serving import (
    FleetConfig,
    ServingServer,
    WorkerFleet,
    encode_query,
)
from repro.telemetry.console import render_dashboard
from repro.telemetry.events import EventLog

SHAPE = (64, 64)
LAYERS = ("band_a", "band_b")


def _build_stack() -> RasterStack:
    generator = np.random.default_rng(99)
    stack = RasterStack()
    for name in LAYERS:
        stack.add(RasterLayer(name, generator.normal(size=SHAPE)))
    return stack


def _query_payload(seed: int = 1, k: int = 5) -> dict:
    generator = np.random.default_rng(seed)
    model = LinearModel(
        {name: float(generator.normal()) for name in LAYERS},
        name=f"obs{seed}",
    )
    return encode_query(TopKQuery(model=model, k=k))


@pytest.fixture(scope="module")
def fleet():
    """A 2-worker fleet with span shipping ON and its own event log."""
    fleet = WorkerFleet(
        _build_stack(),
        FleetConfig(
            n_workers=2,
            ship_spans=True,
            warm=[{"attributes": list(LAYERS), "region": None}],
        ),
        event_log=EventLog(capacity=2048),
    )
    fleet.start()
    yield fleet
    fleet.stop()


def _request(server, method, path, payload=None, headers=None):
    connection = http.client.HTTPConnection(
        server.host, server.port, timeout=60
    )
    try:
        body = json.dumps(payload).encode() if payload is not None else None
        connection.request(method, path, body=body, headers=headers or {})
        response = connection.getresponse()
        raw = response.read()
        content_type = response.getheader("Content-Type", "")
        decoded = (
            json.loads(raw)
            if raw and "json" in content_type
            else raw.decode("utf-8", "replace")
        )
        return response.status, decoded, dict(response.getheaders())
    finally:
        connection.close()


class TestTraceIdHeader:
    """PR-10 satellite: X-Trace-Id on every response, error paths
    included."""

    def test_success_gets_trace_id(self, fleet):
        with ServingServer(fleet) as server:
            status, _, headers = _request(
                server, "POST", "/query", _query_payload()
            )
        assert status == 200
        assert len(headers["X-Trace-Id"]) == 16

    def test_supplied_trace_id_is_echoed(self, fleet):
        with ServingServer(fleet) as server:
            status, _, headers = _request(
                server,
                "POST",
                "/query",
                _query_payload(),
                headers={"X-Trace-Id": "feedfacefeedface"},
            )
        assert status == 200
        assert headers["X-Trace-Id"] == "feedfacefeedface"

    def test_404_has_trace_id(self, fleet):
        with ServingServer(fleet) as server:
            status, _, headers = _request(server, "GET", "/nope")
        assert status == 404
        assert "X-Trace-Id" in headers

    def test_405_has_trace_id(self, fleet):
        with ServingServer(fleet) as server:
            status, _, headers = _request(server, "GET", "/query")
        assert status == 405
        assert "X-Trace-Id" in headers

    def test_400_invalid_json_has_trace_id(self, fleet):
        with ServingServer(fleet) as server:
            connection = http.client.HTTPConnection(
                server.host, server.port, timeout=60
            )
            try:
                connection.request(
                    "POST", "/query", body=b"{not json",
                )
                response = connection.getresponse()
                response.read()
                status = response.status
                headers = dict(response.getheaders())
            finally:
                connection.close()
        assert status == 400
        assert "X-Trace-Id" in headers

    def test_429_rate_shed_has_trace_id(self, fleet):
        # burst < 1 token: every arrival is over-rate immediately.
        with ServingServer(fleet, rate_limit=0.001) as server:
            status, payload, headers = _request(
                server, "POST", "/query", _query_payload()
            )
        assert status == 429
        assert "X-Trace-Id" in headers
        assert "Retry-After" in headers

    def test_malformed_request_line_has_trace_id(self, fleet):
        with ServingServer(fleet) as server:
            with socket.create_connection(
                (server.host, server.port), timeout=10
            ) as sock:
                sock.sendall(b"GARBAGE\r\n\r\n")
                raw = sock.recv(65536).decode("latin-1")
        assert raw.startswith("HTTP/1.1 400")
        assert "x-trace-id:" in raw.lower()


class TestFleetTraceShipping:
    def test_query_yields_multi_pid_chrome_trace(self, fleet):
        """THE acceptance test: one POST /query, two processes, one
        correctly-parented Chrome trace."""
        with ServingServer(fleet) as server:
            status, _, headers = _request(
                server, "POST", "/query", _query_payload(seed=7)
            )
            assert status == 200
            trace_id = headers["X-Trace-Id"]
            status, traces_doc, _ = _request(server, "GET", "/traces")
            status_c, chrome_doc, _ = _request(
                server, "GET", "/traces/chrome"
            )
        assert status == 200 and status_c == 200

        merged = next(
            t for t in traces_doc["traces"] if t["trace_id"] == trace_id
        )
        # The front-end request trace is the root and carries this
        # process's pid; the grafted worker tree carries the worker's.
        assert merged["parent_span_id"] is None
        children = merged.get("children") or []
        assert children, "no worker span tree was shipped"
        worker_tree = children[0]
        assert worker_tree["pid"] != merged["pid"]
        assert worker_tree["parent_span_id"] == merged["span_id"]
        # Worker-side stage spans (search waterfall) made the crossing.
        worker_stages = {s["name"] for s in worker_tree["spans"]}
        assert worker_stages  # e.g. plan/search/merge
        # Front-end spans recorded around dispatch.
        frontend_stages = {s["name"] for s in merged["spans"]}
        assert {"admit", "queue_wait", "worker"} <= frontend_stages

        # Chrome export: events from >= 2 distinct pids for this trace.
        events = [
            e
            for e in chrome_doc["traceEvents"]
            if e.get("args", {}).get("trace_id") == trace_id
        ]
        pids = {e["pid"] for e in events}
        assert len(pids) >= 2

    def test_parent_links_resolve_in_merged_trace(self, fleet):
        with ServingServer(fleet) as server:
            status, _, headers = _request(
                server, "POST", "/query", _query_payload(seed=8)
            )
            assert status == 200
            trace_id = headers["X-Trace-Id"]
            _, traces_doc, _ = _request(server, "GET", "/traces")
        merged = next(
            t for t in traces_doc["traces"] if t["trace_id"] == trace_id
        )

        ids: set[int] = set()

        def collect(node):
            ids.add(node["span_id"])
            for span in node.get("spans", ()):
                ids.add(span["span_id"])
            for shard in node.get("shards", ()):
                ids.add(shard["span_id"])
            for child in node.get("children", ()):
                collect(child)

        collect(merged)

        def check(node, is_root):
            if not is_root:
                assert node["parent_span_id"] in ids
            for span in node.get("spans", ()):
                assert span["parent_id"] in ids
            for shard in node.get("shards", ()):
                assert shard["parent_id"] in ids
            for child in node.get("children", ()):
                check(child, False)

        check(merged, True)

    def test_shed_request_trace_is_kept(self, fleet):
        """Tail sampling: a 429 always survives into /traces."""
        with ServingServer(fleet, rate_limit=0.001) as server:
            status, _, headers = _request(
                server, "POST", "/query", _query_payload()
            )
            assert status == 429
            trace_id = headers["X-Trace-Id"]
            _, traces_doc, _ = _request(server, "GET", "/traces")
        shed = next(
            t for t in traces_doc["traces"] if t["trace_id"] == trace_id
        )
        assert shed["metadata"]["status"] == 429
        assert shed["metadata"]["shed"] == "rate"


class TestEventsEndpoint:
    def test_events_cover_frontend_and_workers(self, fleet):
        with ServingServer(fleet, rate_limit=0.001) as server:
            _request(server, "POST", "/query", _query_payload())
            status, doc, _ = _request(server, "GET", "/events?limit=512")
        assert status == 200
        names = [e["event"] for e in doc["events"]]
        # Fleet lifecycle (front-end side).
        assert "worker.spawn" in names
        # Shedding (front-end side, correlated with a trace id).
        shed = next(e for e in doc["events"] if e["event"] == "frontend.shed")
        assert shed["severity"] == "warning"
        assert shed["trace_id"]
        # Worker-side events crossed the IPC boundary: the warm-at-boot
        # Onion build carries the worker_id stamped by the drain.
        builds = [
            e for e in doc["events"] if e["event"] == "index.onion_build"
        ]
        assert builds, f"no worker events drained; saw {sorted(set(names))}"
        assert all("worker_id" in e["attrs"] for e in builds)
        assert all("origin_seq" in e for e in builds)


class TestSLOEndpoint:
    def test_slo_document(self, fleet):
        with ServingServer(fleet) as server:
            for seed in range(3):
                _request(
                    server, "POST", "/query", _query_payload(seed=seed)
                )
            _request(server, "GET", "/metrics")  # one observation
            status, doc, _ = _request(server, "GET", "/slo")
        assert status == 200
        assert doc["status"] in ("ok", "warning", "critical")
        names = {s["name"] for s in doc["slos"]}
        assert names == {"availability", "latency_p99", "shed_rate"}
        for result in doc["slos"]:
            assert result["status"] in ("ok", "warning", "critical")
            assert result["windows"]
        assert "traffic" in doc

    def test_metrics_exposition_includes_slo_gauges(self, fleet):
        with ServingServer(fleet) as server:
            _request(server, "POST", "/query", _query_payload())
            status, _, _ = _request(server, "GET", "/slo")
            connection = http.client.HTTPConnection(
                server.host, server.port, timeout=60
            )
            try:
                connection.request("GET", "/metrics")
                response = connection.getresponse()
                text = response.read().decode()
            finally:
                connection.close()
        assert "slo_availability_status" in text
        assert "slo_availability_burn_rate_300s" in text
        assert "events_emitted_total" in text


class TestOpsConsole:
    def test_render_against_live_server(self, fleet):
        from repro.telemetry import console

        with ServingServer(fleet) as server:
            _request(server, "POST", "/query", _query_payload())
            frame = console.snapshot(server.url)
        assert "repro top" in frame
        assert "SLO" in frame
        assert "availability" in frame
        assert "worker" in frame

    def test_once_mode_exit_codes(self, fleet, capsys):
        from repro.telemetry import console

        with ServingServer(fleet) as server:
            code = console.main(["--once", "--url", server.url])
        assert code == 0
        assert "repro top" in capsys.readouterr().out
        # Unreachable server: clean non-zero, message on stderr.
        code = console.main(
            ["--once", "--url", "http://127.0.0.1:1"]
        )
        assert code == 1
        assert "cannot reach" in capsys.readouterr().err

    def test_render_dashboard_pure(self):
        frame = render_dashboard(
            healthz={
                "status": "ok",
                "queue_depth": 2,
                "restarts": 1,
                "workers": [
                    {"worker": 0, "alive": True, "pid": 41, "inflight": 3},
                    {"worker": 1, "alive": False, "pid": None, "inflight": 0},
                ],
            },
            slo={
                "status": "warning",
                "traffic": {
                    "qps": 12.5,
                    "p50_ms": 4.0,
                    "p99_ms": 80.0,
                    "availability": 0.995,
                    "shed_fraction": 0.01,
                },
                "slos": [
                    {
                        "name": "availability",
                        "status": "warning",
                        "burn_rate": 3.2,
                        "windows": [
                            {"window_s": 300.0, "burn_rate": 3.2},
                            {"window_s": 3600.0, "burn_rate": 4.0},
                        ],
                    }
                ],
            },
            events={
                "events": [
                    {
                        "ts": 1754700000.0,
                        "severity": "error",
                        "event": "worker.crash",
                        "attrs": {"worker_id": 1, "exitcode": -9},
                    }
                ]
            },
            url="http://x:1",
        )
        assert "WARN" in frame
        assert "worker.crash" in frame
        assert "worker_id=1" in frame
        assert "300s=3.20" in frame
