"""Tests for block feature extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.abstraction.features import (
    cheap_features,
    expensive_features,
    extract_block_features,
)
from repro.metrics.counters import CostCounter


class TestCheapFeatures:
    def test_moments(self):
        block = np.array([[1.0, 2.0], [3.0, 4.0]])
        features = cheap_features(block)
        assert features.mean == 2.5
        assert features.minimum == 1.0
        assert features.maximum == 4.0
        assert features.variance == pytest.approx(block.var())
        assert not features.has_expensive

    def test_counter_charges_cheap_rate(self):
        counter = CostCounter()
        cheap_features(np.ones((8, 8)), counter)
        assert counter.data_points == 64
        assert counter.flops == 4 * 64


class TestExpensiveFeatures:
    def test_includes_texture_statistics(self):
        rng = np.random.default_rng(1)
        features = expensive_features(rng.random((16, 16)))
        assert features.has_expensive
        assert features.gradient_energy >= 0.0
        assert 0.0 <= features.edge_density <= 1.0
        assert features.glcm_contrast >= 0.0
        assert 0.0 <= features.glcm_homogeneity <= 1.0

    def test_flat_block_has_no_texture(self):
        features = expensive_features(np.full((8, 8), 5.0))
        assert features.gradient_energy == 0.0
        assert features.glcm_contrast == 0.0
        assert features.glcm_homogeneity == 1.0

    def test_textured_blocks_score_higher_contrast(self):
        rng = np.random.default_rng(2)
        smooth = expensive_features(np.linspace(0, 1, 64).reshape(8, 8))
        noisy = expensive_features(rng.random((8, 8)))
        assert noisy.glcm_contrast > smooth.glcm_contrast

    def test_reusing_cheap_tier_charges_less(self):
        block = np.ones((8, 8))
        fresh, reused = CostCounter(), CostCounter()
        expensive_features(block, counter=fresh)
        cheap = cheap_features(block)
        expensive_features(block, cheap=cheap, counter=reused)
        assert reused.flops < fresh.flops

    def test_expensive_costs_dominate_cheap(self):
        block = np.ones((8, 8))
        cheap_counter, expensive_counter = CostCounter(), CostCounter()
        cheap_features(block, cheap_counter)
        expensive_features(block, counter=expensive_counter)
        assert expensive_counter.flops > 5 * cheap_counter.flops

    def test_vector_roundtrip(self):
        rng = np.random.default_rng(3)
        features = expensive_features(rng.random((8, 8)))
        vector = features.as_vector()
        assert vector.shape == (8,)
        assert not np.any(np.isnan(vector))
        partial = cheap_features(rng.random((8, 8))).as_vector()
        assert np.isnan(partial[4:]).all()


class TestExtractBlocks:
    def test_covers_grid_with_clipped_edges(self):
        values = np.zeros((20, 26))
        features = extract_block_features(values, 8, expensive=False)
        assert set(features) == {
            (r, c) for r in range(3) for c in range(4)
        }

    def test_block_size_validation(self):
        with pytest.raises(ValueError):
            extract_block_features(np.zeros((4, 4)), 0)

    def test_cheap_vs_expensive_flag(self):
        values = np.random.default_rng(4).random((16, 16))
        cheap = extract_block_features(values, 8, expensive=False)
        full = extract_block_features(values, 8, expensive=True)
        assert not any(f.has_expensive for f in cheap.values())
        assert all(f.has_expensive for f in full.values())
