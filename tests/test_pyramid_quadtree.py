"""Tests for quadtree aggregates."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.data.raster import RasterLayer
from repro.metrics.counters import CostCounter
from repro.pyramid.quadtree import QuadTree, build_recursive


def _tree(values: np.ndarray, leaf_size: int = 4) -> QuadTree:
    return QuadTree(RasterLayer("x", values), leaf_size=leaf_size)


class TestArrayBuildMatchesRecursive:
    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(1, 33), st.integers(1, 33)),
            elements=st.floats(-1e6, 1e6),
        ),
        st.integers(1, 9),
    )
    @settings(max_examples=60, deadline=None)
    def test_node_for_node_equal(self, values, leaf_size):
        """The bottom-up array build must reproduce the recursive
        reference tree exactly: same windows, same depths, same child
        order, exact min/max, matching means and counts."""
        tree = _tree(values, leaf_size=leaf_size)
        reference = build_recursive(values, leaf_size)

        stack = [(tree.root, reference)]
        visited = 0
        while stack:
            node, expected = stack.pop()
            visited += 1
            assert node.window() == expected.window()
            assert node.depth == expected.depth
            assert node.count == expected.count
            assert node.minimum == expected.minimum
            assert node.maximum == expected.maximum
            assert node.mean == pytest.approx(expected.mean, rel=1e-12)
            assert len(node.children) == len(expected.children)
            stack.extend(zip(node.children, expected.children))
        assert visited == tree.n_nodes

    def test_recursive_build_validates_leaf_size(self):
        with pytest.raises(ValueError):
            build_recursive(np.zeros((4, 4)), 0)


class TestConstruction:
    def test_root_covers_grid(self):
        tree = _tree(np.zeros((10, 14)))
        assert tree.root.window() == (0, 0, 10, 14)

    def test_leaf_size_respected(self):
        tree = _tree(np.zeros((32, 32)), leaf_size=8)
        for leaf in tree.leaves():
            rows = leaf.row1 - leaf.row0
            cols = leaf.col1 - leaf.col0
            assert rows <= 8 and cols <= 8

    def test_leaves_partition_grid(self):
        values = np.arange(9.0 * 13).reshape(9, 13)
        tree = _tree(values, leaf_size=4)
        covered = np.zeros(values.shape, dtype=int)
        for leaf in tree.leaves():
            covered[leaf.row0: leaf.row1, leaf.col0: leaf.col1] += 1
        assert np.all(covered == 1)

    def test_node_aggregates_correct(self):
        values = np.arange(16.0).reshape(4, 4)
        tree = _tree(values, leaf_size=2)
        root = tree.root
        assert root.minimum == 0.0
        assert root.maximum == 15.0
        assert root.mean == pytest.approx(7.5)
        assert root.count == 16

    def test_leaf_size_validation(self):
        with pytest.raises(ValueError):
            _tree(np.zeros((4, 4)), leaf_size=0)


class TestWindowEnvelope:
    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(3, 20), st.integers(3, 20)),
            elements=st.floats(-1e4, 1e4),
        ),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_envelope_is_sound(self, values, data):
        """(min, max) from aggregates must bound the true window extrema."""
        tree = _tree(values, leaf_size=3)
        rows, cols = values.shape
        row0 = data.draw(st.integers(0, rows - 1))
        row1 = data.draw(st.integers(row0 + 1, rows))
        col0 = data.draw(st.integers(0, cols - 1))
        col1 = data.draw(st.integers(col0 + 1, cols))
        low, high = tree.window_envelope(row0, col0, row1, col1)
        window = values[row0:row1, col0:col1]
        assert low <= window.min() + 1e-9
        assert high >= window.max() - 1e-9

    def test_exact_on_aligned_windows(self):
        """Fully contained node windows give exact extrema."""
        rng = np.random.default_rng(3)
        values = rng.random((16, 16))
        tree = _tree(values, leaf_size=4)
        low, high = tree.window_envelope(0, 0, 16, 16)
        assert low == values.min()
        assert high == values.max()

    def test_counter_tallies_nodes_not_cells(self):
        tree = _tree(np.zeros((64, 64)), leaf_size=4)
        counter = CostCounter()
        tree.window_envelope(5, 5, 30, 30, counter)
        assert counter.nodes_visited > 0
        assert counter.data_points == 0

    def test_empty_window_rejected(self):
        tree = _tree(np.zeros((8, 8)))
        with pytest.raises(ValueError):
            tree.window_envelope(4, 4, 4, 8)

    def test_window_clipped_to_grid(self):
        values = np.arange(16.0).reshape(4, 4)
        tree = _tree(values, leaf_size=2)
        low, high = tree.window_envelope(-5, -5, 99, 99)
        assert (low, high) == (0.0, 15.0)


class TestNodesAtDepth:
    def test_depth_zero_is_root(self):
        tree = _tree(np.zeros((16, 16)), leaf_size=4)
        assert tree.nodes_at_depth(0) == [tree.root]

    def test_depth_tiles_grid(self):
        tree = _tree(np.zeros((16, 16)), leaf_size=2)
        for depth in range(3):
            nodes = tree.nodes_at_depth(depth)
            assert sum(node.size for node in nodes) == 256

    def test_deep_request_returns_leaves(self):
        tree = _tree(np.zeros((8, 8)), leaf_size=4)
        deep = tree.nodes_at_depth(99)
        assert all(node.is_leaf for node in deep)
        assert sum(node.size for node in deep) == 64

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            _tree(np.zeros((4, 4))).nodes_at_depth(-1)
