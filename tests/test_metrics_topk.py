"""Tests for top-K precision/recall metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.topk import (
    precision_recall_at_k,
    precision_recall_curve,
    rank_locations_by_risk,
    relevant_locations,
)


class TestPrecisionRecall:
    def test_perfect_retrieval(self):
        result = precision_recall_at_k(["a", "b"], {"a", "b"}, k=2)
        assert result.precision == 1.0
        assert result.recall == 1.0
        assert result.f1 == 1.0

    def test_partial_overlap(self):
        result = precision_recall_at_k(["a", "x", "b", "y"], {"a", "b"}, k=4)
        assert result.precision == 0.5
        assert result.recall == 1.0

    def test_k_truncates_ranking(self):
        result = precision_recall_at_k(["x", "a", "b"], {"a", "b"}, k=1)
        assert result.precision == 0.0
        assert result.recall == 0.0

    def test_defaults_k_to_full_ranking(self):
        result = precision_recall_at_k(["a", "b", "c"], {"a"})
        assert result.k == 3
        assert result.precision == pytest.approx(1 / 3)

    def test_empty_relevant_set_gives_zero_recall(self):
        result = precision_recall_at_k(["a"], set(), k=1)
        assert result.recall == 0.0
        assert result.f1 == 0.0

    def test_k_zero(self):
        result = precision_recall_at_k(["a"], {"a"}, k=0)
        assert result.precision == 0.0

    def test_negative_k_raises(self):
        with pytest.raises(ValueError):
            precision_recall_at_k(["a"], {"a"}, k=-1)

    def test_curve_recall_non_decreasing(self):
        ranking = list("abcdefgh")
        relevant = {"b", "e", "h"}
        curve = precision_recall_curve(ranking, relevant, range(1, 9))
        recalls = [point.recall for point in curve]
        assert recalls == sorted(recalls)

    @given(st.integers(1, 20))
    def test_precision_recall_identity(self, k):
        """retrieved_relevant = precision*k = recall*|relevant|."""
        ranking = [f"item{i}" for i in range(30)]
        relevant = {f"item{i}" for i in range(0, 30, 3)}
        result = precision_recall_at_k(ranking, relevant, k=k)
        assert result.n_retrieved_relevant == pytest.approx(result.precision * k)
        assert result.n_retrieved_relevant == pytest.approx(
            result.recall * len(relevant)
        )


class TestGridHelpers:
    def test_rank_locations_descending(self):
        risk = np.array([[0.1, 0.9], [0.5, 0.3]])
        ranked = rank_locations_by_risk(risk)
        assert ranked[0] == (0, 1)
        assert ranked[1] == (1, 0)
        assert ranked[-1] == (0, 0)

    def test_rank_tie_break_row_major(self):
        risk = np.array([[0.5, 0.5], [0.5, 0.5]])
        ranked = rank_locations_by_risk(risk)
        assert ranked == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_rank_rejects_non_2d(self):
        with pytest.raises(ValueError):
            rank_locations_by_risk(np.zeros(4))

    def test_relevant_locations(self):
        occurrences = np.array([[0, 2], [1, 0]])
        assert relevant_locations(occurrences) == {(0, 1), (1, 0)}

    def test_end_to_end_with_correlated_risk(self):
        rng = np.random.default_rng(0)
        risk = rng.random((20, 20))
        occurrences = (risk > 0.8).astype(int)
        ranked = rank_locations_by_risk(risk)
        relevant = relevant_locations(occurrences)
        result = precision_recall_at_k(ranked, relevant, k=len(relevant))
        assert result.precision == 1.0
        assert result.recall == 1.0
