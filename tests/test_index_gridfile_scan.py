"""Tests for the grid-file index and the sequential-scan baseline."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import IndexError_, QueryError
from repro.index.gridfile import GridFileIndex
from repro.index.scan import scan_top_k
from repro.metrics.counters import CostCounter
from repro.models.linear import LinearModel
from repro.synth.gaussian import generate_gaussian_table


def _brute_range(matrix, low, high):
    mask = np.all(
        (matrix >= np.asarray(low)) & (matrix <= np.asarray(high)), axis=1
    )
    return sorted(int(i) for i in np.where(mask)[0])


class TestGridFile:
    @given(st.integers(5, 200), st.integers(0, 5), st.data())
    @settings(max_examples=25, deadline=None)
    def test_range_matches_brute_force(self, n_points, seed, data):
        table = generate_gaussian_table(n_points, 2, seed=seed)
        index = GridFileIndex(table, cells_per_dim=5)
        matrix = table.matrix()
        low = tuple(data.draw(st.floats(-2, 1)) for _ in range(2))
        high = tuple(l + data.draw(st.floats(0, 3)) for l in low)
        assert index.range_query(low, high) == _brute_range(matrix, low, high)

    def test_query_outside_data_extent(self):
        table = generate_gaussian_table(50, 2, seed=1)
        index = GridFileIndex(table)
        assert index.range_query((100.0, 100.0), (200.0, 200.0)) == []

    def test_constant_column_collapses(self):
        from repro.data.table import Table

        table = Table("t", {"x": np.ones(10), "y": np.arange(10.0)})
        index = GridFileIndex(table, cells_per_dim=4)
        assert index.range_query((1.0, 2.0), (1.0, 5.0)) == [2, 3, 4, 5]

    def test_counter_tallies(self):
        table = generate_gaussian_table(200, 2, seed=2)
        index = GridFileIndex(table)
        counter = CostCounter()
        index.range_query((-0.5, -0.5), (0.5, 0.5), counter)
        assert counter.nodes_visited > 0
        assert counter.tuples_examined > 0

    def test_validation(self):
        table = generate_gaussian_table(10, 2, seed=3)
        with pytest.raises(IndexError_):
            GridFileIndex(table, cells_per_dim=0)
        with pytest.raises(IndexError_):
            GridFileIndex(table, attributes=[])
        index = GridFileIndex(table)
        with pytest.raises(IndexError_):
            index.range_query((0.0,), (1.0,))
        with pytest.raises(IndexError_):
            index.range_query((1.0, 1.0), (0.0, 0.0))

    def test_bucket_count_bounded(self):
        table = generate_gaussian_table(100, 2, seed=4)
        index = GridFileIndex(table, cells_per_dim=4)
        assert index.n_buckets <= 16


class TestScanTopK:
    def test_orders_best_first(self):
        table = generate_gaussian_table(100, 2, seed=5)
        model = LinearModel({"x1": 1.0, "x2": 1.0})
        result = scan_top_k(table, model, 5)
        scores = [score for _, score in result]
        assert scores == sorted(scores, reverse=True)

    def test_minimize(self):
        table = generate_gaussian_table(100, 2, seed=6)
        model = LinearModel({"x1": 1.0, "x2": 0.0})
        best = scan_top_k(table, model, 1, maximize=False)[0]
        assert best[1] == pytest.approx(float(table.column("x1").min()))

    def test_ties_break_by_row_index(self):
        from repro.data.table import Table

        table = Table("t", {"x": np.array([1.0, 1.0, 1.0, 0.0])})
        result = scan_top_k(table, LinearModel({"x": 1.0}), 2)
        assert [row for row, _ in result] == [0, 1]

    def test_counter_records_full_scan(self):
        table = generate_gaussian_table(150, 2, seed=7)
        counter = CostCounter()
        scan_top_k(table, LinearModel({"x1": 1.0, "x2": 1.0}), 3, counter=counter)
        assert counter.tuples_examined == 150
        assert counter.model_evals == 150

    def test_k_validation(self):
        table = generate_gaussian_table(10, 2, seed=8)
        with pytest.raises(QueryError):
            scan_top_k(table, LinearModel({"x1": 1.0, "x2": 1.0}), 0)

    def test_k_exceeding_table(self):
        table = generate_gaussian_table(4, 1, seed=9)
        result = scan_top_k(table, LinearModel({"x1": 1.0}), 10)
        assert len(result) == 4
