"""Tests for the Section 4.2 efficiency model."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.counters import CostCounter
from repro.metrics.efficiency import EfficiencyModel, speedup


def _counter(data=0, evals=0, flops_each=0, tuples=0, wall=0.0) -> CostCounter:
    counter = CostCounter()
    counter.add_data_points(data)
    counter.add_model_evals(evals, flops_each=flops_each)
    counter.add_tuples(tuples)
    counter.wall_seconds = wall
    return counter


class TestSpeedup:
    def test_work_ratio_is_baseline_over_candidate(self):
        report = speedup(_counter(data=100), _counter(data=10))
        assert report.work_ratio == 10.0
        assert report.data_ratio == 10.0

    def test_zero_candidate_work_is_infinite(self):
        report = speedup(_counter(data=5), _counter())
        assert report.work_ratio == float("inf")

    def test_zero_both_is_one(self):
        report = speedup(_counter(), _counter())
        assert report.work_ratio == 1.0

    def test_eval_ratio_counts_partials(self):
        baseline = _counter(evals=100, flops_each=1)
        candidate = CostCounter()
        candidate.add_partial_evals(20, flops_each=1)
        report = speedup(baseline, candidate)
        assert report.eval_ratio == 5.0

    def test_wall_ratio_requires_both_timed(self):
        assert speedup(_counter(wall=1.0), _counter()).wall_ratio is None
        report = speedup(_counter(wall=2.0), _counter(wall=1.0))
        assert report.wall_ratio == 2.0

    def test_as_row_shape(self):
        row = speedup(_counter(data=4), _counter(data=2)).as_row()
        assert set(row) >= {"work_ratio", "data_ratio", "eval_ratio"}


class TestEfficiencyModel:
    def test_from_ablation(self):
        model = EfficiencyModel.from_ablation(
            exhaustive=_counter(data=1000),
            model_only=_counter(data=250),
            data_only=_counter(data=100),
            both=_counter(data=25),
        )
        assert model.pm == 4.0
        assert model.pd == 10.0
        assert model.combined == 40.0
        assert model.predicted_combined == 40.0
        assert model.synergy == 1.0

    def test_sub_multiplicative_synergy_below_one(self):
        model = EfficiencyModel(pm=4.0, pd=10.0, combined=20.0)
        assert model.synergy == 0.5

    def test_zero_prediction_edge(self):
        model = EfficiencyModel(pm=0.0, pd=10.0, combined=5.0)
        assert model.synergy == float("inf")

    @given(
        st.floats(1.0, 100.0),
        st.floats(1.0, 100.0),
        st.floats(1.0, 10000.0),
    )
    def test_as_row_round_trips(self, pm, pd, combined):
        model = EfficiencyModel(pm=pm, pd=pd, combined=combined)
        row = model.as_row()
        assert row["pm"] == pm
        assert row["predicted_combined"] == pytest.approx(pm * pd)
        assert row["synergy"] == pytest.approx(combined / (pm * pd))
