"""Tests for raster layers and stacks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.raster import RasterLayer, RasterStack
from repro.exceptions import ArchiveError, LayerMismatchError
from repro.metrics.counters import CostCounter


class TestRasterLayer:
    def test_values_are_read_only(self):
        layer = RasterLayer("x", np.zeros((3, 3)))
        with pytest.raises(ValueError):
            layer.values[0, 0] = 1.0

    def test_source_mutation_does_not_leak(self):
        source = np.zeros((2, 2))
        layer = RasterLayer("x", source)
        source[0, 0] = 99.0
        assert layer.values[0, 0] == 0.0

    def test_rejects_non_2d(self):
        with pytest.raises(ArchiveError):
            RasterLayer("x", np.zeros(5))

    def test_rejects_empty(self):
        with pytest.raises(ArchiveError):
            RasterLayer("x", np.zeros((0, 3)))

    def test_read_tallies_one_point(self):
        layer = RasterLayer("x", np.arange(6.0).reshape(2, 3))
        counter = CostCounter()
        assert layer.read(1, 2, counter) == 5.0
        assert counter.data_points == 1

    def test_read_window_clips_and_tallies(self):
        layer = RasterLayer("x", np.arange(12.0).reshape(3, 4))
        counter = CostCounter()
        window = layer.read_window(-5, 2, 99, 99, counter)
        assert window.shape == (3, 2)
        assert counter.data_points == 6

    def test_empty_window_raises(self):
        layer = RasterLayer("x", np.zeros((3, 3)))
        with pytest.raises(ArchiveError):
            layer.read_window(2, 2, 2, 3)

    def test_read_all(self):
        layer = RasterLayer("x", np.ones((4, 5)))
        counter = CostCounter()
        assert layer.read_all(counter).shape == (4, 5)
        assert counter.data_points == 20

    def test_read_without_counter(self):
        layer = RasterLayer("x", np.ones((2, 2)))
        assert layer.read(0, 0) == 1.0
        assert layer.read_window(0, 0, 2, 2).shape == (2, 2)


class TestRasterStack:
    def test_shared_shape_enforced_on_add(self):
        stack = RasterStack()
        stack.add(RasterLayer("a", np.zeros((3, 3))))
        with pytest.raises(LayerMismatchError):
            stack.add(RasterLayer("b", np.zeros((4, 4))))

    def test_shared_shape_enforced_at_construction(self):
        with pytest.raises(LayerMismatchError):
            RasterStack(
                {
                    "a": RasterLayer("a", np.zeros((2, 2))),
                    "b": RasterLayer("b", np.zeros((3, 3))),
                }
            )

    def test_duplicate_name_rejected(self):
        stack = RasterStack()
        stack.add(RasterLayer("a", np.zeros((2, 2))))
        with pytest.raises(ArchiveError):
            stack.add(RasterLayer("a", np.ones((2, 2))))

    def test_empty_stack_has_no_shape(self):
        with pytest.raises(ArchiveError):
            RasterStack().shape  # noqa: B018

    def test_getitem_unknown_raises(self):
        with pytest.raises(ArchiveError):
            RasterStack()["missing"]

    def test_contains_and_len(self):
        stack = RasterStack()
        stack.add(RasterLayer("a", np.zeros((2, 2))))
        assert "a" in stack
        assert "b" not in stack
        assert len(stack) == 1

    def test_subset_preserves_layers(self):
        stack = RasterStack()
        stack.add(RasterLayer("a", np.zeros((2, 2))))
        stack.add(RasterLayer("b", np.ones((2, 2))))
        subset = stack.subset(["b"])
        assert subset.names == ["b"]
        assert subset["b"].values[0, 0] == 1.0

    def test_read_point_collects_all_layers(self):
        stack = RasterStack()
        stack.add(RasterLayer("a", np.full((2, 2), 3.0)))
        stack.add(RasterLayer("b", np.full((2, 2), 7.0)))
        counter = CostCounter()
        point = stack.read_point(1, 1, counter)
        assert point == {"a": 3.0, "b": 7.0}
        assert counter.data_points == 2

    def test_read_all_tallies_every_layer(self):
        stack = RasterStack()
        stack.add(RasterLayer("a", np.zeros((2, 3))))
        stack.add(RasterLayer("b", np.zeros((2, 3))))
        counter = CostCounter()
        columns = stack.read_all(counter)
        assert set(columns) == {"a", "b"}
        assert counter.data_points == 12


class TestNonFiniteRejection:
    def test_nan_layer_rejected(self):
        values = np.ones((3, 3))
        values[1, 1] = np.nan
        with pytest.raises(ArchiveError):
            RasterLayer("bad", values)

    def test_inf_layer_rejected(self):
        values = np.ones((3, 3))
        values[0, 2] = np.inf
        with pytest.raises(ArchiveError):
            RasterLayer("bad", values)

class TestReadBounds:
    def test_negative_index_raises_instead_of_wrapping(self):
        layer = RasterLayer("x", np.arange(6.0).reshape(2, 3))
        counter = CostCounter()
        with pytest.raises(ArchiveError, match="outside grid"):
            layer.read(-1, 0, counter)
        with pytest.raises(ArchiveError, match="outside grid"):
            layer.read(0, -1, counter)
        # A rejected read must not tally cost.
        assert counter.data_points == 0

    def test_past_end_index_raises(self):
        layer = RasterLayer("x", np.zeros((2, 3)))
        with pytest.raises(ArchiveError, match="outside grid"):
            layer.read(2, 0)
        with pytest.raises(ArchiveError, match="outside grid"):
            layer.read(0, 3)

    def test_empty_window_error_reports_preclip_bounds(self):
        layer = RasterLayer("x", np.zeros((3, 3)))
        with pytest.raises(ArchiveError, match=r"\[10:20, 10:20\]"):
            layer.read_window(10, 10, 20, 20)

    def test_gather_reads_and_tallies(self):
        layer = RasterLayer("x", np.arange(12.0).reshape(3, 4))
        counter = CostCounter()
        values = layer.gather(np.array([0, 2]), np.array([1, 3]), counter)
        assert values.tolist() == [1.0, 11.0]
        assert counter.data_points == 2
        values[0] = -1.0  # returned array is a private writable copy
        assert layer.values[0, 1] == 1.0
