"""Tests for Gaussian tables and credit-record synthesis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.synth.credit import (
    SCORECARD_WEIGHTS,
    compute_scores,
    foreclosure_probability,
    generate_credit_records,
)
from repro.synth.gaussian import generate_gaussian_table


class TestGaussianTable:
    def test_dimensions_and_names(self):
        table = generate_gaussian_table(100, 3, seed=1)
        assert len(table) == 100
        assert table.column_names == ["x1", "x2", "x3"]

    def test_marginals(self):
        table = generate_gaussian_table(20000, 2, seed=2, mean=5.0, std=2.0)
        for name in table.column_names:
            column = table.column(name)
            assert abs(column.mean() - 5.0) < 0.1
            assert abs(column.std() - 2.0) < 0.1

    def test_correlation_knob(self):
        independent = generate_gaussian_table(20000, 2, seed=3)
        correlated = generate_gaussian_table(20000, 2, seed=3, correlation=0.8)
        corr_ind = np.corrcoef(independent.column("x1"), independent.column("x2"))[0, 1]
        corr_dep = np.corrcoef(correlated.column("x1"), correlated.column("x2"))[0, 1]
        assert abs(corr_ind) < 0.05
        assert corr_dep > 0.7

    def test_deterministic(self):
        first = generate_gaussian_table(50, 2, seed=4)
        second = generate_gaussian_table(50, 2, seed=4)
        assert np.array_equal(first.matrix(), second.matrix())

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_gaussian_table(0, 2, seed=1)
        with pytest.raises(ValueError):
            generate_gaussian_table(10, 2, seed=1, correlation=1.0)
        with pytest.raises(ValueError):
            generate_gaussian_table(10, 2, seed=1, std=0.0)


class TestCreditRecords:
    def test_population_shape(self):
        population = generate_credit_records(1000, seed=1)
        assert len(population.table) == 1000
        assert population.scores.shape == (1000,)
        assert set(population.table.column_names) == set(SCORECARD_WEIGHTS)

    def test_scores_in_published_range(self):
        population = generate_credit_records(5000, seed=2)
        assert population.scores.min() >= 300.0
        assert population.scores.max() <= 900.0

    def test_published_band_calibration(self):
        """The paper's two quoted rates: <2% above 680, ~8% below 620."""
        population = generate_credit_records(60000, seed=3)
        assert population.band_rate(680.0, 901.0) < 0.02
        assert 0.05 < population.band_rate(300.0, 620.0) < 0.12

    def test_probability_curve_monotone_decreasing(self):
        scores = np.linspace(300.0, 900.0, 50)
        probabilities = foreclosure_probability(scores)
        assert np.all(np.diff(probabilities) <= 0)
        assert probabilities.max() <= 0.125
        assert probabilities.min() >= 0.0

    def test_compute_scores_matches_population(self):
        population = generate_credit_records(500, seed=4)
        assert np.allclose(population.scores, compute_scores(population.table))

    def test_band_rate_of_empty_band_is_nan(self):
        population = generate_credit_records(100, seed=5)
        assert np.isnan(population.band_rate(899.9, 900.0))

    def test_deterministic(self):
        first = generate_credit_records(200, seed=6)
        second = generate_credit_records(200, seed=6)
        assert np.array_equal(first.scores, second.scores)
        assert np.array_equal(first.foreclosed, second.foreclosed)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_credit_records(0, seed=1)
