"""Differential suite: ``top_k_batch`` versus the single-query path.

The batch contract is *bit-for-bit*: for every query in a batch —
whatever mix of model families, k values, regions, cache states, and
deadlines rides along with it — the answers (order and tie-breaks
included) and the counted work equal what the solo path returns for
that query alone. These tests drive the contract with hypothesis over
tie-heavy stacks, where any traversal-order leak shows up immediately,
plus deterministic scenarios for the cache-mix and retirement paths.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.query import TopKQuery
from repro.exceptions import QueryError
from repro.metrics.registry import MetricsRegistry
from repro.models.fuzzy import (
    FuzzyAnd,
    FuzzyOr,
    gaussian_membership,
    trapezoid_membership,
    triangle_membership,
)
from repro.models.knowledge import FuzzyRule, KnowledgeModel, RulePredicate
from repro.models.linear import LinearModel
from repro.service import (
    BatchPlanner,
    CancellationToken,
    PlannedQuery,
    RetrievalService,
)

# Work fields the solo/batch contract covers; wall_seconds and notes are
# environment-dependent bookkeeping, not counted work.
COUNTER_FIELDS = (
    "data_points",
    "model_evals",
    "partial_evals",
    "flops",
    "tuples_examined",
    "nodes_visited",
)


def _service(stack, leaf_size=8):
    return RetrievalService(
        stack, leaf_size=leaf_size, n_shards=2, cache_size=32,
        registry=MetricsRegistry(),
    )


def _knowledge_model(names, variant):
    """A small fuzzy-rule knowledge model over the first stack layers."""
    memberships = [
        triangle_membership(0.0, 1.0, 2.0),
        trapezoid_membership(-1.0, 0.0, 1.0, 2.5),
        gaussian_membership(1.0, 0.8),
    ]
    rules = [
        FuzzyRule(
            name=f"r{index}",
            predicates=tuple(
                RulePredicate(
                    attribute=name,
                    membership=memberships[(index + offset) % 3],
                )
                for offset, name in enumerate(names)
            ),
            weight=1.0 + 0.5 * index,
            conjunction=FuzzyAnd("min" if variant == 0 else "product"),
        )
        for index in range(2)
    ]
    return KnowledgeModel(
        rules,
        combination="or" if variant == 0 else "weighted",
        disjunction=FuzzyOr("max" if variant == 0 else "sum"),
    )


def _solo(service, query, use_model_levels):
    """The single-query reference: one shard, no cache."""
    return service.top_k(
        query, n_shards=1, use_cache=False,
        use_model_levels=use_model_levels,
    )


def _assert_bit_identical(batch_result, solo_result, answer_list):
    assert answer_list(batch_result) == answer_list(solo_result)
    for field in COUNTER_FIELDS:
        assert getattr(batch_result.counter, field) == getattr(
            solo_result.counter, field
        ), f"{field} diverged between batch and solo"
    assert batch_result.audit.tiles_screened == solo_result.audit.tiles_screened
    assert batch_result.audit.tiles_pruned == solo_result.audit.tiles_pruned
    assert batch_result.complete is True


class TestMixedModelBatches:
    @given(
        rows=st.integers(12, 36),
        cols=st.integers(12, 36),
        seed=st.integers(0, 300),
        k_linear=st.integers(1, 12),
        k_knowledge=st.integers(1, 8),
        maximize=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_linear_and_knowledge_share_one_scan(
        self, rows, cols, seed, k_linear, k_knowledge, maximize,
        make_tie_stack, make_random_linear_model, answer_list,
    ):
        """A whole-grid batch mixing model families: every member's
        answers and counters must equal its solo run."""
        stack = make_tie_stack(rows, cols, 2, seed)
        service = _service(stack)
        names = list(stack.names)
        queries = [
            TopKQuery(
                model=make_random_linear_model(stack, seed=seed + 1),
                k=k_linear, maximize=maximize,
            ),
            TopKQuery(
                model=make_random_linear_model(stack, seed=seed + 2),
                k=k_linear, maximize=not maximize,
            ),
            TopKQuery(
                model=_knowledge_model(names, variant=0),
                k=k_knowledge, maximize=maximize,
            ),
            TopKQuery(
                model=_knowledge_model(names, variant=1),
                k=k_knowledge, maximize=maximize,
            ),
        ]
        # Knowledge models have no level cascade; the knob is per-query.
        levels = [True, True, False, False]
        results = service.top_k_batch(
            queries, use_model_levels=levels, use_cache=False
        )
        assert len(results) == len(queries)
        for query, level, result in zip(queries, levels, results):
            assert result.strategy.endswith(f"-batch[{len(queries)}]")
            _assert_bit_identical(
                result, _solo(service, query, level), answer_list
            )

    @given(
        seed=st.integers(0, 200),
        k=st.integers(1, 10),
        n_queries=st.integers(2, 6),
    )
    @settings(max_examples=25, deadline=None)
    def test_varying_k_whole_grid(
        self, seed, k, n_queries,
        make_tie_stack, make_random_linear_model, answer_list,
    ):
        stack = make_tie_stack(24, 24, 3, seed)
        service = _service(stack)
        queries = [
            TopKQuery(
                model=make_random_linear_model(stack, seed=seed + i),
                k=min(k + i, 24 * 24),
                maximize=bool(i % 2),
            )
            for i in range(n_queries)
        ]
        results = service.top_k_batch(queries, use_cache=False)
        for query, result in zip(queries, results):
            _assert_bit_identical(
                result, _solo(service, query, True), answer_list
            )


class TestRegionsAndPlanning:
    @given(
        seed=st.integers(0, 200),
        row_split=st.integers(8, 24),
        col_overlap=st.integers(4, 28),
    )
    @settings(max_examples=25, deadline=None)
    def test_overlapping_regions_group_by_exact_window(
        self, seed, row_split, col_overlap,
        make_tie_stack, make_random_linear_model, answer_list,
    ):
        """Overlapping-but-distinct windows never share a scan; only
        exact region matches group. Either way every answer is solo-
        exact."""
        stack = make_tie_stack(32, 32, 2, seed)
        service = _service(stack)
        region_a = (0, 0, row_split, 32)
        region_b = (0, 0, 32, col_overlap)  # overlaps region_a
        queries = [
            TopKQuery(
                model=make_random_linear_model(stack, seed=seed + 1),
                k=5, region=region_a,
            ),
            TopKQuery(
                model=make_random_linear_model(stack, seed=seed + 2),
                k=7, region=region_a,
            ),
            TopKQuery(
                model=make_random_linear_model(stack, seed=seed + 3),
                k=4, region=region_b,
            ),
        ]
        results = service.top_k_batch(queries, use_cache=False)
        # Two region_a queries share a scan; the region_b loner falls
        # back to the sharded path (unless the windows coincide).
        if region_a != region_b:
            assert results[0].strategy.endswith("-batch[2]")
            assert results[1].strategy.endswith("-batch[2]")
            assert "-batch" not in results[2].strategy
            for index in (0, 1):
                _assert_bit_identical(
                    results[index],
                    _solo(service, queries[index], True),
                    answer_list,
                )
            # The singleton rode the default sharded path, whose
            # counters depend on the shard split — answers still match.
            loner = _solo(service, queries[2], True)
            assert answer_list(results[2]) == answer_list(loner)
            assert results[2].complete is True
        else:
            for query, result in zip(queries, results):
                _assert_bit_identical(
                    result, _solo(service, query, True), answer_list
                )

    def test_heuristic_pruning_never_batches(
        self, make_tie_stack, make_random_linear_model
    ):
        stack = make_tie_stack(16, 16, 2, seed=7)
        service = _service(stack)
        queries = [
            TopKQuery(
                model=make_random_linear_model(stack, seed=i), k=3
            )
            for i in range(3)
        ]
        results = service.top_k_batch(
            queries, pruning="heuristic", use_cache=False
        )
        for result in results:
            assert "-batch" not in result.strategy

    def test_planner_rules_directly(self, make_random_linear_model,
                                    make_tie_stack):
        stack = make_tie_stack(8, 8, 1, seed=1)
        model = make_random_linear_model(stack)
        planned = [
            PlannedQuery(
                index=i, query=TopKQuery(model=model, k=2),
                region=(0, 0, 8, 8) if i < 2 else (0, 0, 4, 4),
                use_model_levels=True, progressive=None,
            )
            for i in range(3)
        ]
        plan = BatchPlanner().plan(planned)
        assert [len(group) for group in plan.groups] == [2]
        assert [item.index for item in plan.singletons] == [2]
        assert plan.batched == 2
        # Heuristic pruning: everything is a singleton.
        heuristic = BatchPlanner().plan(planned, pruning="heuristic")
        assert heuristic.groups == [] and len(heuristic.singletons) == 3
        with pytest.raises(ValueError):
            BatchPlanner(min_group_size=1)

    def test_non_interval_model_fails_fast(
        self, make_tie_stack, make_random_linear_model
    ):
        from repro.models.base import Model

        class Opaque(Model):
            @property
            def attributes(self):
                return ("layer0",)

            @property
            def complexity(self):
                return 1

            def evaluate(self, attributes):
                return float(attributes["layer0"])

        stack = make_tie_stack(8, 8, 1, seed=3)
        service = _service(stack, leaf_size=4)
        queries = [
            TopKQuery(model=make_random_linear_model(stack), k=2),
            TopKQuery(model=Opaque(), k=2),
        ]
        with pytest.raises(QueryError):
            service.top_k_batch(
                queries, use_model_levels=[True, False], use_cache=False
            )
        # Fail-fast: nothing executed, nothing cached.
        assert service.stats.batched_queries == 0


class TestCacheMixes:
    @given(
        seed=st.integers(0, 150),
        n_warm=st.integers(0, 3),
    )
    @settings(max_examples=20, deadline=None)
    def test_hit_miss_mix_peels_hits_and_batches_misses(
        self, seed, n_warm,
        make_tie_stack, make_random_linear_model, answer_list,
    ):
        stack = make_tie_stack(20, 20, 2, seed)
        service = _service(stack)
        # Distinct k per query: random coefficients can collide (16
        # combos over 2 layers), and a collision is a *legitimate*
        # cache hit — k keeps the fingerprints distinct.
        queries = [
            TopKQuery(
                model=make_random_linear_model(stack, seed=seed + i),
                k=3 + i,
            )
            for i in range(4)
        ]
        references = [
            answer_list(_solo(service, query, True)) for query in queries
        ]
        for query in queries[:n_warm]:
            service.top_k(query)  # warm the cache
        results = service.top_k_batch(queries)
        n_miss = len(queries) - n_warm
        for index, (result, reference) in enumerate(
            zip(results, references)
        ):
            assert answer_list(result) == reference
            if index < n_warm:
                assert result.strategy.endswith("-cached")
            elif n_miss >= 2:
                assert result.strategy.endswith(f"-batch[{n_miss}]")
        # A second identical batch is now all cache hits.
        again = service.top_k_batch(queries)
        assert all(r.strategy.endswith("-cached") for r in again)
        for result, reference in zip(again, references):
            assert answer_list(result) == reference

    def test_batch_results_enter_the_cache_as_copies(
        self, make_tie_stack, make_random_linear_model, answer_list
    ):
        stack = make_tie_stack(16, 16, 2, seed=9)
        service = _service(stack)
        queries = [
            TopKQuery(
                model=make_random_linear_model(stack, seed=i), k=3
            )
            for i in range(2)
        ]
        first = service.top_k_batch(queries)
        reference = answer_list(first[0])
        first[0].answers.clear()  # must not corrupt the store
        hit = service.top_k(queries[0])
        assert hit.strategy.endswith("-cached")
        assert answer_list(hit) == reference


class TestRetirement:
    def test_precancelled_member_retires_survivors_exact(
        self, make_tie_stack, make_random_linear_model, answer_list
    ):
        stack = make_tie_stack(48, 48, 2, seed=17)
        service = _service(stack)
        queries = [
            TopKQuery(
                model=make_random_linear_model(stack, seed=i), k=6
            )
            for i in range(4)
        ]
        token = CancellationToken()
        token.cancel("load-shed")
        cancels = [None, token, None, None]
        results = service.top_k_batch(
            queries, cancel=cancels, use_cache=False
        )
        retired = results[1]
        assert retired.complete is False
        assert retired.strategy.endswith("-partial")
        assert retired.trace.cancel_reason == "load-shed"
        # Prefix soundness: whatever came back carries exact scores.
        model = queries[1].model
        for answer in retired.answers:
            exact = model.evaluate(
                {
                    name: float(stack[name].values[answer.row, answer.col])
                    for name in model.attributes
                }
            )
            assert answer.score == pytest.approx(exact, abs=1e-12)
        # Survivors are bit-exact, counters included.
        for index in (0, 2, 3):
            _assert_bit_identical(
                results[index],
                _solo(service, queries[index], True),
                answer_list,
            )
        # Partial results never reach the cache.
        after = service.top_k(queries[1])
        assert not after.strategy.endswith("-cached")

    def test_per_query_deadline_sequence(
        self, make_tie_stack, make_random_linear_model, answer_list
    ):
        stack = make_tie_stack(64, 64, 3, seed=23)
        service = _service(stack)
        queries = [
            TopKQuery(
                model=make_random_linear_model(stack, seed=i), k=8
            )
            for i in range(3)
        ]
        deadlines = [None, 1e-9, None]
        results = service.top_k_batch(
            queries, deadline_s=deadlines, use_cache=False
        )
        squeezed = results[1]
        if not squeezed.complete:
            assert squeezed.strategy.endswith("-partial")
            assert squeezed.trace.cancel_reason == "deadline"
        for index in (0, 2):
            _assert_bit_identical(
                results[index],
                _solo(service, queries[index], True),
                answer_list,
            )

    def test_retired_counters_never_exceed_solo(
        self, make_tie_stack, make_random_linear_model
    ):
        stack = make_tie_stack(40, 40, 2, seed=29)
        service = _service(stack)
        query = TopKQuery(
            model=make_random_linear_model(stack, seed=1), k=5
        )
        partner = TopKQuery(
            model=make_random_linear_model(stack, seed=2), k=5
        )
        solo = _solo(service, query, True)
        token = CancellationToken()
        token.cancel()
        results = service.top_k_batch(
            [query, partner], cancel=[token, None], use_cache=False
        )
        retired = results[0]
        assert retired.complete is False
        for field in COUNTER_FIELDS:
            assert getattr(retired.counter, field) <= getattr(
                solo.counter, field
            )


class TestBatchProperties:
    @given(
        seed=st.integers(0, 150),
        n_queries=st.integers(2, 5),
        k=st.integers(1, 8),
    )
    @settings(max_examples=20, deadline=None)
    def test_batch_counters_bounded_by_solo(
        self, seed, n_queries, k,
        make_tie_stack, make_random_linear_model,
    ):
        """The shared scan may only ever *save* work: per-query batch
        counters never exceed the solo run's — and for uncancelled
        queries the executor replays the solo decision sequence, so they
        are exactly equal."""
        stack = make_tie_stack(28, 28, 2, seed)
        service = _service(stack)
        queries = [
            TopKQuery(
                model=make_random_linear_model(stack, seed=seed + i), k=k
            )
            for i in range(n_queries)
        ]
        solos = [_solo(service, query, True) for query in queries]
        results = service.top_k_batch(queries, use_cache=False)
        for solo, result in zip(solos, results):
            for field in COUNTER_FIELDS:
                batch_value = getattr(result.counter, field)
                solo_value = getattr(solo.counter, field)
                assert batch_value <= solo_value
                assert batch_value == solo_value  # uncancelled: exact

    @given(
        seed=st.integers(0, 100),
        n_queries=st.integers(2, 5),
    )
    @settings(max_examples=15, deadline=None)
    def test_child_spans_sum_within_batch_wall(
        self, seed, n_queries, make_tie_stack, make_random_linear_model
    ):
        """Children run sequentially inside the batch call, so the sum
        of all per-query span durations can never exceed the batch
        trace's wall clock."""
        stack = make_tie_stack(24, 24, 2, seed)
        service = _service(stack)
        queries = [
            TopKQuery(
                model=make_random_linear_model(stack, seed=seed + i), k=3
            )
            for i in range(n_queries)
        ]
        results = service.top_k_batch(queries, use_cache=False)
        batch_trace = results[0].trace.parent
        assert batch_trace is not None
        assert batch_trace.batch_size == n_queries
        assert len(batch_trace.children) == n_queries
        assert {id(r.trace.parent) for r in results} == {id(batch_trace)}
        child_total = sum(
            span.duration_s
            for child in batch_trace.children
            for span in child.spans
        )
        assert child_total <= batch_trace.wall_seconds + 1e-6
        exported = batch_trace.as_dict()
        assert exported["batch_size"] == n_queries
        assert len(exported["children"]) == n_queries

    def test_empty_batch_and_broadcast_validation(
        self, make_tie_stack, make_random_linear_model
    ):
        stack = make_tie_stack(8, 8, 1, seed=1)
        service = _service(stack, leaf_size=4)
        assert service.top_k_batch([]) == []
        query = TopKQuery(model=make_random_linear_model(stack), k=2)
        with pytest.raises(QueryError):
            service.top_k_batch(
                [query, query], use_model_levels=[True]
            )
        with pytest.raises(QueryError):
            service.top_k_batch([query], deadline_s=[0.0])

    def test_registry_and_stats_tallies(
        self, make_tie_stack, make_random_linear_model
    ):
        stack = make_tie_stack(16, 16, 2, seed=5)
        registry = MetricsRegistry()
        service = RetrievalService(
            stack, leaf_size=8, n_shards=2, cache_size=8,
            registry=registry,
        )
        queries = [
            TopKQuery(
                model=make_random_linear_model(stack, seed=i), k=3
            )
            for i in range(3)
        ]
        service.top_k_batch(queries, use_cache=False)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["service.batches"] == 1
        assert snapshot["counters"]["service.batched_queries"] == 3
        assert snapshot["histograms"]["service.batch_seconds"]["count"] == 1
        assert snapshot["histograms"]["service.batch_size"]["count"] == 1
        assert service.stats.batches == 1
        assert service.stats.batched_queries == 3
        assert service.stats.queries == 3
