"""Tests for fuzzy membership functions and connectives."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.fuzzy import (
    FuzzyAnd,
    FuzzyOr,
    crisp_membership,
    gaussian_membership,
    sigmoid_membership,
    trapezoid_membership,
    triangle_membership,
)


class TestMembershipShapes:
    def test_triangle_peak_and_feet(self):
        mf = triangle_membership(0.0, 5.0, 10.0)
        assert mf(5.0) == 1.0
        assert mf(0.0) == 0.0
        assert mf(10.0) == 0.0
        assert mf(2.5) == pytest.approx(0.5)
        assert mf(-1.0) == 0.0
        assert mf(11.0) == 0.0

    def test_triangle_validation(self):
        with pytest.raises(ValueError):
            triangle_membership(5.0, 3.0, 10.0)

    def test_trapezoid_plateau(self):
        mf = trapezoid_membership(0.0, 2.0, 8.0, 10.0)
        assert mf(2.0) == 1.0
        assert mf(5.0) == 1.0
        assert mf(8.0) == 1.0
        assert mf(1.0) == pytest.approx(0.5)
        assert mf(9.0) == pytest.approx(0.5)
        assert mf(-1.0) == 0.0

    def test_trapezoid_validation(self):
        with pytest.raises(ValueError):
            trapezoid_membership(0.0, 3.0, 2.0, 10.0)

    def test_gaussian_center_and_symmetry(self):
        mf = gaussian_membership(10.0, 2.0)
        assert mf(10.0) == 1.0
        assert mf(8.0) == pytest.approx(mf(12.0))
        assert mf(10.0 + 2.0) == pytest.approx(np.exp(-0.5))

    def test_gaussian_validation(self):
        with pytest.raises(ValueError):
            gaussian_membership(0.0, 0.0)

    def test_sigmoid_threshold(self):
        mf = sigmoid_membership(45.0, steepness=0.5)
        assert mf(45.0) == pytest.approx(0.5)
        assert mf(100.0) > 0.99
        assert mf(0.0) < 0.01

    def test_sigmoid_negative_steepness_flips(self):
        mf = sigmoid_membership(45.0, steepness=-0.5)
        assert mf(0.0) > 0.99
        assert mf(100.0) < 0.01

    def test_sigmoid_validation(self):
        with pytest.raises(ValueError):
            sigmoid_membership(0.0, steepness=0.0)

    def test_sigmoid_extreme_values_do_not_overflow(self):
        mf = sigmoid_membership(0.0, steepness=100.0)
        assert mf(1e9) == pytest.approx(1.0, abs=1e-20)
        assert mf(-1e9) == pytest.approx(0.0, abs=1e-20)

    def test_crisp(self):
        mf = crisp_membership(lambda v: v > 3)
        assert mf(4.0) == 1.0
        assert mf(2.0) == 0.0

    @given(st.floats(-1e6, 1e6))
    @settings(max_examples=50)
    def test_all_memberships_in_unit_interval(self, value):
        functions = [
            triangle_membership(-10, 0, 10),
            trapezoid_membership(-10, -5, 5, 10),
            gaussian_membership(0, 3),
            sigmoid_membership(0, 0.1),
        ]
        for mf in functions:
            assert 0.0 <= mf(value) <= 1.0

    def test_batch_application(self):
        mf = triangle_membership(0, 5, 10)
        values = np.array([[0.0, 5.0], [2.5, 10.0]])
        batch = mf.batch(values)
        assert batch.shape == (2, 2)
        assert batch[0, 1] == 1.0
        assert batch[1, 0] == pytest.approx(0.5)


class TestMembershipIntervals:
    @given(st.floats(-50, 50), st.floats(0, 50))
    @settings(max_examples=40)
    def test_builtin_shapes_interval_soundness(self, low, width):
        high = low + width
        functions = [
            triangle_membership(-10, 0, 10),
            trapezoid_membership(-10, -5, 5, 10),
            gaussian_membership(0, 3),
            sigmoid_membership(0, 0.5),
        ]
        for mf in functions:
            bound_low, bound_high = mf.interval(low, high)
            for value in np.linspace(low, high, 25):
                degree = mf(float(value))
                assert bound_low - 1e-12 <= degree <= bound_high + 1e-12

    def test_interval_catches_interior_peak(self):
        mf = triangle_membership(0, 5, 10)
        low, high = mf.interval(1.0, 9.0)
        assert high == 1.0  # the peak at 5, not an endpoint
        assert low == pytest.approx(mf(9.0))

    def test_gaussian_interval_catches_center(self):
        mf = gaussian_membership(0, 2)
        low, high = mf.interval(-5.0, 5.0)
        assert high == 1.0
        assert low == pytest.approx(mf(5.0))

    def test_monotone_sigmoid_uses_endpoints(self):
        mf = sigmoid_membership(45.0, 0.25)
        low, high = mf.interval(30.0, 60.0)
        assert low == pytest.approx(mf(30.0))
        assert high == pytest.approx(mf(60.0))

    def test_inverted_interval_rejected(self):
        with pytest.raises(ValueError):
            triangle_membership(0, 5, 10).interval(3.0, 1.0)

    def test_point_interval(self):
        mf = trapezoid_membership(0, 2, 8, 10)
        low, high = mf.interval(5.0, 5.0)
        assert low == high == 1.0


class TestConnectives:
    def test_min_and(self):
        conj = FuzzyAnd("min")
        assert conj([0.3, 0.8, 0.5]) == 0.3

    def test_product_and(self):
        conj = FuzzyAnd("product")
        assert conj([0.5, 0.5]) == 0.25

    def test_empty_and_is_one(self):
        assert FuzzyAnd()([]) == 1.0

    def test_max_or(self):
        disj = FuzzyOr("max")
        assert disj([0.3, 0.8, 0.5]) == 0.8

    def test_probabilistic_or(self):
        disj = FuzzyOr("sum")
        assert disj([0.5, 0.5]) == pytest.approx(0.75)

    def test_empty_or_is_zero(self):
        assert FuzzyOr()([]) == 0.0

    def test_unknown_norms_rejected(self):
        with pytest.raises(ValueError):
            FuzzyAnd("lukasiewicz")
        with pytest.raises(ValueError):
            FuzzyOr("bounded")

    @given(st.lists(st.floats(0, 1), min_size=1, max_size=6))
    def test_and_below_or(self, degrees):
        """Any t-norm result <= any t-conorm result on the same degrees."""
        for and_kind in ("min", "product"):
            for or_kind in ("max", "sum"):
                assert FuzzyAnd(and_kind)(degrees) <= FuzzyOr(or_kind)(degrees) + 1e-12

    @given(st.lists(st.floats(0, 1), min_size=1, max_size=6))
    def test_connectives_stay_in_unit_interval(self, degrees):
        assert 0.0 <= FuzzyAnd("product")(degrees) <= 1.0
        assert 0.0 <= FuzzyOr("sum")(degrees) <= 1.0
