"""Property-based stress test of the engine's central invariant.

The whole framework rests on one promise: *every* progressive strategy
returns the exact top-K score multiset of the exhaustive scan, for any
stack, any linear model (any coefficient signs), any K, any direction,
any leaf size. Hypothesis generates the lot.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import RasterRetrievalEngine
from repro.core.query import TopKQuery
from repro.data.raster import RasterLayer, RasterStack
from repro.models.linear import LinearModel


@st.composite
def _stack_and_model(draw):
    rows = draw(st.integers(3, 28))
    cols = draw(st.integers(3, 28))
    n_layers = draw(st.integers(1, 4))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)

    stack = RasterStack()
    names = []
    for index in range(n_layers):
        name = f"layer{index}"
        names.append(name)
        kind = draw(st.sampled_from(["smooth", "noise", "blocky", "constant"]))
        if kind == "smooth":
            base = rng.normal(size=(rows, cols))
            values = np.cumsum(np.cumsum(base, axis=0), axis=1)
        elif kind == "noise":
            values = rng.normal(0, 10, (rows, cols))
        elif kind == "blocky":
            coarse = rng.uniform(-5, 5, (-(-rows // 4), -(-cols // 4)))
            values = np.kron(coarse, np.ones((4, 4)))[:rows, :cols]
        else:
            values = np.full((rows, cols), float(draw(st.integers(-3, 3))))
        stack.add(RasterLayer(name, values))

    coefficients = {
        name: draw(
            st.floats(-5, 5).filter(lambda c: abs(c) > 1e-3)
        )
        for name in names
    }
    model = LinearModel(
        coefficients, intercept=draw(st.floats(-10, 10))
    )
    k = draw(st.integers(1, rows * cols))
    maximize = draw(st.booleans())
    leaf_size = draw(st.sampled_from([2, 4, 8, 16]))
    return stack, model, k, maximize, leaf_size


class TestEngineInvariant:
    @given(_stack_and_model())
    @settings(max_examples=60, deadline=None)
    def test_every_strategy_matches_exhaustive(self, case):
        stack, model, k, maximize, leaf_size = case
        engine = RasterRetrievalEngine(stack, leaf_size=leaf_size)
        query = TopKQuery(model=model, k=k, maximize=maximize)
        expected = sorted(
            round(score, 6) for score in engine.exhaustive_top_k(query).scores
        )
        for use_tiles in (True, False):
            for use_levels in (True, False):
                result = engine.progressive_top_k(
                    query, use_tiles=use_tiles, use_model_levels=use_levels
                )
                actual = sorted(round(score, 6) for score in result.scores)
                assert actual == expected, (
                    f"strategy ({use_tiles=}, {use_levels=}) diverged "
                    f"for k={k}, maximize={maximize}, leaf={leaf_size}"
                )

    @given(_stack_and_model())
    @settings(max_examples=30, deadline=None)
    def test_region_restriction_preserves_invariant(self, case):
        stack, model, k, maximize, leaf_size = case
        rows, cols = stack.shape
        if rows < 4 or cols < 4:
            return
        region = (1, 1, rows - 1, cols - 1)
        engine = RasterRetrievalEngine(stack, leaf_size=leaf_size)
        query = TopKQuery(
            model=model,
            k=min(k, (rows - 2) * (cols - 2)),
            maximize=maximize,
            region=region,
        )
        expected = sorted(
            round(score, 6) for score in engine.exhaustive_top_k(query).scores
        )
        result = engine.progressive_top_k(query)
        assert sorted(round(score, 6) for score in result.scores) == expected
        for row, col in result.locations:
            assert 1 <= row < rows - 1 and 1 <= col < cols - 1


class TestHeuristicModeNeverCrashes:
    @given(_stack_and_model(), st.floats(0.0, 1.5))
    @settings(max_examples=25, deadline=None)
    def test_heuristic_pruning_returns_valid_answers(self, case, margin):
        """Heuristic pruning may miss answers but must stay well-formed:
        k results (or grid size), scores achieved by their cells."""
        stack, model, k, maximize, leaf_size = case
        engine = RasterRetrievalEngine(stack, leaf_size=leaf_size)
        query = TopKQuery(model=model, k=k, maximize=maximize)
        result = engine.progressive_top_k(
            query, pruning="heuristic", heuristic_margin=margin
        )
        rows, cols = stack.shape
        assert len(result) <= min(k, rows * cols)
        for answer in result.answers:
            point = {
                name: stack[name].values[answer.row, answer.col]
                for name in model.attributes
            }
            assert abs(model.evaluate(point) - answer.score) < 1e-6
