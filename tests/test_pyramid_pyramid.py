"""Tests for resolution pyramids."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.data.raster import RasterLayer
from repro.metrics.counters import CostCounter
from repro.pyramid.pyramid import ResolutionPyramid


def _pyramid(values: np.ndarray, n_levels: int = 4) -> ResolutionPyramid:
    return ResolutionPyramid(RasterLayer("x", values), n_levels=n_levels)


class TestStructure:
    def test_level_zero_is_original(self):
        values = np.arange(12.0).reshape(3, 4)
        pyramid = _pyramid(values)
        assert np.array_equal(pyramid.level(0).mean, values)
        assert pyramid.level(0).scale == 1

    def test_levels_halve(self):
        pyramid = _pyramid(np.zeros((16, 16)), n_levels=3)
        assert [level.shape for level in pyramid] == [
            (16, 16), (8, 8), (4, 4), (2, 2),
        ]

    def test_levels_capped_by_shape(self):
        pyramid = _pyramid(np.zeros((4, 4)), n_levels=10)
        assert pyramid.n_levels <= 3

    def test_negative_levels_rejected(self):
        with pytest.raises(ValueError):
            _pyramid(np.zeros((4, 4)), n_levels=-1)

    def test_level_index_bounds(self):
        pyramid = _pyramid(np.zeros((8, 8)), n_levels=2)
        with pytest.raises(ValueError):
            pyramid.level(5)

    def test_coarse_to_fine_order(self):
        pyramid = _pyramid(np.zeros((8, 8)), n_levels=2)
        levels = [level.level for level in pyramid.coarse_to_fine()]
        assert levels == [2, 1, 0]


class TestEnvelopeSoundness:
    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(2, 24), st.integers(2, 24)),
            elements=st.floats(-1e4, 1e4),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_envelopes_bound_covered_cells(self, values):
        """Every coarse cell's (min, max) must bound all fine cells under it."""
        pyramid = _pyramid(values, n_levels=3)
        rows, cols = values.shape
        for level in pyramid:
            if level.level == 0:
                continue
            for coarse_row in range(level.shape[0]):
                for coarse_col in range(level.shape[1]):
                    row0, col0, row1, col1 = level.fine_window(
                        coarse_row, coarse_col
                    )
                    window = values[
                        row0: min(row1, rows), col0: min(col1, cols)
                    ]
                    if window.size == 0:
                        continue
                    assert level.minimum[coarse_row, coarse_col] <= window.min() + 1e-9
                    assert level.maximum[coarse_row, coarse_col] >= window.max() - 1e-9

    def test_mean_of_constant_layer(self):
        pyramid = _pyramid(np.full((8, 8), 5.0))
        for level in pyramid:
            assert np.allclose(level.mean, 5.0)
            assert np.allclose(level.minimum, 5.0)
            assert np.allclose(level.maximum, 5.0)


class TestInstrumentation:
    def test_read_mean_charges_level_size(self):
        pyramid = _pyramid(np.zeros((16, 16)), n_levels=2)
        counter = CostCounter()
        pyramid.level(2).read_mean(counter)
        assert counter.data_points == 16

    def test_read_envelope_charges_double(self):
        pyramid = _pyramid(np.zeros((16, 16)), n_levels=2)
        counter = CostCounter()
        pyramid.level(1).read_envelope(counter)
        assert counter.data_points == 2 * 64

    def test_cell_of_maps_to_coarse(self):
        pyramid = _pyramid(np.zeros((16, 16)), n_levels=2)
        assert pyramid.level(2).cell_of(7, 9) == (1, 2)
