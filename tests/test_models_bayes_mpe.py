"""Tests for top-K most probable explanations."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import BayesNetError
from repro.metrics.counters import CostCounter
from repro.models.bayes import BayesianNetwork, Variable
from repro.models.bayes_mpe import (
    enumerate_explanations,
    most_probable_explanations,
)


def _sprinkler() -> BayesianNetwork:
    network = BayesianNetwork("sprinkler")
    network.add_variable(Variable("rain", ("yes", "no")))
    network.add_variable(Variable("sprinkler", ("on", "off")), parents=("rain",))
    network.add_variable(
        Variable("grass_wet", ("yes", "no")), parents=("sprinkler", "rain")
    )
    network.set_cpt("rain", np.array([0.2, 0.8]))
    network.set_cpt("sprinkler", np.array([[0.01, 0.99], [0.4, 0.6]]))
    network.set_cpt(
        "grass_wet",
        np.array(
            [
                [[0.99, 0.01], [0.9, 0.1]],
                [[0.8, 0.2], [0.0, 1.0]],
            ]
        ),
    )
    return network


def _random_network(seed: int, n_variables: int = 6) -> BayesianNetwork:
    rng = np.random.default_rng(seed)
    network = BayesianNetwork(f"random_{seed}")
    names = [f"v{i}" for i in range(n_variables)]
    for index, name in enumerate(names):
        cardinality = int(rng.integers(2, 4))
        candidates = names[:index]
        n_parents = int(rng.integers(0, min(2, len(candidates)) + 1))
        parents = tuple(
            rng.choice(candidates, size=n_parents, replace=False)
        ) if n_parents else ()
        network.add_variable(
            Variable(name, tuple(f"s{j}" for j in range(cardinality))),
            parents=parents,
        )
        shape = tuple(
            network.variable(parent).cardinality for parent in parents
        ) + (cardinality,)
        raw = rng.random(shape) + 0.05
        network.set_cpt(name, raw / raw.sum(axis=-1, keepdims=True))
    return network


class TestMpe:
    def test_known_best_explanation(self):
        network = _sprinkler()
        (assignment, probability), = most_probable_explanations(network, k=1)
        # no rain, sprinkler off, grass dry: 0.8 * 0.6 * 1.0.
        assert assignment == {
            "rain": "no", "sprinkler": "off", "grass_wet": "no",
        }
        assert probability == pytest.approx(0.48)

    def test_evidence_constrains_explanations(self):
        network = _sprinkler()
        results = most_probable_explanations(
            network, {"grass_wet": "yes"}, k=3
        )
        for assignment, _ in results:
            assert assignment["grass_wet"] == "yes"
        probabilities = [p for _, p in results]
        assert probabilities == sorted(probabilities, reverse=True)

    @given(seed=st.integers(0, 25), k=st.integers(1, 10))
    @settings(max_examples=30, deadline=None)
    def test_matches_enumeration_oracle(self, seed, k):
        network = _random_network(seed)
        rng = np.random.default_rng(seed + 1000)
        evidence = {}
        for name in network.variable_names:
            if rng.random() < 0.3:
                states = network.variable(name).states
                evidence[name] = states[int(rng.integers(0, len(states)))]
        expected = enumerate_explanations(network, evidence, k)
        actual = most_probable_explanations(network, evidence, k)
        assert [round(p, 12) for _, p in actual] == [
            round(p, 12) for _, p in expected
        ]
        # With distinct probabilities the assignments are forced too.
        probabilities = [round(p, 12) for _, p in expected]
        if len(set(probabilities)) == len(probabilities):
            assert [a for a, _ in actual] == [a for a, _ in expected]

    def test_search_beats_enumeration_on_work(self):
        network = _random_network(7, n_variables=10)
        search_counter, enumeration_counter = CostCounter(), CostCounter()
        search = most_probable_explanations(network, k=3, counter=search_counter)
        oracle = enumerate_explanations(network, k=3, counter=enumeration_counter)
        assert [round(p, 12) for _, p in search] == [
            round(p, 12) for _, p in oracle
        ]
        assert (
            search_counter.model_evals < enumeration_counter.model_evals / 10
        )

    def test_probabilities_are_joint(self):
        network = _sprinkler()
        results = most_probable_explanations(network, k=8)
        assert sum(p for _, p in results) == pytest.approx(1.0)

    def test_k_exceeding_space(self):
        network = _sprinkler()
        results = most_probable_explanations(network, k=100)
        assert len(results) == 8

    def test_validation(self):
        network = _sprinkler()
        with pytest.raises(BayesNetError):
            most_probable_explanations(network, k=0)
        with pytest.raises(BayesNetError):
            most_probable_explanations(network, {"rain": "maybe"}, k=1)

    def test_zero_probability_evidence_yields_zero_entries(self):
        network = BayesianNetwork()
        network.add_variable(Variable("a", ("x", "y")))
        network.add_variable(Variable("b", ("u", "v")), parents=("a",))
        network.set_cpt("a", np.array([1.0, 0.0]))
        network.set_cpt("b", np.array([[1.0, 0.0], [0.5, 0.5]]))
        results = most_probable_explanations(network, {"b": "v"}, k=2)
        assert all(p == 0.0 for _, p in results) or results == []
