"""Tests for progressive linear model decomposition."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ModelError
from repro.models.linear import LinearModel
from repro.models.progressive_linear import (
    ProgressiveLinearModel,
    TermContribution,
    analyze_contributions,
)


def _model() -> LinearModel:
    # The paper's |a1, a2| >> |a3, a4| situation.
    return LinearModel({"x1": 5.0, "x2": 4.0, "x3": 0.3, "x4": 0.1})


def _progressive(columns=None) -> ProgressiveLinearModel:
    model = _model()
    if columns is None:
        rng = np.random.default_rng(0)
        columns = {name: rng.uniform(0, 10, 100) for name in model.attributes}
    return ProgressiveLinearModel.from_columns(model, columns)


class TestAnalyzeContributions:
    def test_orders_by_coefficient_when_spreads_equal(self):
        ranked = analyze_contributions(_model())
        assert [term.attribute for term in ranked] == ["x1", "x2", "x3", "x4"]

    def test_spread_can_override_coefficient(self):
        """A small coefficient on a wide attribute can dominate."""
        model = LinearModel({"big_coef": 5.0, "wide_attr": 0.5})
        ranked = analyze_contributions(
            model, spreads={"big_coef": 1.0, "wide_attr": 100.0}
        )
        assert ranked[0].attribute == "wide_attr"

    def test_columns_measure_spread(self):
        model = LinearModel({"a": 1.0, "b": 1.0})
        columns = {"a": np.array([0.0, 1.0]), "b": np.array([0.0, 100.0])}
        ranked = analyze_contributions(model, columns=columns)
        assert ranked[0].attribute == "b"

    def test_missing_spread_raises(self):
        with pytest.raises(ModelError):
            analyze_contributions(_model(), spreads={"x1": 1.0})

    def test_contribution_value(self):
        term = TermContribution(attribute="x", coefficient=-2.0, spread=3.0)
        assert term.contribution == 6.0


class TestProgressiveLevels:
    def test_level_attributes_nest(self):
        progressive = _progressive()
        for level in range(1, progressive.n_levels):
            smaller = set(progressive.level_attributes(level))
            larger = set(progressive.level_attributes(level + 1))
            assert smaller < larger

    def test_level_bounds_checked(self):
        progressive = _progressive()
        with pytest.raises(ModelError):
            progressive.level_attributes(0)
        with pytest.raises(ModelError):
            progressive.level_attributes(99)

    def test_final_level_is_exact(self):
        progressive = _progressive()
        point = {name: 3.0 for name in _model().attributes}
        low, high = progressive.evaluate_level(progressive.n_levels, point)
        exact = _model().evaluate(point)
        assert low == pytest.approx(exact)
        assert high == pytest.approx(exact)

    def test_uncertainty_shrinks_with_level(self):
        progressive = _progressive()
        widths = [
            progressive.uncertainty(level)
            for level in range(1, progressive.n_levels + 1)
        ]
        assert widths == sorted(widths, reverse=True)
        assert widths[-1] == 0.0

    def test_level_complexity_grows_linearly(self):
        progressive = _progressive()
        assert progressive.level_complexity(1) == 2
        assert progressive.level_complexity(3) == 6

    def test_contributions_must_cover_model(self):
        model = _model()
        partial = [TermContribution("x1", 5.0, 1.0)]
        with pytest.raises(ModelError):
            ProgressiveLinearModel(model, partial, {"x1": (0, 1)})

    def test_ranges_must_cover_model(self):
        model = _model()
        contributions = analyze_contributions(model)
        with pytest.raises(ModelError):
            ProgressiveLinearModel(model, contributions, {"x1": (0, 1)})


class TestBoundSoundness:
    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_partial_bounds_contain_full_score(self, data):
        """Level-k intervals must contain the exact score of any point
        whose attributes lie within the declared ranges."""
        n_attrs = data.draw(st.integers(1, 5))
        names = [f"x{i}" for i in range(n_attrs)]
        coefficients = {
            name: data.draw(st.floats(-5, 5)) for name in names
        }
        if all(c == 0 for c in coefficients.values()):
            coefficients[names[0]] = 1.0
        model = LinearModel(coefficients, intercept=data.draw(st.floats(-3, 3)))
        ranges = {}
        point = {}
        for name in names:
            low = data.draw(st.floats(-50, 50))
            width = data.draw(st.floats(0.0, 20.0))
            ranges[name] = (low, low + width)
            point[name] = low + data.draw(st.floats(0, 1)) * width

        progressive = ProgressiveLinearModel(
            model, analyze_contributions(model), ranges
        )
        exact = model.evaluate(point)
        for level in range(1, progressive.n_levels + 1):
            low_bound, high_bound = progressive.evaluate_level(level, point)
            assert low_bound - 1e-7 <= exact <= high_bound + 1e-7

    def test_batch_matches_scalar(self):
        progressive = _progressive()
        rng = np.random.default_rng(1)
        columns = {
            name: rng.uniform(0, 10, 20) for name in _model().attributes
        }
        for level in (1, 2, 4):
            low_batch, high_batch = progressive.evaluate_level_batch(
                level, columns
            )
            for i in range(20):
                point = {name: columns[name][i] for name in columns}
                low, high = progressive.evaluate_level(level, point)
                assert low_batch[i] == pytest.approx(low)
                assert high_batch[i] == pytest.approx(high)
