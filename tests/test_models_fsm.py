"""Tests for the finite state machine core."""

from __future__ import annotations

import pytest

from repro.exceptions import FSMError, NonDeterministicFSMError
from repro.models.fsm import FiniteStateMachine, State, Transition


def _symbol(expected: str):
    return lambda symbol: symbol == expected


def _toggle() -> FiniteStateMachine:
    states = [State("off"), State("on", accepting=True)]
    transitions = [
        Transition("off", "on", _symbol("flip"), "flip"),
        Transition("on", "off", _symbol("flip"), "flip"),
    ]
    return FiniteStateMachine(states, "off", transitions, missing="stay")


class TestConstruction:
    def test_duplicate_state_rejected(self):
        with pytest.raises(FSMError):
            FiniteStateMachine([State("a"), State("a")], "a", [])

    def test_unknown_initial_rejected(self):
        with pytest.raises(FSMError):
            FiniteStateMachine([State("a")], "b", [])

    def test_unknown_transition_endpoints_rejected(self):
        with pytest.raises(FSMError):
            FiniteStateMachine(
                [State("a")], "a",
                [Transition("a", "b", _symbol("x"), "x")],
            )
        with pytest.raises(FSMError):
            FiniteStateMachine(
                [State("a")], "a",
                [Transition("b", "a", _symbol("x"), "x")],
            )

    def test_invalid_missing_policy(self):
        with pytest.raises(FSMError):
            FiniteStateMachine([State("a")], "a", [], missing="ignore")

    def test_accepting_states(self):
        machine = _toggle()
        assert machine.accepting_states == {"on"}
        assert machine.is_accepting("on")
        assert not machine.is_accepting("off")

    def test_n_transitions(self):
        assert _toggle().n_transitions == 2


class TestStepping:
    def test_step_follows_guard(self):
        machine = _toggle()
        assert machine.step("off", "flip") == "on"
        assert machine.step("on", "flip") == "off"

    def test_missing_stay(self):
        machine = _toggle()
        assert machine.step("off", "noop") == "off"

    def test_missing_error(self):
        states = [State("a")]
        machine = FiniteStateMachine(states, "a", [], missing="error")
        with pytest.raises(FSMError):
            machine.step("a", "x")

    def test_nondeterminism_detected_at_step(self):
        states = [State("a"), State("b"), State("c")]
        transitions = [
            Transition("a", "b", lambda s: True, "always1"),
            Transition("a", "c", lambda s: True, "always2"),
        ]
        machine = FiniteStateMachine(states, "a", transitions)
        with pytest.raises(NonDeterministicFSMError):
            machine.step("a", "x")

    def test_first_match_resolves_overlap(self):
        states = [State("a"), State("b"), State("c")]
        transitions = [
            Transition("a", "b", lambda s: True, "always1"),
            Transition("a", "c", lambda s: True, "always2"),
        ]
        machine = FiniteStateMachine(states, "a", transitions, first_match=True)
        assert machine.step("a", "x") == "b"

    def test_unknown_state_rejected(self):
        with pytest.raises(FSMError):
            _toggle().step("broken", "flip")


class TestAnalysis:
    def test_check_deterministic_passes(self):
        _toggle().check_deterministic(["flip", "noop"])

    def test_check_deterministic_catches_overlap(self):
        states = [State("a"), State("b")]
        transitions = [
            Transition("a", "b", _symbol("x"), "x1"),
            Transition("a", "a", lambda s: s in ("x", "y"), "xy"),
        ]
        machine = FiniteStateMachine(states, "a", transitions)
        with pytest.raises(NonDeterministicFSMError):
            machine.check_deterministic(["x", "y"])

    def test_transition_table_complete(self):
        machine = _toggle()
        table = machine.transition_table(["flip", "noop"])
        assert table[("off", "flip")] == "on"
        assert table[("off", "noop")] == "off"
        assert len(table) == 4

    def test_render_mentions_states_and_labels(self):
        text = _toggle().render()
        assert "off" in text
        assert "[accepting]" in text
        assert "flip" in text

    def test_transitions_from_unknown_state(self):
        with pytest.raises(FSMError):
            _toggle().transitions_from("nope")
