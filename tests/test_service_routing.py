"""Differential and behavioural tests for the cost-based query router.

The routing layer's contract (DESIGN.md routing section): whichever
strategy executes a query — the legacy quadtree path, forced
``"onion"``/``"scan"``, or ``strategy="auto"`` including its fallback —
the answers are bit-identical: same cells, same scores, same tie order.
The hypothesis differential classes drive that claim over integer-valued
tie-heavy stacks, where every float accumulation order is exact and any
tie-break divergence between strategies shows up as a hard mismatch.

Behavioural coverage: cost-model seeding and online EWMA refinement,
eligibility reasons, the fallback path when an index raises mid-query,
routing metadata in traces and explain output, cache-key isolation
between strategies, generation-keyed index rebuilds, and composite
(SPROC) routing.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.query import TopKQuery
from repro.data.archive import Archive
from repro.data.raster import RasterLayer
from repro.exceptions import QueryError
from repro.metrics.registry import MetricsRegistry
from repro.models.linear import LinearModel
from repro.service import RetrievalService
from repro.service.routing import (
    CostModel,
    OnionIndexCache,
    QueryRouter,
    RoutingDecision,
)
from repro.sproc import CompositeQuery, fast_top_k, naive_top_k, sproc_top_k
from repro.telemetry.explain import ExplainReport


def _service(stack, **kwargs) -> RetrievalService:
    kwargs.setdefault("leaf_size", 8)
    kwargs.setdefault("registry", MetricsRegistry())
    return RetrievalService(stack, **kwargs)


class TestRoutedAnswersBitIdentical:
    """strategy="auto" and every forced strategy equal the legacy path."""

    @given(
        rows=st.integers(min_value=8, max_value=28),
        cols=st.integers(min_value=8, max_value=28),
        k=st.integers(min_value=1, max_value=9),
        seed=st.integers(min_value=0, max_value=10_000),
        maximize=st.booleans(),
    )
    @settings(max_examples=20, deadline=None)
    def test_forced_and_auto_match_legacy(
        self,
        make_tie_stack,
        make_random_linear_model,
        answer_list,
        rows,
        cols,
        k,
        seed,
        maximize,
    ):
        stack = make_tie_stack(rows, cols, 2, seed)
        model = make_random_linear_model(stack, seed=seed + 1)
        service = _service(stack, cache_size=0)
        # Small regions are routable too: the eligibility floor exists
        # for cost reasons, not correctness, so drop it for the test.
        service.router.min_onion_cells = 1
        query = TopKQuery(model=model, k=k, maximize=maximize)

        legacy = answer_list(service.top_k(query))
        for strategy in ("auto", "onion", "scan"):
            routed = answer_list(service.top_k(query, strategy=strategy))
            assert routed == legacy, f"{strategy} diverged from legacy"

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        k=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=15, deadline=None)
    def test_region_queries_match_legacy(
        self,
        make_tie_stack,
        make_random_linear_model,
        answer_list,
        seed,
        k,
    ):
        stack = make_tie_stack(24, 24, 2, seed)
        model = make_random_linear_model(stack, seed=seed + 3)
        service = _service(stack, cache_size=0)
        service.router.min_onion_cells = 1
        # A ragged off-origin window exercises the region-local
        # row-major decoding of onion candidates.
        query = TopKQuery(model=model, k=k, region=(3, 5, 19, 22))

        legacy = answer_list(service.top_k(query))
        for strategy in ("auto", "onion", "scan"):
            assert answer_list(
                service.top_k(query, strategy=strategy)
            ) == legacy

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_fallback_answers_match_legacy(
        self,
        make_tie_stack,
        make_random_linear_model,
        answer_list,
        seed,
    ):
        stack = make_tie_stack(16, 16, 2, seed)
        model = make_random_linear_model(stack, seed=seed + 5)
        service = _service(stack, cache_size=0)
        service.router.min_onion_cells = 1
        # Route everything onto onion, then make the index explode:
        # auto must degrade to the quadtree path with identical answers.
        service.router.cost_model._rates["onion"] = 1e-18
        def _boom(*args, **kwargs):
            raise RuntimeError("index exploded")
        service.router.index_cache.get = _boom
        query = TopKQuery(model=model, k=4)

        legacy = answer_list(service.top_k(query))
        routed = service.top_k(query, strategy="auto")
        assert answer_list(routed) == legacy
        routing = routed.trace.metadata["routing"]
        assert routing["fallback_from"] == "onion"
        assert "index exploded" in routing["fallback_reason"]
        assert routing["chosen"] == "quadtree"


class TestRoutingDecisionSurface:
    """The decision is visible in trace metadata and explain output."""

    @pytest.fixture()
    def service_and_query(self, make_tie_stack, make_random_linear_model):
        stack = make_tie_stack(16, 16, 2, 11)
        service = _service(stack, cache_size=8)
        service.router.min_onion_cells = 1
        model = make_random_linear_model(stack, seed=12)
        return service, TopKQuery(model=model, k=4)

    def test_trace_metadata_carries_full_decision(self, service_and_query):
        service, query = service_and_query
        result = service.top_k(query, strategy="auto", use_cache=False)
        routing = result.trace.metadata["routing"]
        assert routing["chosen"] in ("quadtree", "onion", "scan")
        assert routing["forced"] is False
        assert routing["actual_seconds"] is not None
        assert routing["estimated_seconds"] is not None
        names = {c["name"] for c in routing["candidates"]}
        assert names == {"quadtree", "onion", "scan", "sproc"}
        sproc = next(
            c for c in routing["candidates"] if c["name"] == "sproc"
        )
        assert not sproc["eligible"]
        assert "composite" in sproc["reason"]

    def test_forced_strategy_is_marked_forced(self, service_and_query):
        service, query = service_and_query
        result = service.top_k(query, strategy="scan", use_cache=False)
        routing = result.trace.metadata["routing"]
        assert routing["chosen"] == "scan"
        assert routing["forced"] is True

    def test_explain_renders_routing_section(self, service_and_query):
        service, query = service_and_query
        report = service.top_k(
            query, strategy="auto", use_cache=False, explain=True
        )
        assert isinstance(report, ExplainReport)
        assert report.routing is not None
        assert report.as_dict()["routing"]["chosen"] == (
            report.routing["chosen"]
        )
        rendered = report.render()
        assert "routing: chosen=" in rendered
        assert "candidate sproc: ineligible" in rendered

    def test_legacy_path_has_no_routing_section(self, service_and_query):
        service, query = service_and_query
        report = service.top_k(query, use_cache=False, explain=True)
        assert report.routing is None
        assert "routing:" not in report.render()
        assert report.as_dict()["routing"] is None

    def test_unknown_strategy_rejected(self, service_and_query):
        service, query = service_and_query
        with pytest.raises(QueryError, match="unknown strategy"):
            service.top_k(query, strategy="btree")


class TestCostModel:
    def test_estimate_scales_with_work(self):
        model = CostModel(registry=MetricsRegistry())
        assert model.estimate("scan", 2000) == pytest.approx(
            2 * model.estimate("scan", 1000)
        )

    def test_observe_moves_rate_toward_observation(self):
        registry = MetricsRegistry()
        model = CostModel(registry=registry, alpha=0.5)
        seed_rate = model.rate("onion")
        observed_rate = seed_rate * 10
        model.observe("onion", work_units=1000, seconds=observed_rate * 1000)
        assert model.rate("onion") == pytest.approx(
            0.5 * seed_rate + 0.5 * observed_rate
        )
        assert registry.counter_value("router.observations.onion") == 1

    def test_repeated_observation_converges(self):
        model = CostModel(registry=MetricsRegistry(), alpha=0.5)
        target = 1e-6
        for _ in range(30):
            model.observe("scan", work_units=1e6, seconds=target * 1e6)
        assert model.rate("scan") == pytest.approx(target, rel=1e-3)

    def test_visit_fraction_clamped_and_refined(self):
        model = CostModel(registry=MetricsRegistry(), alpha=1.0)
        model.observe_visit_fraction(7.5)
        assert model.visit_fraction == 1.0
        model.observe_visit_fraction(0.1)
        assert model.visit_fraction == pytest.approx(0.1)

    def test_unknown_strategy_raises(self):
        model = CostModel(registry=MetricsRegistry())
        with pytest.raises(QueryError):
            model.estimate("btree", 10)
        with pytest.raises(QueryError):
            model.observe("btree", 10, 1.0)

    def test_bad_alpha_rejected(self):
        with pytest.raises(QueryError):
            CostModel(registry=MetricsRegistry(), alpha=0.0)


class TestEligibility:
    class _OpaqueModel:
        """Duck-typed non-linear model: routable to scan/quadtree only."""

        name = "opaque"
        attributes = ("layer0", "layer1")
        complexity = 4

    def _router(self, make_tie_stack) -> QueryRouter:
        stack = make_tie_stack(16, 16, 2, 0)
        return QueryRouter(
            stack, registry=MetricsRegistry(), min_onion_cells=1
        )

    def test_onion_ineligible_for_nonlinear_model(self, make_tie_stack):
        router = self._router(make_tie_stack)
        query = TopKQuery(model=self._OpaqueModel(), k=3)
        decision = router.route(query, (0, 0, 16, 16), strategy="auto")
        onion = next(
            c for c in decision.candidates if c.name == "onion"
        )
        assert not onion.eligible
        assert "LinearModel" in onion.reason
        assert decision.chosen in ("quadtree", "scan")

    def test_forcing_ineligible_strategy_raises(self, make_tie_stack):
        router = self._router(make_tie_stack)
        query = TopKQuery(model=self._OpaqueModel(), k=3)
        with pytest.raises(QueryError, match="cannot answer"):
            router.route(query, (0, 0, 16, 16), strategy="onion")

    def test_tiny_region_onion_ineligible(
        self, make_tie_stack, make_random_linear_model
    ):
        stack = make_tie_stack(16, 16, 2, 0)
        router = QueryRouter(
            stack, registry=MetricsRegistry(), min_onion_cells=4096
        )
        model = make_random_linear_model(stack, seed=2)
        decision = router.route(
            TopKQuery(model=model, k=3), (0, 0, 16, 16), strategy="auto"
        )
        onion = next(
            c for c in decision.candidates if c.name == "onion"
        )
        assert not onion.eligible
        assert "min_onion_cells" in onion.reason


class TestRoutedCaching:
    def _setup(self, make_tie_stack, make_random_linear_model):
        stack = make_tie_stack(16, 16, 2, 21)
        service = _service(stack, cache_size=16)
        service.router.min_onion_cells = 1
        model = make_random_linear_model(stack, seed=22)
        return service, TopKQuery(model=model, k=4)

    def test_onion_and_legacy_have_separate_entries(
        self, make_tie_stack, make_random_linear_model, answer_list
    ):
        service, query = self._setup(
            make_tie_stack, make_random_linear_model
        )
        legacy = service.top_k(query)
        onion = service.top_k(query, strategy="onion")
        # Different keys: the onion miss must not have been served the
        # legacy entry (its strategy label would then end in "-cached").
        assert onion.strategy == "onion"
        assert answer_list(onion) == answer_list(legacy)
        hit = service.top_k(query, strategy="onion")
        assert hit.strategy == "onion-cached"

    def test_auto_resolving_quadtree_shares_legacy_entry(
        self, make_tie_stack, make_random_linear_model
    ):
        service, query = self._setup(
            make_tie_stack, make_random_linear_model
        )
        # Make quadtree the sure winner so auto resolves to it.
        service.router.cost_model._rates["quadtree"] = 1e-18
        legacy = service.top_k(query)
        assert not legacy.strategy.endswith("-cached")
        routed = service.top_k(query, strategy="auto")
        assert routed.strategy.endswith("-cached")
        assert routed.trace.metadata["routing"]["chosen"] == "quadtree"


class TestIndexLifecycle:
    def test_warm_index_prebuilds_and_is_reused(
        self, make_tie_stack, make_random_linear_model
    ):
        stack = make_tie_stack(16, 16, 2, 31)
        service = _service(stack, cache_size=0)
        service.router.min_onion_cells = 1
        model = make_random_linear_model(stack, seed=32)
        query = TopKQuery(model=model, k=4)

        built = service.warm_index(query)
        assert built.n_cells == 256
        assert service.registry.counter_value("router.index.builds") == 1
        service.top_k(query, strategy="onion")
        # The routed query reused the warmed index: no second build.
        assert service.registry.counter_value("router.index.builds") == 1

    def test_generation_move_rebuilds_index(self, answer_list):
        rng = np.random.default_rng(41)
        archive = Archive("study")
        for name in ("a", "b"):
            archive.add(
                RasterLayer(
                    name, rng.integers(0, 3, (16, 16)).astype(float)
                )
            )
        service = RetrievalService.from_archive(
            archive, ["a", "b"], leaf_size=8, cache_size=8,
            registry=MetricsRegistry(),
        )
        service.router.min_onion_cells = 1
        query = TopKQuery(model=LinearModel({"a": 2.0, "b": -1.0}), k=4)

        cold = service.top_k(query, strategy="onion")
        assert service.registry.counter_value("router.index.builds") == 1
        archive.add(
            RasterLayer("c", rng.integers(0, 3, (16, 16)).astype(float))
        )
        # Generation moved: the cached answer AND the built index are
        # stale; the next routed query rebuilds and re-answers.
        after = service.top_k(query, strategy="onion")
        assert not after.strategy.endswith("-cached")
        assert service.registry.counter_value("router.index.builds") == 2
        assert answer_list(after) == answer_list(cold)

    def test_explicit_invalidate_drops_indexes(
        self, make_tie_stack, make_random_linear_model
    ):
        stack = make_tie_stack(16, 16, 2, 51)
        service = _service(stack, cache_size=8)
        service.router.min_onion_cells = 1
        model = make_random_linear_model(stack, seed=52)
        service.warm_index(TopKQuery(model=model, k=3))
        assert len(service.router.index_cache) == 1
        service.invalidate()
        assert len(service.router.index_cache) == 0


class TestCompositeRouting:
    def _query(self, seed: int, n_components: int, n_objects: int):
        rng = np.random.default_rng(seed)
        return CompositeQuery(
            [f"c{i}" for i in range(n_components)],
            rng.random((n_components, n_objects)),
        )

    @given(
        seed=st.integers(min_value=0, max_value=1000),
        n_components=st.integers(min_value=2, max_value=3),
        n_objects=st.integers(min_value=3, max_value=7),
        k=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=15, deadline=None)
    def test_routed_composite_scores_match_naive(
        self, make_tie_stack, seed, n_components, n_objects, k
    ):
        stack = make_tie_stack(8, 8, 2, 0)
        service = _service(stack)
        query = self._query(seed, n_components, n_objects)
        answers, decision = service.composite_top_k(query, k)
        reference = naive_top_k(query, k)
        # The DP may pick different representatives among score-tied
        # finals (documented); scores are the cross-implementation
        # invariant, assignments additionally for the tie-free case.
        assert [round(s, 9) for _, s in answers] == [
            round(s, 9) for _, s in reference
        ]
        assert decision.chosen in ("naive", "dp", "fast")

    def test_forced_composite_strategies(self, make_tie_stack):
        stack = make_tie_stack(8, 8, 2, 0)
        service = _service(stack)
        query = self._query(7, 2, 5)
        for strategy, impl in (
            ("naive", naive_top_k), ("dp", sproc_top_k), ("fast", fast_top_k)
        ):
            answers, decision = service.composite_top_k(
                query, 3, strategy=strategy
            )
            assert decision.chosen == strategy
            assert decision.forced is True
            assert [round(s, 9) for _, s in answers] == [
                round(s, 9) for _, s in impl(query, 3)
            ]
        assert isinstance(decision, RoutingDecision)

    def test_large_cartesian_avoids_naive(self, make_tie_stack):
        stack = make_tie_stack(8, 8, 2, 0)
        router = QueryRouter(stack, registry=MetricsRegistry())
        rng = np.random.default_rng(3)
        big = CompositeQuery(
            [f"c{i}" for i in range(4)], rng.random((4, 200))
        )
        decision = router.route_composite(big, k=5)
        # 200^4 = 1.6e9 component touches: the cost model must route
        # away from full enumeration.
        assert decision.chosen != "naive"

    def test_unknown_composite_strategy_rejected(self, make_tie_stack):
        stack = make_tie_stack(8, 8, 2, 0)
        service = _service(stack)
        with pytest.raises(QueryError, match="composite strategy"):
            service.composite_top_k(self._query(1, 2, 4), 2, strategy="bogus")


class TestOnionIndexCacheBounds:
    def test_fifo_eviction_past_capacity(self, make_tie_stack):
        stack = make_tie_stack(16, 16, 2, 61)
        cache = OnionIndexCache(
            stack, max_entries=2, registry=MetricsRegistry()
        )
        attrs = ("layer0", "layer1")
        cache.get((0, 0, 8, 8), attrs, 0)
        cache.get((0, 0, 12, 12), attrs, 0)
        cache.get((0, 0, 16, 16), attrs, 0)
        assert len(cache) == 2
        assert cache.peek((0, 0, 8, 8), attrs, 0) is None

    def test_stale_generation_is_a_miss(self, make_tie_stack):
        stack = make_tie_stack(16, 16, 2, 62)
        cache = OnionIndexCache(stack, registry=MetricsRegistry())
        attrs = ("layer0", "layer1")
        built = cache.get((0, 0, 16, 16), attrs, generation=1)
        assert cache.peek((0, 0, 16, 16), attrs, 1) is built
        assert cache.peek((0, 0, 16, 16), attrs, 2) is None
        rebuilt = cache.get((0, 0, 16, 16), attrs, generation=2)
        assert rebuilt is not built
