"""Tests for multi-modal fusion retrieval."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.multimodal import MultiModalQuery, RasterFactor, RegionFactor
from repro.data.raster import RasterLayer, RasterStack
from repro.data.series import TimeSeries
from repro.exceptions import QueryError
from repro.metrics.counters import CostCounter
from repro.models.linear import LinearModel


def _stack() -> RasterStack:
    stack = RasterStack()
    rows, cols = np.indices((16, 16)).astype(float)
    stack.add(RasterLayer("gradient", rows + cols))
    return stack


def _series(name: str, rainy: bool) -> TimeSeries:
    rain = np.full(10, 5.0 if rainy else 0.0)
    return TimeSeries(
        name, np.arange(10.0), {"rain_mm": rain}
    )


def _wetness(series: TimeSeries, counter: CostCounter | None = None) -> float:
    rain = series.read_range("rain_mm", 0, len(series), counter)
    return float((rain > 0).mean())


def _region_factor(weight: float = 1.0) -> RegionFactor:
    regions = {
        (0, 0): (0, 0, 8, 16),
        (1, 0): (8, 0, 16, 16),
    }
    series = {
        (0, 0): _series("north", rainy=True),
        (1, 0): _series("south", rainy=False),
    }
    return RegionFactor("wet", regions, series, _wetness, weight=weight)


class TestFactors:
    def test_raster_factor_normalized(self):
        factor = RasterFactor("g", LinearModel({"gradient": 2.0}))
        degrees = factor.degrees(_stack())
        assert degrees.min() == 0.0
        assert degrees.max() == 1.0

    def test_constant_raster_gives_half(self):
        stack = RasterStack()
        stack.add(RasterLayer("flat", np.full((4, 4), 3.0)))
        factor = RasterFactor("f", LinearModel({"flat": 1.0}))
        assert np.all(factor.degrees(stack) == 0.5)

    def test_region_factor_broadcasts(self):
        degrees = _region_factor().degrees((16, 16))
        assert np.all(degrees[:8, :] == 1.0)
        assert np.all(degrees[8:, :] == 0.0)

    def test_region_factor_must_tile(self):
        factor = RegionFactor(
            "partial",
            {(0, 0): (0, 0, 8, 16)},
            {(0, 0): _series("n", True)},
            _wetness,
        )
        with pytest.raises(QueryError):
            factor.degrees((16, 16))

    def test_region_keys_must_match(self):
        factor = RegionFactor(
            "mismatch",
            {(0, 0): (0, 0, 16, 16)},
            {(9, 9): _series("n", True)},
            _wetness,
        )
        with pytest.raises(QueryError):
            factor.degrees((16, 16))

    def test_degree_range_enforced(self):
        factor = RegionFactor(
            "bad",
            {(0, 0): (0, 0, 16, 16)},
            {(0, 0): _series("n", True)},
            lambda series, counter=None: 2.0,
        )
        with pytest.raises(QueryError):
            factor.degrees((16, 16))


class TestFusion:
    def test_weighted_fusion(self):
        query = MultiModalQuery(
            _stack(),
            raster_factors=[RasterFactor("g", LinearModel({"gradient": 1.0}))],
            region_factors=[_region_factor()],
        )
        fused = query.fused_degrees()
        # North-east corner: gradient ~0.5, wet 1.0 -> 0.75-ish.
        assert fused[0, 15] == pytest.approx(
            (15.0 / 30.0 + 1.0) / 2.0
        )

    def test_weights_shift_the_answer(self):
        heavy_wet = MultiModalQuery(
            _stack(),
            raster_factors=[RasterFactor("g", LinearModel({"gradient": 1.0}))],
            region_factors=[_region_factor(weight=10.0)],
        )
        top = heavy_wet.top_k(1)[0][0]
        assert top[0] < 8  # wet north dominates despite low gradient

    def test_and_fusion_is_minimum(self):
        query = MultiModalQuery(
            _stack(),
            raster_factors=[RasterFactor("g", LinearModel({"gradient": 1.0}))],
            region_factors=[_region_factor()],
            fusion="and",
        )
        fused = query.fused_degrees()
        assert np.all(fused[8:, :] == 0.0)  # dry south is vetoed

    def test_top_k_ordering_and_ties(self):
        query = MultiModalQuery(
            _stack(),
            raster_factors=[RasterFactor("g", LinearModel({"gradient": 1.0}))],
        )
        top = query.top_k(3)
        scores = [score for _, score in top]
        assert scores == sorted(scores, reverse=True)
        assert top[0][0] == (15, 15)

    def test_counter_accumulates(self):
        counter = CostCounter()
        query = MultiModalQuery(
            _stack(),
            raster_factors=[RasterFactor("g", LinearModel({"gradient": 1.0}))],
            region_factors=[_region_factor()],
        )
        query.top_k(2, counter=counter)
        assert counter.data_points > 0

    def test_validation(self):
        with pytest.raises(QueryError):
            MultiModalQuery(_stack())
        with pytest.raises(QueryError):
            MultiModalQuery(
                _stack(),
                raster_factors=[
                    RasterFactor("g", LinearModel({"gradient": 1.0}))
                ],
                fusion="xor",
            )
        query = MultiModalQuery(
            _stack(),
            raster_factors=[RasterFactor("g", LinearModel({"gradient": 1.0}))],
        )
        with pytest.raises(QueryError):
            query.top_k(0)
