"""Tests for synthetic imagery bands."""

from __future__ import annotations

import numpy as np
import pytest

from repro.synth.landsat import generate_band, generate_scene
from repro.synth.terrain import generate_dem


class TestGenerateBand:
    def test_shape_and_clip(self):
        band = generate_band((32, 48), seed=1)
        assert band.shape == (32, 48)
        assert band.values.min() >= 0.0
        assert band.values.max() <= 255.0

    def test_deterministic(self):
        assert np.array_equal(
            generate_band((16, 16), seed=9).values,
            generate_band((16, 16), seed=9).values,
        )

    def test_radiometry_roughly_matches(self):
        band = generate_band((128, 128), seed=2, mean=100.0, std=20.0)
        assert abs(band.values.mean() - 100.0) < 10.0

    def test_terrain_coupling_produces_correlation(self):
        dem = generate_dem((64, 64), seed=3)
        coupled = generate_band(
            (64, 64), seed=4, terrain=dem, terrain_coupling=0.8
        )
        uncoupled = generate_band((64, 64), seed=4)
        corr_coupled = np.corrcoef(
            coupled.values.reshape(-1), dem.values.reshape(-1)
        )[0, 1]
        corr_uncoupled = np.corrcoef(
            uncoupled.values.reshape(-1), dem.values.reshape(-1)
        )[0, 1]
        assert corr_coupled > 0.5
        assert abs(corr_uncoupled) < 0.3

    def test_negative_coupling(self):
        dem = generate_dem((64, 64), seed=3)
        band = generate_band((64, 64), seed=4, terrain=dem, terrain_coupling=-0.8)
        corr = np.corrcoef(band.values.reshape(-1), dem.values.reshape(-1))[0, 1]
        assert corr < -0.5

    def test_shape_mismatch_raises(self):
        dem = generate_dem((8, 8), seed=1)
        with pytest.raises(ValueError):
            generate_band((9, 9), seed=1, terrain=dem, terrain_coupling=0.5)

    def test_coupling_bounds(self):
        with pytest.raises(ValueError):
            generate_band((8, 8), seed=1, terrain_coupling=1.5)

    def test_smoothness_controls_autocorrelation(self):
        smooth = generate_band((64, 64), seed=5, smoothness=3.5)
        rough = generate_band((64, 64), seed=5, smoothness=1.0)
        smooth_grad = np.abs(np.diff(smooth.values, axis=1)).mean()
        rough_grad = np.abs(np.diff(rough.values, axis=1)).mean()
        assert smooth_grad < rough_grad


class TestGenerateScene:
    def test_default_bands(self):
        scene = generate_scene((16, 16), seed=1)
        assert scene.names == ["tm_band4", "tm_band5", "tm_band7"]
        assert scene.shape == (16, 16)

    def test_bands_are_independent_noise(self):
        scene = generate_scene((32, 32), seed=1)
        first = scene["tm_band4"].values
        second = scene["tm_band5"].values
        assert not np.array_equal(first, second)

    def test_custom_band_names(self):
        scene = generate_scene((8, 8), seed=1, band_names=("b1", "b2"))
        assert scene.names == ["b1", "b2"]

    def test_couplings_length_checked(self):
        with pytest.raises(ValueError):
            generate_scene(
                (8, 8), seed=1, band_names=("b1",), terrain_couplings=(0.1, 0.2)
            )
