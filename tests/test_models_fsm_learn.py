"""Tests for FSM extraction from data."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import FSMError
from repro.models.fsm import FiniteStateMachine, State, Transition
from repro.models.fsm_distance import behavioural_distance
from repro.models.fsm_learn import learn_fsm, runs_from_machine

ALPHABET = ["rain", "dry_hot", "dry_cool"]


def _symbol_fire_ants() -> FiniteStateMachine:
    """The Figure 1 machine over the 3-symbol weather alphabet."""

    def eq(expected):
        return lambda symbol: symbol == expected

    def dry(symbol):
        return symbol in ("dry_hot", "dry_cool")

    states = [
        State("rain"), State("dry_1"), State("dry_2"),
        State("dry_3_plus"), State("fire_ants_fly", accepting=True),
    ]
    transitions = [
        Transition("rain", "rain", eq("rain"), "rain"),
        Transition("rain", "dry_1", dry, "dry"),
        Transition("dry_1", "rain", eq("rain"), "rain"),
        Transition("dry_1", "dry_2", dry, "dry"),
        Transition("dry_2", "rain", eq("rain"), "rain"),
        Transition("dry_2", "dry_3_plus", dry, "dry"),
        Transition("dry_3_plus", "rain", eq("rain"), "rain"),
        Transition("dry_3_plus", "fire_ants_fly", eq("dry_hot"), "hot"),
        Transition("dry_3_plus", "dry_3_plus", eq("dry_cool"), "cool"),
        Transition("fire_ants_fly", "rain", eq("rain"), "rain"),
        Transition("fire_ants_fly", "fire_ants_fly", eq("dry_hot"), "hot"),
        Transition("fire_ants_fly", "dry_3_plus", eq("dry_cool"), "cool"),
    ]
    return FiniteStateMachine(states, "rain", transitions, missing="error")


def _random_streams(n_streams, length, seed):
    rng = np.random.default_rng(seed)
    return [
        [ALPHABET[i] for i in rng.integers(0, 3, length)]
        for _ in range(n_streams)
    ]


class TestLearnFsm:
    def test_recovers_fire_ants_behaviour(self):
        target = _symbol_fire_ants()
        runs = runs_from_machine(target, _random_streams(20, 300, seed=1))
        learned = learn_fsm(runs, history=4)
        distance = behavioural_distance(
            target, learned, ALPHABET, n_steps=10000, seed=2
        )
        assert distance < 0.01

    def test_noisy_labels_tolerated(self):
        """5% flipped acceptance labels: majority voting absorbs them."""
        target = _symbol_fire_ants()
        runs = runs_from_machine(target, _random_streams(20, 300, seed=3))
        rng = np.random.default_rng(4)
        noisy = [
            (
                symbols,
                [flag ^ bool(rng.random() < 0.05) for flag in accepting],
            )
            for symbols, accepting in runs
        ]
        learned = learn_fsm(noisy, history=4)
        distance = behavioural_distance(
            target, learned, ALPHABET, n_steps=10000, seed=5
        )
        assert distance < 0.02

    def test_too_short_history_degrades_gracefully(self):
        """h=1 cannot express the 3-day dry spell; the learned machine is
        wrong but still a valid FSM with measurable distance."""
        target = _symbol_fire_ants()
        runs = runs_from_machine(target, _random_streams(10, 200, seed=6))
        learned = learn_fsm(runs, history=1)
        distance = behavioural_distance(
            target, learned, ALPHABET, n_steps=5000, seed=7
        )
        assert 0.0 < distance < 0.5

    def test_learns_last_symbol_machine(self):
        def eq(expected):
            return lambda symbol: symbol == expected

        last_a = FiniteStateMachine(
            [State("seen_b"), State("seen_a", accepting=True)],
            "seen_b",
            [
                Transition("seen_b", "seen_a", eq("a"), "a"),
                Transition("seen_b", "seen_b", eq("b"), "b"),
                Transition("seen_a", "seen_a", eq("a"), "a"),
                Transition("seen_a", "seen_b", eq("b"), "b"),
            ],
        )
        runs = runs_from_machine(
            last_a,
            [["a", "b", "a", "a", "b", "a"] * 5, ["b", "a"] * 10],
        )
        learned = learn_fsm(runs, history=3)
        assert (
            behavioural_distance(last_a, learned, ["a", "b"], n_steps=2000)
            == 0.0
        )

    def test_unbounded_history_machine_is_out_of_scope(self):
        """A parity (toggle) machine is NOT a function of bounded history;
        the window learner must degrade (positive distance), documenting
        its scope rather than silently pretending to learn it."""

        def eq(expected):
            return lambda symbol: symbol == expected

        toggle = FiniteStateMachine(
            [State("off"), State("on", accepting=True)],
            "off",
            [
                Transition("off", "on", eq("a"), "a"),
                Transition("on", "off", eq("a"), "a"),
                Transition("off", "off", eq("b"), "b"),
                Transition("on", "on", eq("b"), "b"),
            ],
        )
        runs = runs_from_machine(
            toggle,
            [["a", "b", "a", "a", "b", "a"] * 5, ["b", "a"] * 10],
        )
        learned = learn_fsm(runs, history=3)
        distance = behavioural_distance(
            toggle, learned, ["a", "b"], n_steps=2000
        )
        assert distance > 0.1

    def test_minimization_collapses_states(self):
        """The learned machine must be far smaller than the window count."""
        target = _symbol_fire_ants()
        runs = runs_from_machine(target, _random_streams(10, 300, seed=8))
        learned = learn_fsm(runs, history=4)
        # 3^4 = 81 possible windows; minimization must collapse hard.
        assert len(learned.states) < 40

    def test_validation(self):
        with pytest.raises(FSMError):
            learn_fsm([])
        with pytest.raises(FSMError):
            learn_fsm([(["a"], [True])], history=0)
        with pytest.raises(FSMError):
            learn_fsm([(["a", "b"], [True])])  # misaligned labels

    def test_single_run_single_symbol(self):
        learned = learn_fsm([(["a", "a", "a"], [True, True, True])], history=2)
        state = learned.initial
        state = learned.step(state, "a")
        assert learned.is_accepting(state)


class TestRunsFromMachine:
    def test_labels_match_machine_trace(self):
        target = _symbol_fire_ants()
        stream = ["rain", "dry_cool", "dry_cool", "dry_cool", "dry_hot"]
        (symbols, accepting), = runs_from_machine(target, [stream])
        assert symbols == stream
        assert accepting == [False, False, False, False, True]
