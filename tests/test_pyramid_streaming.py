"""Tests for progressive streaming."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.raster import RasterLayer
from repro.pyramid.streaming import ProgressiveStream
from repro.synth.landsat import generate_band


@pytest.fixture(scope="module")
def band():
    return generate_band((100, 130), seed=41)


class TestProgressiveStream:
    def test_final_refinement_is_exact(self, band):
        stream = ProgressiveStream(band, n_levels=4)
        refinements = list(stream)
        assert len(refinements) == 5
        assert np.allclose(refinements[-1].approximation, band.values)
        assert refinements[-1].l2_error == pytest.approx(0.0, abs=1e-6)

    def test_error_monotonically_decreases(self, band):
        errors = [r.l2_error for r in ProgressiveStream(band, n_levels=5)]
        assert errors == sorted(errors, reverse=True)

    def test_delivered_volume_grows(self, band):
        volumes = [
            r.values_delivered for r in ProgressiveStream(band, n_levels=4)
        ]
        assert volumes == sorted(volumes)
        assert volumes[0] < band.size / 10

    def test_every_approximation_has_full_shape(self, band):
        for refinement in ProgressiveStream(band, n_levels=4):
            assert refinement.approximation.shape == band.shape

    def test_l2_error_is_exact(self, band):
        """The reported remaining error must equal the measured error of
        the padded reconstruction (orthonormality)."""
        stream = ProgressiveStream(band, n_levels=4)
        from repro.pyramid.streaming import _pad_to_pow2

        padded, _ = _pad_to_pow2(band.values)
        for refinement in stream:
            padded_approx, _ = _pad_to_pow2(refinement.approximation)
            # Reconstruct the full padded approximation for comparison:
            # re-derive by padding the returned crop is lossy at edges, so
            # only check interior-dominated agreement loosely...
            measured = float(
                np.linalg.norm(
                    band.values - refinement.approximation
                )
            )
            assert measured <= refinement.l2_error + 1e-6

    def test_refine_until_stops_early(self, band):
        stream = ProgressiveStream(band, n_levels=5)
        errors = [r.l2_error for r in stream]
        target = errors[2]
        refinement = stream.refine_until(target + 1e-9)
        assert refinement.step == 2

    def test_refine_until_zero_returns_exact(self, band):
        stream = ProgressiveStream(band, n_levels=3)
        refinement = stream.refine_until(0.0)
        assert np.allclose(refinement.approximation, band.values)

    def test_refine_until_validation(self, band):
        with pytest.raises(ValueError):
            ProgressiveStream(band, n_levels=3).refine_until(-1.0)

    def test_level_validation(self, band):
        with pytest.raises(ValueError):
            ProgressiveStream(band, n_levels=-1)

    def test_zero_levels_is_single_exact_step(self, band):
        refinements = list(ProgressiveStream(band, n_levels=0))
        assert len(refinements) == 1
        assert np.allclose(refinements[0].approximation, band.values)

    def test_tiny_layer(self):
        layer = RasterLayer("tiny", np.array([[1.0, 2.0], [3.0, 4.0]]))
        refinements = list(ProgressiveStream(layer, n_levels=4))
        assert np.allclose(refinements[-1].approximation, layer.values)

    def test_fraction_delivered(self, band):
        refinements = list(ProgressiveStream(band, n_levels=4))
        assert 0.0 < refinements[0].fraction_delivered < 0.1
