"""Tests for the telemetry subsystem (PR 5, ISSUE 5).

Covers the tentpole and every satellite:

* trace-context propagation — span ids, parent links, CPU time — and
  the Chrome ``trace_event`` / JSONL exporters (empty input, unicode,
  ring-buffer overflow, concurrent export under live queries);
* Prometheus text exposition of registry snapshots, pinned to the
  format grammar with cumulative-monotone ``le`` buckets;
* the ``/metrics`` / ``/healthz`` / ``/traces`` HTTP endpoints;
* ``top_k(..., explain=True)`` pruning waterfalls reconciling exactly
  with the result's :class:`~repro.core.results.PruningAudit`;
* batch retirement-reason metadata (deadline vs explicit cancel);
* the benchmark trajectory recorder's regression flagging.
"""

from __future__ import annotations

import json
import re
import threading
import time
import urllib.request

import pytest

from repro.core.query import TopKQuery
from repro.metrics.registry import LatencyHistogram, MetricsRegistry
from repro.models.linear import hps_risk_model
from repro.service import CancellationToken, RetrievalService
from repro.service.tracing import BatchTrace, QueryTrace
from repro.synth.landsat import generate_scene
from repro.synth.terrain import generate_dem
from repro.telemetry import (
    MetricsServer,
    TraceBuffer,
    chrome_trace_document,
    chrome_trace_events,
    escape_label_value,
    export_chrome_trace,
    render_prometheus,
    sanitize_metric_name,
)
from repro.telemetry.export import JsonlTraceExporter


def _service(stack, **kwargs):
    kwargs.setdefault("registry", MetricsRegistry())
    return RetrievalService(stack, leaf_size=4, **kwargs)


def _fetch(url: str) -> bytes:
    with urllib.request.urlopen(url, timeout=10) as reply:
        return reply.read()


# -- trace-context propagation (tentpole) -------------------------------------


class TestTraceContext:
    def test_solo_trace_has_ids_and_parent_links(
        self, make_noise_stack, make_random_linear_model
    ):
        stack = make_noise_stack(16, 16, 2, seed=3)
        service = _service(stack)
        result = service.top_k(
            TopKQuery(model=make_random_linear_model(stack), k=3)
        )
        trace = result.trace
        assert re.fullmatch(r"[0-9a-f]{16}", trace.trace_id)
        assert trace.parent_span_id is None
        ids = {trace.span_id}
        for span in trace.spans:
            assert span.span_id not in ids  # unique within the trace
            ids.add(span.span_id)
        # Every stage span hangs off the root (or another stage span).
        for span in trace.spans:
            assert span.parent_id in ids
        # Shard records parent on the "search" stage span, not the root.
        search = next(s for s in trace.spans if s.name == "search")
        for shard in trace.shards:
            assert shard["span_id"] not in (s.span_id for s in trace.spans)
            assert shard["parent_id"] == search.span_id

    def test_batch_children_share_trace_id_and_id_space(
        self, make_noise_stack, make_random_linear_model
    ):
        stack = make_noise_stack(16, 16, 2, seed=4)
        service = _service(stack)
        queries = [
            TopKQuery(model=make_random_linear_model(stack, seed=i), k=3)
            for i in range(3)
        ]
        results = service.top_k_batch(queries, use_cache=False)
        traces = [result.trace for result in results]
        batch_ids = {trace.trace_id for trace in traces}
        assert len(batch_ids) == 1  # one correlation id for the batch
        seen: set[int] = set()
        for trace in traces:
            assert trace.parent_span_id is not None
            for span_id in (
                trace.span_id,
                *(span.span_id for span in trace.spans),
            ):
                assert span_id not in seen  # allocator shared, no reuse
                seen.add(span_id)

    def test_span_cpu_time_bounded_by_wall_time(self):
        # Single-threaded span: process CPU time cannot exceed wall
        # time (plus scheduler/clock-resolution jitter).
        trace = QueryTrace()
        with trace.span("busy"):
            deadline = time.perf_counter() + 0.05
            while time.perf_counter() < deadline:
                sum(range(100))
        (span,) = trace.spans
        assert span.cpu_s is not None
        assert span.cpu_s <= span.duration_s + 0.015
        assert span.cpu_s > 0.0

    def test_record_span_has_no_cpu_reading(self):
        trace = QueryTrace()
        trace.record_span("external", 0.01)
        assert trace.spans[0].cpu_s is None


# -- Chrome / JSONL exporters (satellite 4) -----------------------------------


class TestChromeExport:
    def test_empty_input_is_a_valid_document(self, tmp_path):
        assert chrome_trace_events([]) == []
        path = export_chrome_trace([], tmp_path / "empty.json")
        document = json.loads(path.read_text())
        assert document == {"traceEvents": [], "displayTimeUnit": "ms"}

    def test_span_tree_is_parent_linked_and_durations_sum(
        self, make_noise_stack, make_random_linear_model
    ):
        stack = make_noise_stack(16, 16, 2, seed=5)
        service = _service(stack)
        service.enable_telemetry()
        service.top_k(TopKQuery(model=make_random_linear_model(stack), k=3))
        service.top_k_batch(
            [
                TopKQuery(model=make_random_linear_model(stack, seed=9), k=2),
                TopKQuery(model=make_random_linear_model(stack, seed=8), k=2),
            ],
            use_cache=False,
        )
        events = chrome_trace_events(service.telemetry.recent())
        assert events
        by_key = {
            (event["args"]["trace_id"], event["args"]["span_id"]): event
            for event in events
        }
        roots = []
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] >= 0.0
            parent = event["args"].get("parent_id")
            if parent:
                assert (event["args"]["trace_id"], parent) in by_key
            else:
                roots.append(event)
        # One solo query root + one batch root.
        assert sorted(event["name"] for event in roots) == ["batch", "query"]
        # Sequential stage spans tile their query's wall time: per
        # trace, stage durations sum to <= the root's duration (the
        # same invariant the hypothesis span-sum property pins on the
        # live trace, re-checked here through the export pipeline).
        for root in roots:
            key = (root["args"]["trace_id"], root["args"]["span_id"])
            stage_total = sum(
                event["dur"]
                for event in events
                if event["cat"] == "stage"
                and event["args"].get("parent_id") == key[1]
                and event["args"]["trace_id"] == key[0]
            )
            assert stage_total <= root["dur"] * 1.01 + 1.0  # +1us slack

    def test_batch_children_nest_under_batch_root(
        self, make_noise_stack, make_random_linear_model
    ):
        stack = make_noise_stack(12, 12, 2, seed=6)
        service = _service(stack)
        service.enable_telemetry()
        service.top_k_batch(
            [
                TopKQuery(model=make_random_linear_model(stack, seed=i), k=2)
                for i in range(3)
            ],
            use_cache=False,
        )
        (batch_dict,) = service.telemetry.recent()
        events = chrome_trace_events([batch_dict])
        batch_root = next(e for e in events if e["name"] == "batch")
        child_roots = [e for e in events if e["name"] == "query"]
        assert len(child_roots) == 3
        for child in child_roots:
            assert child["args"]["parent_id"] == batch_root["args"]["span_id"]
            assert child["args"]["trace_id"] == batch_root["args"]["trace_id"]

    def test_unicode_metadata_survives_export(self, tmp_path):
        trace = QueryTrace()
        trace.metadata["model"] = "пожар-모델-🔥"
        trace.finish()
        path = export_chrome_trace([trace.as_dict()], tmp_path / "u.json")
        document = json.loads(path.read_text())
        (event,) = document["traceEvents"]
        assert event["args"]["metadata"]["model"] == "пожар-모델-🔥"


class TestTraceBuffer:
    def test_overflow_drops_oldest_not_newest(self):
        buffer = TraceBuffer(capacity=3)
        for index in range(7):
            buffer.record({"trace_id": f"t{index}"})
        assert buffer.dropped == 4
        assert [t["trace_id"] for t in buffer.snapshot()] == [
            "t4", "t5", "t6"
        ]

    def test_snapshot_limit_returns_newest(self):
        buffer = TraceBuffer(capacity=8)
        for index in range(5):
            buffer.record({"trace_id": f"t{index}"})
        assert [t["trace_id"] for t in buffer.snapshot(2)] == ["t3", "t4"]

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            TraceBuffer(capacity=0)


class TestJsonlExporter:
    def test_traces_land_on_disk_one_per_line(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        exporter = JsonlTraceExporter(path, flush_interval_s=0.05)
        for index in range(4):
            exporter.record({"trace_id": f"t{index}", "n": index})
        exporter.close()
        lines = path.read_text().strip().splitlines()
        assert [json.loads(line)["trace_id"] for line in lines] == [
            "t0", "t1", "t2", "t3"
        ]

    def test_pending_ring_drops_oldest(self, tmp_path):
        exporter = JsonlTraceExporter(
            tmp_path / "t.jsonl", capacity=2, flush_interval_s=60.0
        )
        try:
            # Big interval: records pile up in the pending ring.
            for index in range(5):
                exporter.record({"n": index})
            # 5 records through a 2-slot ring: at least 3 dropped (the
            # background thread may have flushed some before overflow).
            assert exporter.dropped <= 3
            assert len(exporter._pending) <= 2
        finally:
            exporter.close()

    def test_concurrent_export_during_active_queries(
        self, tmp_path, make_noise_stack, make_random_linear_model
    ):
        stack = make_noise_stack(16, 16, 2, seed=7)
        service = _service(stack, cache_size=0)
        service.enable_telemetry(
            capacity=64,
            jsonl_path=tmp_path / "live.jsonl",
            flush_interval_s=0.01,
        )
        query = TopKQuery(model=make_random_linear_model(stack), k=3)
        errors: list[BaseException] = []

        def run_queries() -> None:
            try:
                for _ in range(30):
                    service.top_k(query)
            except BaseException as error:  # noqa: BLE001 (test harness)
                errors.append(error)

        def run_exports() -> None:
            try:
                for _ in range(30):
                    chrome_trace_document(service.telemetry.recent())
            except BaseException as error:  # noqa: BLE001 (test harness)
                errors.append(error)

        threads = [
            threading.Thread(target=target)
            for target in (run_queries, run_queries, run_exports, run_exports)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        service.telemetry.close()
        lines = (tmp_path / "live.jsonl").read_text().strip().splitlines()
        assert len(lines) == 60  # every query exported exactly once
        for line in lines:
            json.loads(line)


# -- Prometheus exposition (satellite 1) --------------------------------------


class TestPrometheusRender:
    def test_exposition_format_pinned(self):
        registry = MetricsRegistry()
        registry.inc("service.queries", 3)
        registry.gauge("service.cache_size", 2)
        registry.observe("service.stage.search_seconds", 0.004)
        registry.observe("service.stage.search_seconds", 0.2)
        text = render_prometheus(registry.snapshot())
        lines = text.splitlines()
        assert "# TYPE service_queries_total counter" in lines
        assert "service_queries_total 3" in lines
        assert "# TYPE service_cache_size gauge" in lines
        assert "service_cache_size 2" in lines
        assert "# TYPE service_stage_search_seconds histogram" in lines
        assert "service_stage_search_seconds_count 2" in lines
        assert any(
            line.startswith("service_stage_search_seconds_sum ")
            for line in lines
        )
        assert 'service_stage_search_seconds_bucket{le="+Inf"} 2' in lines
        assert text.endswith("\n")

    def test_buckets_are_cumulative_and_monotone(self):
        histogram = LatencyHistogram(buckets_s=(0.01, 0.1, 1.0))
        for value in (0.005, 0.005, 0.05, 0.5, 5.0):
            histogram.observe(value)
        buckets = histogram.cumulative_buckets()
        assert buckets == [(0.01, 2), (0.1, 3), (1.0, 4)]
        counts = [count for _, count in buckets]
        assert counts == sorted(counts)
        # And the renderer closes the family with le="+Inf" == count.
        text = render_prometheus(
            {"histograms": {"h": histogram.as_dict()}}
        )
        assert 'h_bucket{le="+Inf"} 5' in text.splitlines()

    def test_snapshot_buckets_render_in_le_order(self):
        registry = MetricsRegistry()
        for value in (0.002, 0.02, 0.02, 3.0):
            registry.observe("lat_seconds", value)
        text = render_prometheus(registry.snapshot())
        bucket_counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("lat_seconds_bucket")
        ]
        assert bucket_counts == sorted(bucket_counts)
        assert bucket_counts[-1] == 4  # +Inf covers every observation

    def test_unicode_names_sanitized_and_labels_escaped(self):
        assert sanitize_metric_name("service.latência-ms") == (
            "service_lat_ncia_ms"
        )
        assert sanitize_metric_name("9lives") == "_9lives"
        assert escape_label_value('a\\b"c\nd') == 'a\\\\b\\"c\\nd'
        text = render_prometheus(
            {"counters": {"λ.count": 1}},
            labels={"model": 'hps "v2"\nβ'},
        )
        (sample,) = [
            line for line in text.splitlines() if not line.startswith("#")
        ]
        name, _ = sample.split("{", 1)
        assert re.fullmatch(r"[a-zA-Z_:][a-zA-Z0-9_:]*", name)
        assert '\\"v2\\"' in sample and "\\n" in sample
        assert "\n" not in sample

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus({}) == ""


# -- HTTP endpoints (tentpole) ------------------------------------------------


class TestMetricsServer:
    def test_endpoints_serve_metrics_health_and_traces(
        self, make_noise_stack, make_random_linear_model
    ):
        stack = make_noise_stack(16, 16, 2, seed=8)
        service = _service(stack)
        server = service.serve_metrics(port=0)
        try:
            query = TopKQuery(model=make_random_linear_model(stack), k=3)
            service.top_k(query)
            service.top_k(query)  # cache hit

            text = _fetch(f"{server.url}/metrics").decode()
            assert "service_queries_total 2" in text.splitlines()
            assert "service_cache_hits_total 1" in text.splitlines()

            health = json.loads(_fetch(f"{server.url}/healthz"))
            assert health["status"] == "ok"
            assert health["queries"] == 2
            assert health["cache_hits"] == 1

            traces = json.loads(_fetch(f"{server.url}/traces"))
            assert len(traces) == 2
            assert traces[1]["cache_hit"] is True

            limited = json.loads(_fetch(f"{server.url}/traces?limit=1"))
            assert len(limited) == 1

            chrome = json.loads(_fetch(f"{server.url}/traces/chrome"))
            assert len(chrome["traceEvents"]) >= 2
        finally:
            server.close()

    def test_serve_metrics_is_idempotent(self, make_noise_stack):
        stack = make_noise_stack(8, 8, 1, seed=9)
        service = _service(stack)
        server = service.serve_metrics(port=0)
        try:
            assert service.serve_metrics() is server
        finally:
            server.close()

    def test_unknown_route_404s_with_route_list(self):
        server = MetricsServer(MetricsRegistry()).start()
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _fetch(f"{server.url}/nope")
            assert excinfo.value.code == 404
            payload = json.loads(excinfo.value.read())
            assert "/metrics" in payload["routes"]
        finally:
            server.close()

    def test_standalone_server_without_sink(self):
        registry = MetricsRegistry()
        registry.inc("up")
        with MetricsServer(registry, labels={"service": "repro"}) as server:
            text = _fetch(f"{server.url}/metrics").decode()
            assert 'up_total{service="repro"} 1' in text.splitlines()
            traces = json.loads(_fetch(f"{server.url}/traces"))
            assert traces == []


# -- explain waterfalls (tentpole) --------------------------------------------


class TestExplain:
    @pytest.fixture(scope="class")
    def hps_service(self):
        dem = generate_dem((64, 64), seed=1)
        stack = generate_scene((64, 64), seed=2, terrain=dem)
        stack.add(dem)
        return RetrievalService(
            stack, leaf_size=8, n_shards=2, registry=MetricsRegistry()
        )

    def test_waterfall_reconciles_with_audit_totals(self, hps_service):
        report = hps_service.top_k(
            TopKQuery(model=hps_risk_model(), k=10),
            explain=True,
            use_cache=False,
        )
        audit = report.result.audit
        assert report.totals["visited"] == audit.tiles_screened
        assert report.totals.get("interval", 0) == audit.tiles_pruned
        assert sum(
            row["visited"] for row in report.tile_rows
        ) == audit.tiles_screened
        # Level waterfall mirrors the cascade tallies exactly.
        for row in report.level_rows:
            level = row["level"]
            assert row["entered"] == audit.cells_entered_level[level]
            assert row["pruned"] == audit.cells_pruned_at_level.get(level, 0)

    def test_explain_does_not_change_the_answer(self, hps_service):
        # Counted work varies run to run (the "both" strategy races two
        # plans and keeps the winner), so the invariant explain offers
        # is answer identity plus internal reconciliation — not a
        # work-for-work match between independent runs.
        query = TopKQuery(model=hps_risk_model(), k=5)
        plain = hps_service.top_k(query, use_cache=False)
        explained = hps_service.top_k(query, explain=True, use_cache=False)
        assert [
            (a.row, a.col, round(a.score, 9))
            for a in explained.result.answers
        ] == [(a.row, a.col, round(a.score, 9)) for a in plain.answers]
        assert explained.totals["visited"] == (
            explained.result.audit.tiles_screened
        )

    def test_render_produces_aligned_tables(self, hps_service):
        report = hps_service.top_k(
            TopKQuery(model=hps_risk_model(), k=5),
            explain=True,
            use_cache=False,
        )
        text = report.render()
        assert "tile pyramid" in text
        assert "model cascade" in text
        assert str(report) == text
        data = report.as_dict()
        json.dumps(data)  # JSON-ready
        assert data["totals"]["visited"] == (
            report.result.audit.tiles_screened
        )

    def test_cache_hit_explain_notes_cache_service(self, hps_service):
        query = TopKQuery(model=hps_risk_model(), k=7)
        hps_service.top_k(query)
        report = hps_service.top_k(query, explain=True)
        assert report.totals["cache_hit"] is True
        assert "served from cache" in report.render()


# -- batch retirement metadata (satellite 3) ----------------------------------


class TestBatchRetirementMetadata:
    def test_explicit_cancel_reason_rides_the_trace(
        self, make_noise_stack, make_random_linear_model
    ):
        stack = make_noise_stack(32, 32, 2, seed=10)
        service = _service(stack)
        token = CancellationToken()
        token.cancel("load-shed")
        queries = [
            TopKQuery(model=make_random_linear_model(stack, seed=i), k=4)
            for i in range(3)
        ]
        results = service.top_k_batch(
            queries, cancel=[None, token, None], use_cache=False
        )
        retired = results[1].trace
        assert retired.metadata["retire_reason"] == "load-shed"
        survivors = (results[0].trace, results[2].trace)
        for trace in survivors:
            assert "retire_reason" not in trace.metadata

    def test_deadline_retirement_says_deadline(
        self, make_noise_stack, make_random_linear_model
    ):
        stack = make_noise_stack(32, 32, 2, seed=11)
        service = _service(stack)
        queries = [
            TopKQuery(model=make_random_linear_model(stack, seed=i), k=4)
            for i in range(2)
        ]
        results = service.top_k_batch(
            queries, deadline_s=[1e-9, None], use_cache=False
        )
        squeezed = results[0]
        assert squeezed.complete is False
        assert squeezed.trace.metadata["retire_reason"] == "deadline"

    def test_retirement_metadata_reaches_the_export(
        self, make_noise_stack, make_random_linear_model
    ):
        stack = make_noise_stack(32, 32, 2, seed=12)
        service = _service(stack)
        service.enable_telemetry()
        token = CancellationToken()
        token.cancel("shed")
        service.top_k_batch(
            [
                TopKQuery(model=make_random_linear_model(stack, seed=i), k=4)
                for i in range(2)
            ],
            cancel=[token, None],
            use_cache=False,
        )
        (batch_dict,) = service.telemetry.recent()
        retired = [
            child
            for child in batch_dict["children"]
            if child["metadata"].get("retire_reason")
        ]
        assert len(retired) == 1
        assert retired[0]["metadata"]["retire_reason"] == "shed"
        # And the Chrome export carries it in the child root's args.
        events = chrome_trace_events([batch_dict])
        tagged = [
            event
            for event in events
            if event["args"].get("metadata", {}).get("retire_reason")
        ]
        assert len(tagged) == 1


# -- sink wiring on the service (tentpole) ------------------------------------


class TestServiceTelemetryWiring:
    def test_disabled_by_default_and_idempotent_enable(
        self, make_noise_stack, make_random_linear_model
    ):
        stack = make_noise_stack(8, 8, 1, seed=13)
        service = _service(stack)
        assert service.telemetry is None
        service.top_k(TopKQuery(model=make_random_linear_model(stack), k=2))
        sink = service.enable_telemetry(capacity=4)
        assert service.enable_telemetry() is sink
        assert sink.recent() == []  # queries before enabling not recorded

    def test_only_top_level_traces_recorded_once(
        self, make_noise_stack, make_random_linear_model
    ):
        stack = make_noise_stack(16, 16, 2, seed=14)
        service = _service(stack)
        sink = service.enable_telemetry()
        service.top_k(TopKQuery(model=make_random_linear_model(stack), k=2))
        service.top_k_batch(
            [
                TopKQuery(model=make_random_linear_model(stack, seed=i), k=2)
                for i in range(3)
            ],
            use_cache=False,
        )
        recorded = sink.recent()
        # One solo trace + one batch trace; batch members ride inside
        # the batch's children, never as separate top-level entries.
        assert len(recorded) == 2
        assert "children" not in recorded[0]
        assert len(recorded[1]["children"]) == 3


# -- trajectory recorder (tentpole + satellite 6) -----------------------------


class TestTrajectoryRecorder:
    @pytest.fixture()
    def record(self):
        import sys
        from pathlib import Path

        sys.path.insert(
            0, str(Path(__file__).resolve().parent.parent / "benchmarks")
        )
        try:
            import record as module
            yield module
        finally:
            sys.path.pop(0)

    def test_appends_entries_with_sha_and_timestamp(self, record, tmp_path):
        path = tmp_path / "BENCH_trajectory.json"
        entry = record.record_run("demo", {"query_s": 0.5}, path=path)
        assert entry["regressions"] == []
        assert re.fullmatch(
            r"\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}Z", entry["timestamp"]
        )
        entries = json.loads(path.read_text())
        assert len(entries) == 1
        record.record_run("demo", {"query_s": 0.55}, path=path)
        assert len(json.loads(path.read_text())) == 2

    def test_flags_timing_regressions_over_threshold(self, record, tmp_path):
        path = tmp_path / "BENCH_trajectory.json"
        record.record_run("bench", {"query_s": 1.0, "speedup": 4.0}, path=path)
        entry = record.record_run(
            "bench", {"query_s": 1.5, "speedup": 2.0}, path=path
        )
        flagged = {item["metric"] for item in entry["regressions"]}
        assert flagged == {"query_s", "speedup"}  # slower AND less speedup

    def test_within_threshold_changes_not_flagged(self, record, tmp_path):
        path = tmp_path / "t.json"
        record.record_run("bench", {"query_s": 1.0}, path=path)
        entry = record.record_run("bench", {"query_s": 1.1}, path=path)
        assert entry["regressions"] == []

    def test_other_bench_entries_do_not_cross_compare(self, record, tmp_path):
        path = tmp_path / "t.json"
        record.record_run("kernels", {"build_s": 0.001}, path=path)
        entry = record.record_run("service", {"build_s": 10.0}, path=path)
        assert entry["regressions"] == []

    def test_direction_inference(self, record):
        assert record.metric_direction("query_s") == "lower"
        assert record.metric_direction("overhead_fraction") == "lower"
        assert record.metric_direction("quadtree_speedup") == "higher"
        assert record.metric_direction("n_queries") == "neutral"


# -- span-sum invariant through the whole pipeline ----------------------------


class TestSpanSumThroughExport:
    def test_batch_trace_children_durations_bounded_by_batch_wall(
        self, make_noise_stack, make_random_linear_model
    ):
        stack = make_noise_stack(16, 16, 2, seed=15)
        service = _service(stack)
        service.enable_telemetry()
        service.top_k_batch(
            [
                TopKQuery(model=make_random_linear_model(stack, seed=i), k=2)
                for i in range(4)
            ],
            use_cache=False,
        )
        (batch_dict,) = service.telemetry.recent()
        wall = batch_dict["wall_seconds"]
        child_total = sum(
            span["duration_s"]
            for child in batch_dict["children"]
            for span in child["spans"]
        )
        # Children execute sequentially inside the batch: their stage
        # spans cannot sum past the batch's wall clock.
        assert child_total <= wall * 1.05 + 1e-4

    def test_batch_trace_export_roundtrip_preserves_tree(self):
        batch = BatchTrace(batch_size=2)
        with batch.span("plan"):
            pass
        for _ in range(2):
            child = batch.child()
            with child.span("scan"):
                pass
            child.finish()
        batch.finish()
        data = batch.as_dict()
        events = chrome_trace_events([data])
        names = sorted(event["name"] for event in events)
        assert names == ["batch", "plan", "query", "query", "scan", "scan"]
        batch_root = next(e for e in events if e["name"] == "batch")
        for event in events:
            if event["name"] == "query":
                assert (
                    event["args"]["parent_id"]
                    == batch_root["args"]["span_id"]
                )
