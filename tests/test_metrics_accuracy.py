"""Tests for the Section 4.1 accuracy cost model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.accuracy import (
    CostModel,
    cost_curve,
    cost_surface,
    evaluate_cost,
    optimal_threshold,
)


def _toy_surfaces():
    risk = np.array([[0.9, 0.1], [0.8, 0.2]])
    occurrences = np.array([[1, 0], [0, 2]])
    return risk, occurrences


class TestCostModel:
    def test_rejects_negative_costs(self):
        with pytest.raises(ValueError):
            CostModel(miss_cost=-1.0)

    def test_defaults_to_unit_costs(self):
        model = CostModel()
        assert model.miss_cost == 1.0
        assert model.false_alarm_cost == 1.0


class TestEvaluateCost:
    def test_counts_misses_and_false_alarms(self):
        risk, occurrences = _toy_surfaces()
        # T = 0.5: declared high = {(0,0), (1,0)}; events at {(0,0), (1,1)}.
        report = evaluate_cost(risk, occurrences, threshold=0.5)
        assert report.n_misses == 1  # (1,1): event but declared low
        assert report.n_false_alarms == 1  # (1,0): no event, declared high
        assert report.n_event_locations == 2
        assert report.n_quiet_locations == 2
        assert report.miss_rate == 0.5
        assert report.false_alarm_rate == 0.5

    def test_total_cost_weights_error_types(self):
        risk, occurrences = _toy_surfaces()
        expensive_misses = CostModel(miss_cost=10.0, false_alarm_cost=1.0)
        report = evaluate_cost(
            risk, occurrences, threshold=0.5, cost_model=expensive_misses
        )
        assert report.total_cost == 10.0 + 1.0

    def test_importance_weights_scale_locations(self):
        risk, occurrences = _toy_surfaces()
        weights = np.array([[1.0, 1.0], [5.0, 5.0]])
        report = evaluate_cost(risk, occurrences, 0.5, weights=weights)
        # miss at (1,1) weighted 5, false alarm at (1,0) weighted 5.
        assert report.total_cost == 10.0

    def test_extreme_thresholds(self):
        risk, occurrences = _toy_surfaces()
        all_high = evaluate_cost(risk, occurrences, threshold=-1.0)
        assert all_high.n_misses == 0
        assert all_high.n_false_alarms == 2
        all_low = evaluate_cost(risk, occurrences, threshold=2.0)
        assert all_low.n_misses == 2
        assert all_low.n_false_alarms == 0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            evaluate_cost(np.zeros((2, 2)), np.zeros((3, 3)), 0.5)

    def test_negative_weights_raise(self):
        risk, occurrences = _toy_surfaces()
        with pytest.raises(ValueError):
            evaluate_cost(
                risk, occurrences, 0.5, weights=np.full((2, 2), -1.0)
            )


class TestCostSurface:
    def test_surface_matches_report_total(self):
        risk, occurrences = _toy_surfaces()
        model = CostModel(miss_cost=3.0, false_alarm_cost=2.0)
        surface = cost_surface(risk, occurrences, 0.5, model)
        report = evaluate_cost(risk, occurrences, 0.5, model)
        assert surface.sum() == pytest.approx(report.total_cost)

    def test_correct_locations_cost_zero(self):
        risk, occurrences = _toy_surfaces()
        surface = cost_surface(risk, occurrences, 0.5)
        assert surface[0, 0] == 0.0  # hit
        assert surface[0, 1] == 0.0  # correct rejection


class TestCurveAndOptimum:
    def test_curve_length_matches_thresholds(self):
        risk, occurrences = _toy_surfaces()
        curve = cost_curve(risk, occurrences, np.linspace(0, 1, 11))
        assert len(curve) == 11

    def test_optimal_threshold_minimizes_cost(self):
        rng = np.random.default_rng(3)
        risk = rng.random((20, 20))
        occurrences = (risk + rng.normal(0, 0.2, risk.shape) > 0.7).astype(int)
        thresholds = np.linspace(0, 1, 21)
        best = optimal_threshold(risk, occurrences, thresholds)
        curve = cost_curve(risk, occurrences, thresholds)
        assert best.total_cost == min(r.total_cost for r in curve)

    def test_empty_thresholds_raise(self):
        risk, occurrences = _toy_surfaces()
        with pytest.raises(ValueError):
            optimal_threshold(risk, occurrences, np.array([]))

    @given(st.floats(0.05, 0.95))
    def test_miss_and_false_alarm_rates_are_rates(self, threshold):
        rng = np.random.default_rng(99)
        risk = rng.random((15, 15))
        occurrences = rng.integers(0, 2, (15, 15))
        report = evaluate_cost(risk, occurrences, threshold)
        assert 0.0 <= report.miss_rate <= 1.0
        assert 0.0 <= report.false_alarm_rate <= 1.0

    def test_raising_threshold_trades_false_alarms_for_misses(self):
        rng = np.random.default_rng(7)
        risk = rng.random((30, 30))
        occurrences = (risk > 0.6).astype(int)
        curve = cost_curve(risk, occurrences, np.linspace(0.1, 0.9, 9))
        misses = [r.n_misses for r in curve]
        false_alarms = [r.n_false_alarms for r in curve]
        assert misses == sorted(misses)  # non-decreasing in T
        assert false_alarms == sorted(false_alarms, reverse=True)
