"""Tests for linear models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ModelError
from repro.models.linear import (
    LinearModel,
    fico_scorecard,
    fit_linear_model,
    hps_risk_model,
)


class TestLinearModel:
    def test_evaluate(self):
        model = LinearModel({"a": 2.0, "b": -1.0}, intercept=3.0)
        assert model.evaluate({"a": 4.0, "b": 5.0}) == 3.0 + 8.0 - 5.0

    def test_missing_attribute_raises(self):
        model = LinearModel({"a": 1.0})
        with pytest.raises(ModelError):
            model.evaluate({"b": 1.0})

    def test_empty_coefficients_rejected(self):
        with pytest.raises(ModelError):
            LinearModel({})

    def test_batch_matches_scalar(self):
        model = LinearModel({"a": 0.5, "b": 2.0}, intercept=-1.0)
        columns = {"a": np.array([1.0, 2.0]), "b": np.array([3.0, 4.0])}
        batch = model.evaluate_batch(columns)
        for i in range(2):
            assert batch[i] == pytest.approx(
                model.evaluate({"a": columns["a"][i], "b": columns["b"][i]})
            )

    def test_batch_preserves_2d_shape(self):
        model = LinearModel({"a": 1.0})
        batch = model.evaluate_batch({"a": np.ones((3, 4))})
        assert batch.shape == (3, 4)

    def test_complexity(self):
        assert LinearModel({"a": 1.0, "b": 2.0, "c": 3.0}).complexity == 6

    def test_weight_vector_ordering(self):
        model = LinearModel({"a": 1.0, "b": 2.0})
        assert list(model.weight_vector(("b", "a"))) == [2.0, 1.0]
        with pytest.raises(ModelError):
            model.weight_vector(("z",))

    def test_restricted_to(self):
        model = LinearModel({"a": 1.0, "b": 2.0}, intercept=5.0)
        sub = model.restricted_to(("b",))
        assert sub.evaluate({"b": 3.0}) == 11.0
        with pytest.raises(ModelError):
            model.restricted_to(("z",))

    def test_supports_intervals(self):
        assert LinearModel({"a": 1.0}).supports_intervals


class TestIntervalEvaluation:
    @given(
        st.dictionaries(
            st.sampled_from(["a", "b", "c"]),
            st.floats(-10, 10),
            min_size=1,
        ),
        st.data(),
    )
    @settings(max_examples=60)
    def test_interval_bounds_are_sound_and_tight(self, coefficients, data):
        model = LinearModel(coefficients, intercept=1.5)
        intervals = {}
        for name in coefficients:
            low = data.draw(st.floats(-100, 100))
            width = data.draw(st.floats(0, 50))
            intervals[name] = (low, low + width)
        bound_low, bound_high = model.evaluate_interval(intervals)
        # Tight: both endpoints achieved at box corners.
        corner_low = {
            name: (lo if coefficients[name] >= 0 else hi)
            for name, (lo, hi) in intervals.items()
        }
        corner_high = {
            name: (hi if coefficients[name] >= 0 else lo)
            for name, (lo, hi) in intervals.items()
        }
        assert bound_low == pytest.approx(model.evaluate(corner_low), rel=1e-9, abs=1e-9)
        assert bound_high == pytest.approx(model.evaluate(corner_high), rel=1e-9, abs=1e-9)
        assert bound_low <= bound_high + 1e-12

    def test_interior_points_within_bounds(self):
        model = LinearModel({"a": 3.0, "b": -2.0})
        intervals = {"a": (0.0, 1.0), "b": (-1.0, 4.0)}
        low, high = model.evaluate_interval(intervals)
        rng = np.random.default_rng(0)
        for _ in range(50):
            point = {
                "a": rng.uniform(0, 1),
                "b": rng.uniform(-1, 4),
            }
            assert low - 1e-9 <= model.evaluate(point) <= high + 1e-9

    def test_invalid_interval_rejected(self):
        model = LinearModel({"a": 1.0})
        with pytest.raises(ModelError):
            model.evaluate_interval({"a": (2.0, 1.0)})

    def test_missing_interval_rejected(self):
        model = LinearModel({"a": 1.0, "b": 1.0})
        with pytest.raises(ModelError):
            model.evaluate_interval({"a": (0.0, 1.0)})


class TestFitting:
    def test_recovers_exact_coefficients(self):
        rng = np.random.default_rng(1)
        columns = {"x": rng.normal(size=200), "y": rng.normal(size=200)}
        target = 2.5 * columns["x"] - 1.5 * columns["y"] + 4.0
        model = fit_linear_model(columns, target)
        assert model.coefficients["x"] == pytest.approx(2.5, abs=1e-9)
        assert model.coefficients["y"] == pytest.approx(-1.5, abs=1e-9)
        assert model.intercept == pytest.approx(4.0, abs=1e-9)

    def test_noisy_recovery(self):
        rng = np.random.default_rng(2)
        columns = {"x": rng.normal(size=5000)}
        target = 3.0 * columns["x"] + rng.normal(0, 0.5, 5000)
        model = fit_linear_model(columns, target)
        assert model.coefficients["x"] == pytest.approx(3.0, abs=0.05)

    def test_without_intercept(self):
        columns = {"x": np.array([1.0, 2.0, 3.0])}
        target = np.array([2.0, 4.0, 6.0])
        model = fit_linear_model(columns, target, fit_intercept=False)
        assert model.intercept == 0.0
        assert model.coefficients["x"] == pytest.approx(2.0)

    def test_row_count_mismatch(self):
        with pytest.raises(ModelError):
            fit_linear_model({"x": np.zeros(3)}, np.zeros(4))

    def test_underdetermined_rejected(self):
        with pytest.raises(ModelError):
            fit_linear_model(
                {"x": np.zeros(2), "y": np.zeros(2)}, np.zeros(2)
            )

    def test_empty_columns_rejected(self):
        with pytest.raises(ModelError):
            fit_linear_model({}, np.zeros(3))


class TestPublishedModels:
    def test_hps_coefficients_verbatim(self):
        model = hps_risk_model()
        assert model.coefficients == {
            "tm_band4": 0.443,
            "tm_band5": 0.222,
            "tm_band7": 0.153,
            "elevation": 0.183,
        }
        assert model.intercept == 0.0

    def test_fico_scorecard_structure(self):
        model = fico_scorecard()
        assert model.intercept == 900.0
        assert all(weight < 0 for weight in model.coefficients.values())

    def test_fico_perfect_applicant_scores_900(self):
        model = fico_scorecard()
        perfect = {name: 0.0 for name in model.attributes}
        assert model.evaluate(perfect) == 900.0

    def test_fico_custom_weights(self):
        model = fico_scorecard({"late": 10.0})
        assert model.coefficients == {"late": -10.0}
        with pytest.raises(ModelError):
            fico_scorecard({})
