"""Tests for the CSVD clustering+SVD index (reference [14])."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import IndexError_
from repro.index.csvd import CSVDIndex
from repro.index.scan import scan_top_k
from repro.metrics.counters import CostCounter
from repro.models.linear import LinearModel
from repro.synth.gaussian import generate_gaussian_table


@pytest.fixture(scope="module")
def table():
    return generate_gaussian_table(1500, 3, seed=31)


@pytest.fixture(scope="module")
def index(table):
    return CSVDIndex(table, n_clusters=10, kept_dims=2, seed=0)


def _brute_nearest(matrix, query, k):
    distances = np.linalg.norm(matrix - query, axis=1)
    order = np.argsort(distances, kind="stable")[:k]
    return [(int(i), float(distances[i])) for i in order]


class TestConstruction:
    def test_clusters_cover_rows(self, index, table):
        covered = sorted(
            int(row) for cluster in index._clusters for row in cluster.rows
        )
        assert covered == list(range(len(table)))

    def test_parameter_validation(self, table):
        with pytest.raises(IndexError_):
            CSVDIndex(table, n_clusters=0)
        with pytest.raises(IndexError_):
            CSVDIndex(table, kept_dims=0)
        with pytest.raises(IndexError_):
            CSVDIndex(table, attributes=[])

    def test_kept_dims_clipped(self, table):
        index = CSVDIndex(table, kept_dims=99, seed=0)
        assert index.kept_dims == 3

    def test_more_clusters_than_rows(self):
        small = generate_gaussian_table(5, 2, seed=1)
        index = CSVDIndex(small, n_clusters=50, seed=0)
        assert index.n_clusters <= 5


class TestNearestNeighbour:
    @given(
        k=st.integers(1, 10),
        seed=st.integers(0, 20),
    )
    @settings(max_examples=30, deadline=None)
    def test_exact_against_brute_force(self, index, table, k, seed):
        rng = np.random.default_rng(seed)
        query_point = rng.normal(size=3)
        query = {f"x{i + 1}": float(query_point[i]) for i in range(3)}
        expected = _brute_nearest(table.matrix(), query_point, k)
        actual = index.nearest(query, k=k)
        assert [round(d, 9) for _, d in actual] == [
            round(d, 9) for _, d in expected
        ]

    def test_prunes_most_tuples(self, index, table):
        counter = CostCounter()
        index.nearest({"x1": 0.2, "x2": -0.1, "x3": 0.4}, k=1, counter=counter)
        assert counter.tuples_examined < len(table) / 5

    def test_query_validation(self, index):
        with pytest.raises(IndexError_):
            index.nearest({"x1": 0.0}, k=1)
        with pytest.raises(IndexError_):
            index.nearest({"x1": 0.0, "x2": 0.0, "x3": 0.0}, k=0)

    def test_lower_bound_soundness_under_heavy_reduction(self, table):
        """kept_dims=1 maximizes residuals; exactness must survive."""
        index = CSVDIndex(table, n_clusters=6, kept_dims=1, seed=0)
        rng = np.random.default_rng(3)
        for _ in range(5):
            query_point = rng.normal(size=3)
            query = {f"x{i + 1}": float(query_point[i]) for i in range(3)}
            expected = _brute_nearest(table.matrix(), query_point, 3)
            actual = index.nearest(query, k=3)
            assert [round(d, 9) for _, d in actual] == [
                round(d, 9) for _, d in expected
            ]


class TestLinearTopK:
    def test_matches_scan(self, index, table):
        weights = {"x1": 0.5, "x2": 0.3, "x3": 0.2}
        expected = scan_top_k(table, LinearModel(weights), 5)
        actual = index.top_k_linear(weights, 5)
        assert [row for row, _ in actual] == [row for row, _ in expected]

    def test_minimize(self, index, table):
        weights = {"x1": 1.0, "x2": 0.0, "x3": 0.0}
        actual = index.top_k_linear(weights, 1, maximize=False)
        assert actual[0][1] == pytest.approx(float(table.column("x1").min()))

    def test_similarity_bounds_are_loose_for_model_queries(self, index, table):
        """The paper's point (S3.2): a similarity index prunes poorly for
        linear-optimization queries compared to its own k-NN pruning."""
        linear_counter, nearest_counter = CostCounter(), CostCounter()
        index.top_k_linear(
            {"x1": 0.5, "x2": 0.3, "x3": 0.2}, 1, counter=linear_counter
        )
        index.nearest(
            {"x1": 0.0, "x2": 0.0, "x3": 0.0}, k=1, counter=nearest_counter
        )
        assert (
            linear_counter.tuples_examined > nearest_counter.tuples_examined
        )

    def test_k_validation(self, index):
        with pytest.raises(IndexError_):
            index.top_k_linear({"x1": 1.0, "x2": 0.0, "x3": 0.0}, 0)
