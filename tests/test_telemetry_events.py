"""Structured event log: ring semantics, cursors, cross-process folds."""

from __future__ import annotations

import json
import threading

import pytest

from repro.metrics.registry import MetricsRegistry
from repro.telemetry.events import (
    SEVERITIES,
    EventLog,
    global_event_log,
    set_global_event_log,
)


class TestEmit:
    def test_record_shape(self):
        log = EventLog()
        record = log.emit(
            "worker.spawn", trace_id="abc123", worker_id=1, pid=42
        )
        assert record["seq"] == 1
        assert record["event"] == "worker.spawn"
        assert record["severity"] == "info"
        assert record["trace_id"] == "abc123"
        assert record["attrs"] == {"worker_id": 1, "pid": 42}
        assert record["ts"] > 0
        assert record["pid"] > 0

    def test_seq_monotonic(self):
        log = EventLog()
        seqs = [log.emit(f"e{i}")["seq"] for i in range(5)]
        assert seqs == [1, 2, 3, 4, 5]

    @pytest.mark.parametrize("severity", SEVERITIES)
    def test_valid_severities(self, severity):
        assert EventLog().emit("x", severity=severity)["severity"] == severity

    def test_invalid_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            EventLog().emit("x", severity="fatal")

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            EventLog(capacity=0)

    def test_capacity_drops_oldest(self):
        log = EventLog(capacity=3)
        for i in range(5):
            log.emit(f"e{i}")
        events = log.snapshot()
        assert [e["event"] for e in events] == ["e2", "e3", "e4"]
        assert log.dropped == 2
        assert len(log) == 3

    def test_registry_counters(self):
        registry = MetricsRegistry()
        log = EventLog(registry=registry)
        log.emit("a")
        log.emit("b", severity="error")
        counters = registry.snapshot()["counters"]
        assert counters["events.emitted"] == 2
        assert counters["events.severity.info"] == 1
        assert counters["events.severity.error"] == 1


class TestCursor:
    def test_since_returns_only_fresh(self):
        log = EventLog()
        log.emit("a")
        log.emit("b")
        fresh, cursor = log.since(0)
        assert [e["event"] for e in fresh] == ["a", "b"]
        assert cursor == 2
        fresh, cursor = log.since(cursor)
        assert fresh == []
        assert cursor == 2
        log.emit("c")
        fresh, cursor = log.since(cursor)
        assert [e["event"] for e in fresh] == ["c"]
        assert cursor == 3

    def test_cursor_advances_past_dropped_events(self):
        log = EventLog(capacity=2)
        for i in range(6):
            log.emit(f"e{i}")
        fresh, cursor = log.since(0)
        # e0..e3 fell off the ring before being read; the cursor still
        # lands on the latest seq so the next poll sees nothing stale.
        assert [e["event"] for e in fresh] == ["e4", "e5"]
        assert cursor == 6

    def test_ingest_preserves_origin(self):
        worker = EventLog()
        frontend = EventLog()
        frontend.emit("local")
        shipped = worker.emit("worker.crash", severity="error", worker_id=1)
        stored = frontend.ingest(shipped)
        assert stored["seq"] == 2  # fresh local seq
        assert stored["origin_seq"] == 1
        assert stored["event"] == "worker.crash"
        assert stored["severity"] == "error"
        assert stored["ts"] == shipped["ts"]

    def test_worker_drain_round_trip(self):
        """The fleet's poll loop in miniature: drain with a cursor, fold
        into the front-end log, repeat — no duplicates, no losses."""
        worker = EventLog()
        frontend = EventLog()
        cursor = 0
        worker.emit("a")
        worker.emit("b")
        records, cursor = worker.since(cursor)
        for record in records:
            frontend.ingest(record)
        worker.emit("c")
        records, cursor = worker.since(cursor)
        for record in records:
            frontend.ingest(record)
        assert [e["event"] for e in frontend.snapshot()] == ["a", "b", "c"]


class TestConcurrency:
    def test_concurrent_emitters_unique_seqs(self):
        log = EventLog(capacity=4096)
        n_threads, per_thread = 8, 200

        def hammer(k: int) -> None:
            for i in range(per_thread):
                log.emit(f"t{k}.{i}")

        threads = [
            threading.Thread(target=hammer, args=(k,))
            for k in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        events = log.snapshot()
        assert len(events) == n_threads * per_thread
        seqs = [e["seq"] for e in events]
        assert len(set(seqs)) == len(seqs)
        assert sorted(seqs) == list(range(1, n_threads * per_thread + 1))


class TestJsonlTee:
    def test_events_land_on_disk(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(jsonl_path=path)
        log.emit("a", worker_id=3)
        log.emit("b", severity="warning")
        log.close()
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line
        ]
        assert [rec["event"] for rec in lines] == ["a", "b"]
        assert lines[0]["attrs"] == {"worker_id": 3}


class TestGlobal:
    def test_singleton_and_swap(self):
        original = set_global_event_log(None)
        try:
            log = global_event_log()
            assert global_event_log() is log
            replacement = EventLog()
            assert set_global_event_log(replacement) is log
            assert global_event_log() is replacement
        finally:
            set_global_event_log(original)
