"""Tests for tabular record sets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.table import Table
from repro.exceptions import ArchiveError
from repro.metrics.counters import CostCounter


def _table() -> Table:
    return Table("t", {"x": np.array([1.0, 2.0, 3.0]), "y": np.array([4.0, 5.0, 6.0])})


class TestTableValidation:
    def test_needs_columns(self):
        with pytest.raises(ArchiveError):
            Table("t", {})

    def test_columns_share_length(self):
        with pytest.raises(ArchiveError):
            Table("t", {"x": np.zeros(3), "y": np.zeros(4)})

    def test_columns_must_be_1d(self):
        with pytest.raises(ArchiveError):
            Table("t", {"x": np.zeros((2, 2))})

    def test_rejects_empty(self):
        with pytest.raises(ArchiveError):
            Table("t", {"x": np.array([])})

    def test_columns_read_only(self):
        table = _table()
        with pytest.raises(ValueError):
            table.column("x")[0] = 9.0


class TestTableAccess:
    def test_row_reads_and_tallies(self):
        table = _table()
        counter = CostCounter()
        row = table.row(1, counter)
        assert row == {"x": 2.0, "y": 5.0}
        assert counter.tuples_examined == 1
        assert counter.data_points == 2

    def test_row_bounds(self):
        with pytest.raises(ArchiveError):
            _table().row(3)
        with pytest.raises(ArchiveError):
            _table().row(-1)

    def test_unknown_column(self):
        with pytest.raises(ArchiveError):
            _table().column("z")

    def test_matrix_orders_columns(self):
        matrix = _table().matrix(["y", "x"])
        assert matrix.shape == (3, 2)
        assert list(matrix[0]) == [4.0, 1.0]

    def test_matrix_defaults_to_all_columns(self):
        assert _table().matrix().shape == (3, 2)

    def test_subset(self):
        subset = _table().subset(["y"])
        assert subset.column_names == ["y"]
        assert len(subset) == 3


class TestNonFiniteRejection:
    def test_nan_column_rejected(self):
        with pytest.raises(ArchiveError):
            Table("bad", {"x": np.array([1.0, np.nan])})

    def test_inf_column_rejected(self):
        with pytest.raises(ArchiveError):
            Table("bad", {"x": np.array([np.inf, 1.0])})
