"""Tests for the credit-scorecard and precision-agriculture applications."""

from __future__ import annotations

import pytest

from repro.apps import agriculture, credit
from repro.metrics.counters import CostCounter


@pytest.fixture(scope="module")
def credit_scenario():
    return credit.build_scenario(n_applicants=4000, seed=13)


@pytest.fixture(scope="module")
def field_scenario():
    return agriculture.build_scenario(shape=(96, 96), n_days=240, seed=17)


class TestCreditApp:
    def test_band_calibration_matches_paper(self, credit_scenario):
        calibration = credit.band_calibration(credit_scenario)
        assert calibration["above_680"] < 0.02
        assert 0.04 < calibration["below_620"] < 0.13

    def test_index_matches_scan_best(self, credit_scenario):
        indexed = credit.top_k_applicants(credit_scenario, 10, use_index=True)
        scanned = credit.top_k_applicants(credit_scenario, 10, use_index=False)
        assert [row for row, _ in indexed] == [row for row, _ in scanned]
        for (_, a), (_, b) in zip(indexed, scanned):
            assert a == pytest.approx(b)

    def test_index_matches_scan_riskiest(self, credit_scenario):
        indexed = credit.top_k_applicants(
            credit_scenario, 10, best=False, use_index=True
        )
        scanned = credit.top_k_applicants(
            credit_scenario, 10, best=False, use_index=False
        )
        assert [row for row, _ in indexed] == [row for row, _ in scanned]

    def test_scores_include_intercept(self, credit_scenario):
        top = credit.top_k_applicants(credit_scenario, 1)[0]
        assert 300.0 <= top[1] <= 900.0

    def test_index_examines_fewer_tuples(self, credit_scenario):
        index_counter, scan_counter = CostCounter(), CostCounter()
        credit.top_k_applicants(credit_scenario, 5, counter=index_counter)
        credit.top_k_applicants(
            credit_scenario, 5, use_index=False, counter=scan_counter
        )
        assert index_counter.tuples_examined < scan_counter.tuples_examined


class TestAgricultureApp:
    def test_progressive_and_exhaustive_agree(self, field_scenario):
        progressive = agriculture.find_stressed_zones(
            field_scenario, progressive=True
        )
        exhaustive = agriculture.find_stressed_zones(
            field_scenario, progressive=False
        )
        assert [z.block for z in progressive] == [z.block for z in exhaustive]

    def test_progressive_does_less_work(self, field_scenario):
        progressive_counter, exhaustive_counter = CostCounter(), CostCounter()
        agriculture.find_stressed_zones(
            field_scenario, progressive=True, counter=progressive_counter
        )
        agriculture.find_stressed_zones(
            field_scenario, progressive=False, counter=exhaustive_counter
        )
        assert (
            progressive_counter.total_work
            < exhaustive_counter.total_work
        )

    def test_zones_are_low_vigor(self, field_scenario):
        zones = agriculture.find_stressed_zones(field_scenario, k=5)
        for zone in zones:
            assert zone.features.mean < 120.0
            assert zone.features.has_expensive

    def test_zones_sorted_by_stress(self, field_scenario):
        zones = agriculture.find_stressed_zones(field_scenario, k=8)
        scores = [zone.stress_score for zone in zones]
        assert scores == sorted(scores, reverse=True)

    def test_harvest_symbols_progress(self, field_scenario):
        symbols = agriculture.harvest_symbols(field_scenario.weather)
        assert symbols[0] == "growing"
        assert "mature_dry" in symbols or "mature_wet" in symbols
        first_mature = next(
            i for i, s in enumerate(symbols) if s != "growing"
        )
        assert all(s == "growing" for s in symbols[:first_mature])
        assert all(s != "growing" for s in symbols[first_mature:])

    def test_harvest_machine_needs_two_dry_days(self):
        machine = agriculture.harvest_window_model()
        from repro.models.fsm_runner import run_fsm

        run = run_fsm(
            machine,
            ["growing", "mature_dry", "mature_dry", "mature_wet", "mature_dry",
             "mature_dry"],
        )
        # Matures on the first dry day (-> drying), window opens on the 2nd
        # dry day; rain closes it; two more dry days reopen.
        assert run.acceptance_times == (2, 5)

    def test_harvest_windows_over_scenario(self, field_scenario):
        run = agriculture.harvest_windows(field_scenario)
        assert run.machine_name == "harvest_window"
        if run.accepted:
            symbols = agriculture.harvest_symbols(field_scenario.weather)
            for onset in run.acceptance_times:
                assert symbols[onset] == "mature_dry"
