"""Tests for FSM execution and the fire-ants model (Figure 1)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.series import TimeSeries
from repro.metrics.counters import CostCounter
from repro.models.fsm_runner import (
    fire_ants_model,
    naive_window_match,
    run_fsm,
    run_fsm_over_series,
    symbolize_weather,
)


def _series(rain: list[float], temperature: list[float]) -> TimeSeries:
    n = len(rain)
    return TimeSeries(
        "w",
        np.arange(n, dtype=float),
        {
            "rain_mm": np.array(rain, dtype=float),
            "temperature_c": np.array(temperature, dtype=float),
        },
    )


def _events(rain: list[float], temperature: list[float]) -> list[dict[str, float]]:
    return [
        {"rain_mm": r, "temperature_c": t} for r, t in zip(rain, temperature)
    ]


class TestFireAntsModel:
    def test_canonical_swarm_sequence(self):
        """Rain, 3 dry days, then a hot dry day -> ants fly on day 4."""
        rain = [5.0, 0.0, 0.0, 0.0, 0.0]
        temperature = [20.0, 20.0, 20.0, 20.0, 28.0]
        run = run_fsm(fire_ants_model(), _events(rain, temperature))
        assert run.trajectory == (
            "rain", "dry_1", "dry_2", "dry_3_plus", "fire_ants_fly"
        )
        assert run.acceptance_times == (4,)

    def test_cool_days_delay_flight(self):
        rain = [5.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]
        temperature = [20.0] * 6 + [30.0]
        run = run_fsm(fire_ants_model(), _events(rain, temperature))
        assert run.first_acceptance == 6
        assert run.trajectory[4] == "dry_3_plus"

    def test_rain_resets_the_spell(self):
        rain = [5.0, 0.0, 0.0, 3.0, 0.0, 0.0, 0.0, 0.0]
        temperature = [30.0] * 8
        run = run_fsm(fire_ants_model(), _events(rain, temperature))
        # Dry days 4,5,6 rebuild the spell; flight earliest day 7.
        assert run.first_acceptance == 7

    def test_hot_wet_day_does_not_trigger(self):
        rain = [5.0, 0.0, 0.0, 0.0, 9.0]
        temperature = [30.0] * 5
        run = run_fsm(fire_ants_model(), _events(rain, temperature))
        assert not run.accepted

    def test_flight_persists_through_hot_dry_days(self):
        rain = [5.0] + [0.0] * 6
        temperature = [20.0, 20.0, 20.0, 20.0, 28.0, 29.0, 30.0]
        run = run_fsm(fire_ants_model(), _events(rain, temperature))
        assert run.accepting_days == 3
        assert run.acceptance_times == (4,)

    def test_cool_day_pauses_flight_without_reset(self):
        rain = [5.0] + [0.0] * 7
        temperature = [20.0, 20.0, 20.0, 20.0, 28.0, 20.0, 28.0, 28.0]
        run = run_fsm(fire_ants_model(), _events(rain, temperature))
        assert run.acceptance_times == (4, 6)

    def test_determinism_over_weather_alphabet(self):
        machine = fire_ants_model()
        alphabet = [
            {"rain_mm": 5.0, "temperature_c": 20.0},
            {"rain_mm": 0.0, "temperature_c": 30.0},
            {"rain_mm": 0.0, "temperature_c": 20.0},
        ]
        machine.check_deterministic(alphabet)


class TestRunBookkeeping:
    def test_counter_tallies_guard_work(self):
        counter = CostCounter()
        run_fsm(fire_ants_model(), _events([0.0] * 10, [20.0] * 10), counter)
        assert counter.model_evals == 10
        assert counter.flops > 0

    def test_run_over_series_reads_data(self):
        series = _series([0.0] * 5, [20.0] * 5)
        counter = CostCounter()
        run_fsm_over_series(fire_ants_model(), series, counter)
        assert counter.data_points == 10  # 2 attributes x 5 days

    def test_score_ranks_more_flight_days_higher(self):
        short = run_fsm(
            fire_ants_model(),
            _events([5.0] + [0.0] * 4, [20.0] * 4 + [30.0]),
        )
        long = run_fsm(
            fire_ants_model(),
            _events([5.0] + [0.0] * 6, [20.0] * 4 + [30.0] * 3),
        )
        assert long.score() > short.score()

    def test_no_acceptance_scores_zero(self):
        run = run_fsm(fire_ants_model(), _events([5.0] * 5, [30.0] * 5))
        assert run.score() == 0.0


class TestNaiveEquivalence:
    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_fsm_matches_naive_rescan(self, data):
        """The incremental FSM and the rescan baseline must agree on
        every onset for random weather."""
        n_days = data.draw(st.integers(1, 60))
        rain = [
            5.0 if data.draw(st.booleans()) else 0.0 for _ in range(n_days)
        ]
        temperature = [
            data.draw(st.sampled_from([18.0, 26.0])) for _ in range(n_days)
        ]
        series = _series(rain, temperature)
        fsm_run = run_fsm_over_series(fire_ants_model(), series)
        naive = naive_window_match(series)
        assert list(fsm_run.acceptance_times) == naive

    def test_naive_does_more_work(self):
        """The stateless baseline re-derives the spell arithmetic every
        day, so it always out-works the FSM's single-state step (both
        now read each sample exactly once)."""
        rng = np.random.default_rng(5)
        rain = np.where(rng.random(200) < 0.15, 5.0, 0.0)
        temperature = rng.uniform(20, 32, 200)
        series = _series(list(rain), list(temperature))
        fsm_counter, naive_counter = CostCounter(), CostCounter()
        run_fsm_over_series(fire_ants_model(), series, fsm_counter)
        naive_window_match(series, counter=naive_counter)
        assert naive_counter.data_points == fsm_counter.data_points
        assert naive_counter.total_work > fsm_counter.total_work


class TestSymbolize:
    def test_three_symbols(self):
        events = _events([5.0, 0.0, 0.0], [20.0, 30.0, 20.0])
        assert symbolize_weather(events) == ["rain", "dry_hot", "dry_cool"]
