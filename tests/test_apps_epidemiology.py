"""Tests for the HPS epidemiology application."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import epidemiology
from repro.metrics.topk import (
    precision_recall_at_k,
    rank_locations_by_risk,
    relevant_locations,
)


@pytest.fixture(scope="module")
def scenario():
    return epidemiology.build_scenario(shape=(64, 64), seed=3)


class TestScenario:
    def test_stack_has_model_inputs(self, scenario):
        for name in scenario.model.attributes:
            assert name in scenario.stack

    def test_occurrences_correlate_with_truth(self, scenario):
        truth = scenario.true_risk
        counts = scenario.occurrences.values
        high = truth > np.quantile(truth, 0.8)
        low = truth < np.quantile(truth, 0.2)
        assert counts[high].mean() > counts[low].mean()

    def test_deterministic(self):
        first = epidemiology.build_scenario(shape=(32, 32), seed=9)
        second = epidemiology.build_scenario(shape=(32, 32), seed=9)
        assert np.array_equal(first.true_risk, second.true_risk)
        assert np.array_equal(
            first.occurrences.values, second.occurrences.values
        )


class TestRetrieval:
    def test_progressive_matches_exhaustive(self, scenario):
        progressive = epidemiology.retrieve_high_risk(
            scenario, k=15, progressive=True
        )
        exhaustive = epidemiology.retrieve_high_risk(
            scenario, k=15, progressive=False
        )
        assert sorted(round(s, 9) for s in progressive.scores) == sorted(
            round(s, 9) for s in exhaustive.scores
        )

    def test_progressive_does_less_work(self, scenario):
        progressive = epidemiology.retrieve_high_risk(scenario, k=15)
        exhaustive = epidemiology.retrieve_high_risk(
            scenario, k=15, progressive=False
        )
        assert (
            progressive.counter.total_work < exhaustive.counter.total_work
        )

    def test_topk_beats_random_precision(self, scenario):
        """The published model must retrieve event locations far better
        than chance (Section 4.1's retrieval-accuracy view)."""
        model_risk = scenario.model.evaluate_batch(
            {
                name: scenario.stack[name].values
                for name in scenario.model.attributes
            }
        )
        ranked = rank_locations_by_risk(model_risk)
        relevant = relevant_locations(scenario.occurrences.values)
        k = 100
        result = precision_recall_at_k(ranked, relevant, k=k)
        chance = len(relevant) / scenario.occurrences.values.size
        assert result.precision > 3 * chance


class TestBayesNetwork:
    def test_network_validates(self):
        network = epidemiology.hps_bayes_network()
        network.validate()

    def test_posterior_ordering_follows_evidence(self):
        network = epidemiology.hps_bayes_network()
        strong = epidemiology.house_risk_posterior(
            network,
            {
                "house": "yes",
                "bushes": "yes",
                "unusual_raining_season": "yes",
                "dry_season": "yes",
            },
        )
        weak = epidemiology.house_risk_posterior(network, {"house": "no"})
        neutral = epidemiology.house_risk_posterior(network, {})
        assert strong > neutral > weak

    def test_rank_houses(self):
        network = epidemiology.hps_bayes_network()
        observations = [
            {"house": "no"},
            {
                "house": "yes",
                "bushes": "yes",
                "unusual_raining_season": "yes",
                "dry_season": "yes",
            },
            {"house": "yes", "bushes": "no"},
        ]
        ranked = epidemiology.rank_houses_by_posterior(
            network, observations, k=3
        )
        assert ranked[0][0] == 1
        assert ranked[-1][0] == 0
        posteriors = [p for _, p in ranked]
        assert posteriors == sorted(posteriors, reverse=True)
