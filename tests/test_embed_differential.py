"""Differential suite: fused ``top_k`` versus the exhaustive oracle.

The fused contract is *bit-for-bit*: for any query blending a model
score with query-by-example similarity (``similar_to`` + ``alpha``),
the progressive fused strategy, the exhaustive ``embed-scan`` strategy,
and the routed ``auto`` choice must all return exactly the answers the
brute-force oracle ranks — scores, tie order (descending score, then
ascending ``(row, col)``), and, for ``embed-scan``, the counted-work
ledger, across model families, regions, alpha values, and directions.
``alpha=1`` must collapse to the legacy model-only path exactly
(answers, counters, strategy label).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.oracles import (
    COUNTER_FIELDS,
    counter_dict,
    exact_answers,
    exhaustive_fused,
)
from repro.core.query import TopKQuery
from repro.exceptions import QueryError
from repro.metrics.registry import MetricsRegistry
from repro.models.fuzzy import (
    FuzzyAnd,
    FuzzyOr,
    gaussian_membership,
    trapezoid_membership,
    triangle_membership,
)
from repro.models.knowledge import FuzzyRule, KnowledgeModel, RulePredicate
from repro.service import RetrievalService


def _service(stack, leaf_size=8, n_shards=1):
    return RetrievalService(
        stack, leaf_size=leaf_size, n_shards=n_shards, cache_size=32,
        registry=MetricsRegistry(), embedding_dim=8,
    )


def _knowledge_model(names, variant=0):
    memberships = [
        triangle_membership(0.0, 1.0, 2.0),
        trapezoid_membership(-1.0, 0.0, 1.0, 2.5),
        gaussian_membership(1.0, 0.8),
    ]
    rules = [
        FuzzyRule(
            name=f"r{index}",
            predicates=tuple(
                RulePredicate(
                    attribute=name,
                    membership=memberships[(index + offset) % 3],
                )
                for offset, name in enumerate(names)
            ),
            weight=1.0 + 0.5 * index,
            conjunction=FuzzyAnd("min" if variant == 0 else "product"),
        )
        for index in range(2)
    ]
    return KnowledgeModel(
        rules,
        combination="or" if variant == 0 else "weighted",
        disjunction=FuzzyOr("max" if variant == 0 else "sum"),
    )


def _region(rows, cols, choice):
    if choice == 0:
        return None
    if choice == 1:
        return (0, 0, max(2, rows // 2), cols)
    return (rows // 4, cols // 4, rows, cols)


class TestFusedVersusOracle:
    @given(
        rows=st.integers(12, 40),
        cols=st.integers(12, 40),
        seed=st.integers(0, 200),
        k=st.integers(1, 10),
        alpha=st.sampled_from([0.0, 0.5, 1.0]),
        region_choice=st.integers(0, 2),
        maximize=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_linear_fused_matches_oracle_bitwise(
        self, rows, cols, seed, k, alpha, region_choice, maximize,
        make_tie_stack, make_random_linear_model,
    ):
        """Fused answers == oracle answers, exactly, at every alpha —
        tie-heavy stacks make any traversal-order leak visible."""
        stack = make_tie_stack(rows, cols, 2, seed)
        model = make_random_linear_model(stack, seed=seed + 1)
        service = _service(stack)
        example = (rows // 3, cols // 3)
        query = TopKQuery(
            model=model, k=k, maximize=maximize,
            region=_region(rows, cols, region_choice),
            similar_to=example, alpha=alpha,
        )
        clipped = query.clip_region(stack.shape)
        oracle_answers, oracle_counter = exhaustive_fused(
            stack,
            service.embeddings() if query.fused else None,
            query,
            clipped,
        )
        result = service.top_k(query, use_cache=False)
        assert exact_answers(result) == oracle_answers
        if query.fused:
            scan = service.top_k(
                query, strategy="embed-scan", use_cache=False
            )
            assert exact_answers(scan) == oracle_answers
            assert counter_dict(scan.counter) == oracle_counter
            assert scan.strategy == "embed-scan"

    @given(
        rows=st.integers(14, 32),
        cols=st.integers(14, 32),
        seed=st.integers(0, 120),
        k=st.integers(1, 6),
        alpha=st.sampled_from([0.0, 0.5]),
        variant=st.integers(0, 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_knowledge_fused_matches_oracle(
        self, rows, cols, seed, k, alpha, variant, make_noise_stack,
    ):
        """Fuzzy-rule knowledge models fuse too (they bound intervals);
        both fused strategies must agree with the oracle exactly."""
        stack = make_noise_stack(rows, cols, 2, seed)
        model = _knowledge_model(stack.names, variant)
        service = _service(stack)
        query = TopKQuery(
            model=model, k=k, similar_to=(rows // 2, cols // 2),
            alpha=alpha,
        )
        clipped = query.clip_region(stack.shape)
        oracle_answers, oracle_counter = exhaustive_fused(
            stack, service.embeddings(), query, clipped
        )
        fused = service.top_k(query, strategy="fused", use_cache=False)
        scan = service.top_k(query, strategy="embed-scan", use_cache=False)
        assert exact_answers(fused) == oracle_answers
        assert exact_answers(scan) == oracle_answers
        assert counter_dict(scan.counter) == oracle_counter

    @given(
        rows=st.integers(12, 32),
        cols=st.integers(12, 32),
        seed=st.integers(0, 120),
        k=st.integers(1, 8),
    )
    @settings(max_examples=20, deadline=None)
    def test_forced_auto_and_default_agree(
        self, rows, cols, seed, k, make_tie_stack, make_random_linear_model,
    ):
        """Forced 'fused', forced 'embed-scan', 'auto', and the default
        strategy all return identical answers for one fused query."""
        stack = make_tie_stack(rows, cols, 2, seed)
        model = make_random_linear_model(stack, seed=seed + 7)
        service = _service(stack)
        query = TopKQuery(
            model=model, k=k, similar_to=(1, 1), alpha=0.5
        )
        default = service.top_k(query, use_cache=False)
        forced = service.top_k(query, strategy="fused", use_cache=False)
        scan = service.top_k(query, strategy="embed-scan", use_cache=False)
        auto = service.top_k(query, strategy="auto", use_cache=False)
        assert exact_answers(default) == exact_answers(forced)
        assert exact_answers(default) == exact_answers(scan)
        assert exact_answers(default) == exact_answers(auto)
        # Forced and default run the same structure with the same work.
        assert counter_dict(default.counter) == counter_dict(forced.counter)
        routing = auto.trace.metadata["routing"]
        assert routing["chosen"] in ("fused", "embed-scan")


class TestAlphaOneIsLegacy:
    @given(
        rows=st.integers(12, 32),
        cols=st.integers(12, 32),
        seed=st.integers(0, 150),
        k=st.integers(1, 8),
        use_levels=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_alpha_one_equals_model_only_path_exactly(
        self, rows, cols, seed, k, use_levels,
        make_tie_stack, make_random_linear_model,
    ):
        """similar_to with alpha=1 weights similarity at zero: the query
        is not fused and must ride the legacy path byte-for-byte —
        answers, counters, audit, and strategy label."""
        stack = make_tie_stack(rows, cols, 2, seed)
        model = make_random_linear_model(stack, seed=seed + 3)
        service = _service(stack)
        with_example = TopKQuery(
            model=model, k=k, similar_to=(0, 0), alpha=1.0
        )
        plain = TopKQuery(model=model, k=k)
        assert not with_example.fused
        a = service.top_k(
            with_example, use_cache=False, use_model_levels=use_levels
        )
        b = service.top_k(
            plain, use_cache=False, use_model_levels=use_levels
        )
        assert exact_answers(a) == exact_answers(b)
        assert counter_dict(a.counter) == counter_dict(b.counter)
        assert a.strategy == b.strategy
        assert a.audit.tiles_screened == b.audit.tiles_screened
        assert a.audit.tiles_pruned == b.audit.tiles_pruned


class TestFusedDeterminismAndPlumbing:
    def test_fused_repeat_runs_are_identical(
        self, make_noise_stack, make_random_linear_model,
    ):
        """Two runs of the same fused query (one shard, no cache) agree
        on answers and every counter field."""
        stack = make_noise_stack(24, 28, 2, 5)
        model = make_random_linear_model(stack, seed=9)
        service = _service(stack)
        query = TopKQuery(model=model, k=6, similar_to=(10, 10), alpha=0.3)
        first = service.top_k(query, use_cache=False)
        second = service.top_k(query, use_cache=False)
        assert exact_answers(first) == exact_answers(second)
        assert counter_dict(first.counter) == counter_dict(second.counter)
        assert first.strategy == second.strategy == "fused-sharded[1]"

    def test_fused_sharded_matches_single_shard(
        self, make_tie_stack, make_random_linear_model,
    ):
        """Shard count never changes fused answers (shared threshold)."""
        stack = make_tie_stack(32, 32, 2, 11)
        model = make_random_linear_model(stack, seed=2)
        solo = _service(stack, n_shards=1)
        many = _service(stack, n_shards=4)
        query = TopKQuery(model=model, k=8, similar_to=(5, 20), alpha=0.5)
        assert exact_answers(
            solo.top_k(query, use_cache=False)
        ) == exact_answers(many.top_k(query, use_cache=False))

    def test_fused_cache_hit_returns_same_answers(
        self, make_noise_stack, make_random_linear_model,
    ):
        stack = make_noise_stack(20, 20, 2, 3)
        model = make_random_linear_model(stack, seed=4)
        service = _service(stack)
        query = TopKQuery(model=model, k=4, similar_to=(3, 3), alpha=0.5)
        miss = service.top_k(query)
        hit = service.top_k(query)
        assert hit.strategy.endswith("-cached")
        assert exact_answers(hit) == exact_answers(miss)
        # A different example cell or alpha is a different question.
        other = service.top_k(
            TopKQuery(model=model, k=4, similar_to=(18, 18), alpha=0.5)
        )
        assert not other.strategy.endswith("-cached")

    def test_fused_batch_members_match_solo(
        self, make_tie_stack, make_random_linear_model,
    ):
        """A batch mixing fused and plain queries returns each fused
        member bit-identical to its solo run."""
        stack = make_tie_stack(24, 24, 2, 8)
        model = make_random_linear_model(stack, seed=6)
        service = _service(stack)
        fused_query = TopKQuery(
            model=model, k=5, similar_to=(12, 12), alpha=0.5
        )
        plain_query = TopKQuery(model=model, k=5)
        solo = service.top_k(fused_query, n_shards=1, use_cache=False)
        results = service.top_k_batch(
            [fused_query, plain_query, fused_query],
            n_shards=1, use_cache=False,
        )
        for index in (0, 2):
            assert exact_answers(results[index]) == exact_answers(solo)
            for field in COUNTER_FIELDS:
                assert getattr(results[index].counter, field) == getattr(
                    solo.counter, field
                )

    def test_model_only_strategies_reject_fused_queries(
        self, make_noise_stack, make_random_linear_model,
    ):
        stack = make_noise_stack(16, 16, 2, 1)
        model = make_random_linear_model(stack, seed=1)
        service = _service(stack)
        query = TopKQuery(model=model, k=3, similar_to=(2, 2), alpha=0.5)
        for strategy in ("onion", "scan"):
            with pytest.raises(QueryError):
                service.top_k(query, strategy=strategy, use_cache=False)
        plain = TopKQuery(model=model, k=3)
        for strategy in ("fused", "embed-scan"):
            with pytest.raises(QueryError):
                service.top_k(plain, strategy=strategy, use_cache=False)

    def test_fused_query_validation(self):
        with pytest.raises(QueryError):
            TopKQuery(model=_knowledge_model(["layer0"]), k=1, alpha=1.5)
        with pytest.raises(QueryError):
            TopKQuery(model=_knowledge_model(["layer0"]), k=1, alpha=0.5)
        with pytest.raises(QueryError):
            TopKQuery(
                model=_knowledge_model(["layer0"]), k=1,
                similar_to=(-1, 2), alpha=0.5,
            )
        with pytest.raises(QueryError):
            TopKQuery(
                model=_knowledge_model(["layer0"]), k=1,
                similar_to="ab", alpha=0.5,
            )

    def test_explain_carries_fusion_section(
        self, make_noise_stack, make_random_linear_model,
    ):
        stack = make_noise_stack(20, 20, 2, 2)
        model = make_random_linear_model(stack, seed=5)
        service = _service(stack)
        query = TopKQuery(model=model, k=3, similar_to=(6, 6), alpha=0.25)
        report = service.top_k(query, use_cache=False, explain=True)
        assert report.fusion is not None
        assert report.fusion["alpha"] == 0.25
        assert tuple(report.fusion["similar_to"]) == (6, 6)
        assert "fusion:" in report.render()
        assert report.as_dict()["fusion"]["dim"] == 8
