"""Tests for the series retrieval engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.series_engine import (
    SeriesRetrievalEngine,
    SpellCountModel,
    ThresholdCountModel,
)
from repro.data.series import TimeSeries
from repro.exceptions import QueryError
from repro.metrics.counters import CostCounter
from repro.synth.weather import generate_station_grid


def _make_series(name: str, values: np.ndarray) -> TimeSeries:
    return TimeSeries(
        name, np.arange(float(values.size)), {"x": np.asarray(values, float)}
    )


@pytest.fixture(scope="module")
def stations():
    return generate_station_grid(6, 6, 365, seed=5)


class TestThresholdCountModel:
    def test_evaluate_counts(self):
        series = _make_series("s", np.array([1.0, 5.0, 3.0, 7.0]))
        assert ThresholdCountModel("x", 4.0).evaluate(series) == 2.0
        assert ThresholdCountModel("x", 4.0, above=False).evaluate(series) == 2.0

    def test_bound_contains_truth(self):
        rng = np.random.default_rng(1)
        values = rng.normal(20, 5, 200)
        series = _make_series("s", values)
        from repro.pyramid.series_pyramid import SeriesPyramid

        model = ThresholdCountModel("x", 22.0)
        pyramid = SeriesPyramid(series, "x", n_levels=5)
        low, high = model.bound(pyramid)
        truth = model.evaluate(series)
        assert low <= truth <= high

    def test_bound_state_collapses_to_exact(self):
        rng = np.random.default_rng(2)
        values = rng.normal(20, 5, 100)
        series = _make_series("s", values)
        from repro.pyramid.series_pyramid import SeriesPyramid

        model = ThresholdCountModel("x", 22.0)
        state = model.bound_state(SeriesPyramid(series, "x", n_levels=6))
        while state.refine():
            pass
        assert state.exact
        assert state.low == model.evaluate(series)

    def test_bound_tightens_monotonically(self):
        rng = np.random.default_rng(3)
        values = rng.normal(0, 1, 128)
        series = _make_series("s", values)
        from repro.pyramid.series_pyramid import SeriesPyramid

        model = ThresholdCountModel("x", 0.3)
        state = model.bound_state(SeriesPyramid(series, "x", n_levels=7))
        previous = (state.low, state.high)
        while state.refine():
            assert state.low >= previous[0] - 1e-9
            assert state.high <= previous[1] + 1e-9
            previous = (state.low, state.high)


class TestSpellCountModel:
    def test_evaluate_counts_run_members(self):
        values = np.array([0.0, 0.0, 0.0, 5.0, 0.0, 0.0, 5.0, 0.0, 0.0, 0.0, 0.0])
        series = _make_series("s", values)
        model = SpellCountModel("x", 0.1, min_run=3)
        # Runs: 3 (counts), 2 (too short), 4 (counts) -> 7.
        assert model.evaluate(series) == 7.0

    def test_trailing_run_counted(self):
        values = np.array([5.0, 0.0, 0.0, 0.0])
        assert SpellCountModel("x", 0.1, min_run=3).evaluate(
            _make_series("s", values)
        ) == 3.0

    def test_bound_is_upper(self):
        rng = np.random.default_rng(4)
        values = np.where(rng.random(200) < 0.3, 5.0, 0.0)
        series = _make_series("s", values)
        from repro.pyramid.series_pyramid import SeriesPyramid

        model = SpellCountModel("x", 0.1, min_run=3)
        low, high = model.bound(SeriesPyramid(series, "x", n_levels=5))
        truth = model.evaluate(series)
        assert low == 0.0
        assert truth <= high

    def test_min_run_validation(self):
        with pytest.raises(QueryError):
            SpellCountModel("x", 0.1, min_run=0)


class TestSeriesEngine:
    @pytest.mark.parametrize(
        "model",
        [
            ThresholdCountModel("temperature_c", 25.0),
            ThresholdCountModel("temperature_c", 18.0, above=False),
            ThresholdCountModel("rain_mm", 0.1, above=False),
            SpellCountModel("rain_mm", 0.1, min_run=3),
        ],
        ids=["hot_days", "cool_days", "dry_days", "dry_spells"],
    )
    @pytest.mark.parametrize("k", [1, 5, 36])
    def test_progressive_matches_exhaustive(self, stations, model, k):
        engine = SeriesRetrievalEngine(stations, n_levels=7)
        exhaustive = engine.exhaustive_top_k(model, k)
        progressive = engine.progressive_top_k(model, k)
        assert progressive == exhaustive

    def test_structured_signal_saves_work(self, stations):
        """Seasonal temperature has multi-scale structure: whole summer
        and winter windows decide coarsely."""
        engine = SeriesRetrievalEngine(stations, n_levels=7)
        model = ThresholdCountModel("temperature_c", 25.0)
        exhaustive_counter, progressive_counter = CostCounter(), CostCounter()
        engine.exhaustive_top_k(model, 3, exhaustive_counter)
        engine.progressive_top_k(model, 3, progressive_counter)
        assert (
            progressive_counter.total_work < exhaustive_counter.total_work
        )

    def test_k_validation(self, stations):
        engine = SeriesRetrievalEngine(stations)
        model = ThresholdCountModel("temperature_c", 25.0)
        with pytest.raises(QueryError):
            engine.exhaustive_top_k(model, 0)
        with pytest.raises(QueryError):
            engine.progressive_top_k(model, 0)

    def test_empty_collection_rejected(self):
        with pytest.raises(QueryError):
            SeriesRetrievalEngine({})

    def test_tie_break_matches_exhaustive(self):
        flat = {
            f"station_{i}": _make_series(f"s{i}", np.full(32, 10.0))
            for i in range(6)
        }
        engine = SeriesRetrievalEngine(flat, n_levels=4)
        model = ThresholdCountModel("x", 5.0)
        assert engine.progressive_top_k(model, 3) == engine.exhaustive_top_k(
            model, 3
        )

    @given(seed=st.integers(0, 30), k=st.integers(1, 8))
    @settings(max_examples=20, deadline=None)
    def test_random_step_series_invariant(self, seed, k):
        rng = np.random.default_rng(seed)
        collection = {}
        for index in range(8):
            # Step-structured series (runs) of random lengths/levels.
            pieces = [
                np.full(int(rng.integers(3, 20)), float(rng.integers(0, 6)))
                for _ in range(int(rng.integers(2, 8)))
            ]
            collection[f"s{index}"] = _make_series(
                f"s{index}", np.concatenate(pieces)
            )
        engine = SeriesRetrievalEngine(collection, n_levels=6)
        model = ThresholdCountModel("x", 2.5)
        assert engine.progressive_top_k(model, k) == engine.exhaustive_top_k(
            model, k
        )
