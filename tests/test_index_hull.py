"""Tests for convex-hull peeling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import IndexError_
from repro.index.hull import hull_layers, hull_vertices


class TestHullVertices:
    def test_square_hull(self):
        points = np.array(
            [[0, 0], [1, 0], [0, 1], [1, 1], [0.5, 0.5]], dtype=float
        )
        vertices = hull_vertices(points)
        assert set(vertices) == {0, 1, 2, 3}

    def test_single_point(self):
        assert list(hull_vertices(np.array([[3.0, 4.0]]))) == [0]

    def test_empty_input(self):
        assert hull_vertices(np.zeros((0, 2))).size == 0

    def test_two_points(self):
        vertices = hull_vertices(np.array([[0.0, 0.0], [1.0, 1.0]]))
        assert set(vertices) == {0, 1}

    def test_collinear_points_return_extremes(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0], [3.0, 3.0]])
        vertices = hull_vertices(points)
        assert set(vertices) == {0, 3}

    def test_coplanar_in_3d(self):
        """Points on a 2-D plane embedded in 3-D (Qhull would choke)."""
        rng = np.random.default_rng(1)
        uv = rng.random((12, 2))
        points = np.column_stack([uv[:, 0], uv[:, 1], uv[:, 0] + uv[:, 1]])
        vertices = hull_vertices(points)
        assert 3 <= len(vertices) <= 12
        # Every point must be inside the 2-D hull of the projections.
        from scipy.spatial import ConvexHull

        expected = set(ConvexHull(uv).vertices)
        assert set(vertices) == expected

    def test_all_duplicates(self):
        points = np.tile([[2.0, 3.0]], (5, 1))
        assert len(hull_vertices(points)) == 1

    def test_non_2d_array_rejected(self):
        with pytest.raises(IndexError_):
            hull_vertices(np.zeros(5))

    def test_1d_points(self):
        points = np.array([[3.0], [1.0], [7.0], [5.0]])
        vertices = hull_vertices(points)
        assert set(vertices) == {1, 2}

    @given(st.integers(4, 60), st.integers(2, 4), st.integers(0, 10))
    @settings(max_examples=30, deadline=None)
    def test_hull_contains_extreme_points(self, n_points, n_dims, seed):
        """argmax/argmin of every coordinate must be hull vertices."""
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(n_points, n_dims))
        vertices = set(hull_vertices(points))
        for dim in range(n_dims):
            assert int(np.argmax(points[:, dim])) in vertices
            assert int(np.argmin(points[:, dim])) in vertices


class TestHullLayers:
    def test_layers_partition_points(self):
        rng = np.random.default_rng(2)
        points = rng.normal(size=(100, 2))
        layers = hull_layers(points)
        combined = np.concatenate(layers)
        assert sorted(combined) == list(range(100))

    def test_layers_are_nested(self):
        """Each layer's hull must lie inside the previous layer's hull
        (checked via linear scores: layer i's max w.x <= layer i-1's)."""
        rng = np.random.default_rng(3)
        points = rng.normal(size=(200, 3))
        layers = hull_layers(points)
        for _ in range(10):
            weights = rng.normal(size=3)
            maxima = [
                (points[layer] @ weights).max() for layer in layers
            ]
            for outer, inner in zip(maxima, maxima[1:]):
                assert inner <= outer + 1e-9

    def test_max_layers_buckets_interior(self):
        rng = np.random.default_rng(4)
        points = rng.normal(size=(100, 2))
        layers = hull_layers(points, max_layers=3)
        assert len(layers) == 3
        assert sum(layer.size for layer in layers) == 100

    def test_duplicates_terminate(self):
        points = np.array([[0.0, 0.0]] * 10 + [[1.0, 1.0]] * 10)
        layers = hull_layers(points)
        combined = np.concatenate(layers)
        assert sorted(combined) == list(range(20))

    def test_small_inputs(self):
        assert hull_layers(np.zeros((0, 2))) == []
        layers = hull_layers(np.array([[1.0, 2.0]]))
        assert len(layers) == 1
