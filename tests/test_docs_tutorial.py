"""The tutorial's code blocks must actually run.

Documentation that silently rots is worse than none: this test extracts
every ``python`` block from docs/TUTORIAL.md and executes them in order
as one script, in a scratch directory (the tutorial writes an archive
file).
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

TUTORIAL = Path(__file__).parent.parent / "docs" / "TUTORIAL.md"


@pytest.mark.slow
def test_tutorial_blocks_execute(tmp_path, monkeypatch):
    assert TUTORIAL.exists(), "docs/TUTORIAL.md is missing"
    text = TUTORIAL.read_text()
    blocks = re.findall(r"```python\n(.*?)```", text, re.S)
    assert len(blocks) >= 10, "tutorial lost its code blocks"
    script = "\n".join(blocks).replace("/tmp/study_area.npz", str(tmp_path / "a.npz"))
    namespace: dict = {}
    exec(compile(script, str(TUTORIAL), "exec"), namespace)  # noqa: S102
    # A couple of landmarks must exist after the full run.
    assert "engine" in namespace
    assert "network" in namespace
