"""Shared fixtures: small synthetic scenes reused across test modules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.raster import RasterStack
from repro.models.linear import LinearModel, hps_risk_model
from repro.synth.landsat import generate_scene
from repro.synth.terrain import generate_dem


@pytest.fixture(scope="session")
def small_shape() -> tuple[int, int]:
    """Grid shape small enough for exhaustive cross-checks."""
    return (48, 64)


@pytest.fixture(scope="session")
def dem(small_shape):
    """A deterministic fractal DEM."""
    return generate_dem(small_shape, seed=101)


@pytest.fixture(scope="session")
def scene_stack(small_shape, dem) -> RasterStack:
    """TM bands + DEM, the HPS model's input stack."""
    stack = generate_scene(small_shape, seed=202, terrain=dem)
    stack.add(dem)
    return stack


@pytest.fixture(scope="session")
def hps_model() -> LinearModel:
    """The paper's published HPS risk model."""
    return hps_risk_model()


@pytest.fixture()
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)
