"""Shared fixtures: small synthetic scenes reused across test modules.

Besides the fixed scenes, this module hosts the *factory fixtures* the
service/kernel/batch suites share (``make_tie_stack``,
``make_noise_stack``, ``make_random_linear_model``, ``answer_list``):
session-scoped callables replacing the per-module helper copies that
used to live in ``test_service.py``, ``test_service_hardening.py`` and
``test_kernels.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.raster import RasterLayer, RasterStack
from repro.models.linear import LinearModel, hps_risk_model
from repro.synth.landsat import generate_scene
from repro.synth.terrain import generate_dem


@pytest.fixture(scope="session")
def small_shape() -> tuple[int, int]:
    """Grid shape small enough for exhaustive cross-checks."""
    return (48, 64)


@pytest.fixture(scope="session")
def dem(small_shape):
    """A deterministic fractal DEM."""
    return generate_dem(small_shape, seed=101)


@pytest.fixture(scope="session")
def scene_stack(small_shape, dem) -> RasterStack:
    """TM bands + DEM, the HPS model's input stack."""
    stack = generate_scene(small_shape, seed=202, terrain=dem)
    stack.add(dem)
    return stack


@pytest.fixture(scope="session")
def hps_model() -> LinearModel:
    """The paper's published HPS risk model."""
    return hps_risk_model()


@pytest.fixture()
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def make_tie_stack():
    """Factory for stacks with heavy score-tie structure.

    Small-integer layers force score ties at the K boundary, exercising
    the deterministic smallest-``(row, col)`` tie-break across
    strategies, shard counts, and batch membership.
    """

    def _make_tie_stack(
        rows: int, cols: int, n_layers: int, seed: int
    ) -> RasterStack:
        generator = np.random.default_rng(seed)
        stack = RasterStack()
        for index in range(n_layers):
            values = generator.integers(
                0, 3, size=(rows, cols)
            ).astype(float)
            stack.add(RasterLayer(f"layer{index}", values))
        return stack

    return _make_tie_stack


@pytest.fixture(scope="session")
def make_noise_stack():
    """Factory for generic normal-noise stacks (ties unlikely)."""

    def _make_noise_stack(
        rows: int, cols: int, n_layers: int, seed: int
    ) -> RasterStack:
        generator = np.random.default_rng(seed)
        stack = RasterStack()
        for index in range(n_layers):
            stack.add(
                RasterLayer(
                    f"layer{index}", generator.normal(size=(rows, cols))
                )
            )
        return stack

    return _make_noise_stack


@pytest.fixture(scope="session")
def make_random_linear_model():
    """Factory for random small-integer-coefficient linear models."""

    def _make_random_linear_model(
        stack: RasterStack, seed: int = 0
    ) -> LinearModel:
        generator = np.random.default_rng(seed)
        return LinearModel(
            {
                name: float(generator.choice([-2.0, -1.0, 1.0, 2.0]))
                for name in stack.names
            },
            intercept=0.5,
        )

    return _make_random_linear_model


@pytest.fixture(scope="session")
def answer_list():
    """The full answer identity of a result: ordered (row, col, score)
    triples, scores rounded to soak up float formatting noise only."""

    def _answer_list(result):
        return [(a.row, a.col, round(a.score, 9)) for a in result.answers]

    return _answer_list
