"""Tests for repro.metrics.counters."""

from __future__ import annotations

import time

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.counters import CostCounter, counted, merge_counters


class TestCostCounter:
    def test_starts_empty(self):
        counter = CostCounter()
        assert counter.total_work == 0
        assert counter.wall_seconds == 0.0

    def test_add_data_points(self):
        counter = CostCounter()
        counter.add_data_points(7)
        counter.add_data_points(3)
        assert counter.data_points == 10
        assert counter.total_work == 10

    def test_model_evals_accumulate_flops(self):
        counter = CostCounter()
        counter.add_model_evals(5, flops_each=8)
        assert counter.model_evals == 5
        assert counter.flops == 40

    def test_partial_evals_separate_from_full(self):
        counter = CostCounter()
        counter.add_partial_evals(3, flops_each=2)
        assert counter.partial_evals == 3
        assert counter.model_evals == 0
        assert counter.flops == 6

    def test_total_work_excludes_node_visits(self):
        counter = CostCounter()
        counter.add_nodes(100)
        assert counter.total_work == 0

    def test_total_work_sums_scaling_quantities(self):
        counter = CostCounter()
        counter.add_data_points(10)
        counter.add_tuples(5)
        counter.add_model_evals(1, flops_each=3)
        assert counter.total_work == 18

    def test_notes_accumulate(self):
        counter = CostCounter()
        counter.note("sort_ops", 10.0)
        counter.note("sort_ops", 5.0)
        assert counter.notes["sort_ops"] == 15.0

    def test_timed_context_accumulates(self):
        counter = CostCounter()
        with counter.timed():
            time.sleep(0.01)
        with counter.timed():
            time.sleep(0.01)
        assert counter.wall_seconds >= 0.02

    def test_addition_merges_all_fields(self):
        first = CostCounter(data_points=1, flops=2, tuples_examined=3)
        first.note("x", 1.0)
        second = CostCounter(data_points=10, model_evals=4, nodes_visited=5)
        second.note("x", 2.0)
        second.note("y", 7.0)
        merged = first + second
        assert merged.data_points == 11
        assert merged.flops == 2
        assert merged.model_evals == 4
        assert merged.nodes_visited == 5
        assert merged.notes == {"x": 3.0, "y": 7.0}

    def test_addition_with_non_counter_fails(self):
        with pytest.raises(TypeError):
            CostCounter() + 3  # noqa: B018

    def test_as_dict_includes_notes_and_totals(self):
        counter = CostCounter(data_points=4)
        counter.note("extra", 9.0)
        flat = counter.as_dict()
        assert flat["data_points"] == 4
        assert flat["total_work"] == 4
        assert flat["extra"] == 9.0

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 1000), st.integers(0, 50), st.integers(0, 1000)
            ),
            max_size=20,
        )
    )
    def test_merge_equals_sequential_addition(self, parts):
        counters = []
        for data, evals, tuples in parts:
            counter = CostCounter()
            counter.add_data_points(data)
            counter.add_model_evals(evals, flops_each=2)
            counter.add_tuples(tuples)
            counters.append(counter)
        merged = merge_counters(counters)
        assert merged.data_points == sum(p[0] for p in parts)
        assert merged.model_evals == sum(p[1] for p in parts)
        assert merged.flops == 2 * sum(p[1] for p in parts)
        assert merged.tuples_examined == sum(p[2] for p in parts)


class TestCountedHelper:
    def test_passes_through_real_counter(self):
        counter = CostCounter()
        with counted(counter) as active:
            active.add_data_points(3)
        assert counter.data_points == 3

    def test_supplies_throwaway_for_none(self):
        with counted(None) as active:
            active.add_data_points(3)
            assert active.data_points == 3
