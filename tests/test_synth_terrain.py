"""Tests for DEM synthesis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.synth.terrain import generate_dem


class TestGenerateDem:
    def test_shape_and_range(self):
        dem = generate_dem((30, 45), seed=1, min_elevation=100.0, max_elevation=200.0)
        assert dem.shape == (30, 45)
        assert dem.values.min() >= 100.0
        assert dem.values.max() <= 200.0

    def test_deterministic_for_seed(self):
        first = generate_dem((20, 20), seed=5)
        second = generate_dem((20, 20), seed=5)
        assert np.array_equal(first.values, second.values)

    def test_different_seeds_differ(self):
        first = generate_dem((20, 20), seed=5)
        second = generate_dem((20, 20), seed=6)
        assert not np.array_equal(first.values, second.values)

    def test_spatial_autocorrelation(self):
        """Adjacent cells must be much closer than random pairs —
        the property that makes tile envelopes tight."""
        dem = generate_dem((64, 64), seed=2)
        values = dem.values
        adjacent_diff = np.abs(np.diff(values, axis=0)).mean()
        rng = np.random.default_rng(0)
        shuffled = rng.permutation(values.reshape(-1))
        random_diff = np.abs(np.diff(shuffled)).mean()
        assert adjacent_diff < random_diff / 3

    def test_roughness_controls_smoothness(self):
        smooth = generate_dem((64, 64), seed=3, roughness=0.4)
        rough = generate_dem((64, 64), seed=3, roughness=0.8)
        smooth_grad = np.abs(np.diff(smooth.values, axis=0)).mean()
        rough_grad = np.abs(np.diff(rough.values, axis=0)).mean()
        assert smooth_grad < rough_grad

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            generate_dem((10, 10), seed=1, roughness=1.5)
        with pytest.raises(ValueError):
            generate_dem((10, 10), seed=1, min_elevation=5.0, max_elevation=5.0)
        with pytest.raises(ValueError):
            generate_dem((0, 10), seed=1)

    def test_custom_name(self):
        assert generate_dem((8, 8), seed=1, name="dem42").name == "dem42"

    def test_tiny_grid(self):
        dem = generate_dem((1, 1), seed=1)
        assert dem.shape == (1, 1)
