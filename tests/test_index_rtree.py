"""Tests for the R*-tree."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import IndexError_
from repro.index.rtree import RStarTree, Rect
from repro.index.scan import scan_top_k
from repro.metrics.counters import CostCounter
from repro.models.linear import LinearModel
from repro.synth.gaussian import generate_gaussian_table


def _brute_range(matrix, low, high):
    mask = np.all((matrix >= low) & (matrix <= high), axis=1)
    return sorted(int(i) for i in np.where(mask)[0])


class TestRect:
    def test_validation(self):
        with pytest.raises(IndexError_):
            Rect((0.0, 0.0), (1.0,))
        with pytest.raises(IndexError_):
            Rect((1.0,), (0.0,))

    def test_geometry(self):
        rect = Rect((0.0, 0.0), (2.0, 3.0))
        assert rect.area() == 6.0
        assert rect.margin() == 5.0
        assert rect.center() == (1.0, 1.5)

    def test_union_and_enlargement(self):
        first = Rect((0.0, 0.0), (1.0, 1.0))
        second = Rect((2.0, 2.0), (3.0, 3.0))
        union = first.union(second)
        assert union.low == (0.0, 0.0)
        assert union.high == (3.0, 3.0)
        assert first.enlargement(second) == 9.0 - 1.0

    def test_intersection_and_overlap(self):
        first = Rect((0.0, 0.0), (2.0, 2.0))
        second = Rect((1.0, 1.0), (3.0, 3.0))
        third = Rect((5.0, 5.0), (6.0, 6.0))
        assert first.intersects(second)
        assert not first.intersects(third)
        assert first.overlap_area(second) == 1.0
        assert first.overlap_area(third) == 0.0

    def test_touching_boxes_intersect(self):
        first = Rect((0.0, 0.0), (1.0, 1.0))
        second = Rect((1.0, 0.0), (2.0, 1.0))
        assert first.intersects(second)
        assert first.overlap_area(second) == 0.0

    def test_linear_upper_bound(self):
        rect = Rect((-1.0, 2.0), (3.0, 5.0))
        assert rect.linear_upper_bound(np.array([1.0, -1.0])) == 3.0 - 2.0
        assert rect.linear_upper_bound(np.array([-1.0, 1.0])) == 1.0 + 5.0


class TestBuild:
    def test_bulk_and_incremental_agree_on_queries(self):
        table = generate_gaussian_table(300, 2, seed=1)
        bulk = RStarTree.from_table(table, max_entries=8)
        incremental = RStarTree.from_table(table, max_entries=8, bulk=False)
        assert len(bulk) == len(incremental) == 300
        query = Rect((-0.5, -0.5), (0.5, 0.5))
        assert bulk.range_query(query) == incremental.range_query(query)

    def test_parameter_validation(self):
        with pytest.raises(IndexError_):
            RStarTree(n_dims=0)
        with pytest.raises(IndexError_):
            RStarTree(n_dims=2, max_entries=2)

    def test_insert_dimension_checked(self):
        tree = RStarTree(n_dims=2)
        with pytest.raises(IndexError_):
            tree.insert((1.0, 2.0, 3.0), 0)

    def test_height_grows_with_size(self):
        table = generate_gaussian_table(2000, 2, seed=2)
        tree = RStarTree.from_table(table, max_entries=8)
        assert tree.height >= 3


class TestRangeQuery:
    @given(st.integers(10, 300), st.integers(0, 5), st.data())
    @settings(max_examples=25, deadline=None)
    def test_matches_brute_force(self, n_points, seed, data):
        table = generate_gaussian_table(n_points, 2, seed=seed)
        tree = RStarTree.from_table(table, max_entries=8)
        matrix = table.matrix()
        low = tuple(data.draw(st.floats(-2, 1)) for _ in range(2))
        high = tuple(l + data.draw(st.floats(0, 3)) for l in low)
        result = tree.range_query(Rect(low, high))
        assert result == _brute_range(matrix, low, high)

    def test_incremental_tree_matches_brute_force(self):
        table = generate_gaussian_table(400, 3, seed=7)
        tree = RStarTree.from_table(table, max_entries=8, bulk=False)
        matrix = table.matrix()
        low, high = (-0.8, -0.8, -0.8), (0.8, 0.8, 0.8)
        assert tree.range_query(Rect(low, high)) == _brute_range(
            matrix, low, high
        )

    def test_dimension_mismatch(self):
        tree = RStarTree(n_dims=3)
        with pytest.raises(IndexError_):
            tree.range_query(Rect((0.0,), (1.0,)))

    def test_counter_tallies_nodes_and_tuples(self):
        table = generate_gaussian_table(500, 2, seed=3)
        tree = RStarTree.from_table(table)
        counter = CostCounter()
        tree.range_query(Rect((-0.3, -0.3), (0.3, 0.3)), counter)
        assert counter.nodes_visited > 0
        assert counter.tuples_examined > 0


class TestTopKLinear:
    @given(
        st.integers(1, 20),
        st.tuples(st.floats(-2, 2), st.floats(-2, 2)),
        st.booleans(),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_scan(self, k, raw_weights, maximize):
        if all(abs(w) < 1e-6 for w in raw_weights):
            raw_weights = (1.0, 0.0)
        table = generate_gaussian_table(300, 2, seed=11)
        tree = RStarTree.from_table(table, max_entries=8)
        weights = dict(zip(("x1", "x2"), raw_weights))
        expected = scan_top_k(table, LinearModel(weights), k, maximize=maximize)
        actual = tree.top_k_linear(
            np.array(raw_weights), k, maximize=maximize
        )
        assert sorted(round(s, 9) for _, s in actual) == sorted(
            round(s, 9) for _, s in expected
        )

    def test_prunes_against_scan(self):
        table = generate_gaussian_table(5000, 3, seed=4)
        tree = RStarTree.from_table(table, max_entries=16)
        counter = CostCounter()
        tree.top_k_linear(np.array([0.5, 0.3, 0.2]), 5, counter=counter)
        assert counter.tuples_examined < len(table) / 4

    def test_empty_tree(self):
        tree = RStarTree(n_dims=2)
        assert tree.top_k_linear(np.array([1.0, 0.0]), 3) == []

    def test_parameter_validation(self):
        tree = RStarTree(n_dims=2)
        with pytest.raises(IndexError_):
            tree.top_k_linear(np.array([1.0, 0.0]), 0)
        with pytest.raises(IndexError_):
            tree.top_k_linear(np.array([1.0]), 1)


class TestForcedReinsertion:
    def test_clustered_incremental_inserts_stay_consistent(self):
        """Heavily clustered insertion exercises the forced-reinsert and
        split paths; the tree must stay exact for range queries."""
        rng = np.random.default_rng(31)
        tree = RStarTree(n_dims=2, max_entries=6)
        points = []
        for cluster in range(6):
            center = rng.uniform(-10, 10, 2)
            for _ in range(40):
                point = center + rng.normal(0, 0.1, 2)
                tree.insert((float(point[0]), float(point[1])), len(points))
                points.append(point)
        matrix = np.array(points)
        assert len(tree) == 240
        for _ in range(10):
            low = rng.uniform(-11, 9, 2)
            high = low + rng.uniform(0.5, 5.0, 2)
            result = tree.range_query(Rect(tuple(low), tuple(high)))
            assert result == _brute_range(matrix, low, high)

    def test_duplicate_points_insertable(self):
        tree = RStarTree(n_dims=2, max_entries=4)
        for row in range(30):
            tree.insert((1.0, 1.0), row)
        assert len(tree) == 30
        found = tree.range_query(Rect((1.0, 1.0), (1.0, 1.0)))
        assert found == list(range(30))

    def test_heights_consistent_after_inserts(self):
        rng = np.random.default_rng(32)
        tree = RStarTree(n_dims=3, max_entries=5)
        for row in range(300):
            tree.insert(tuple(rng.normal(size=3)), row)

        def check(node, expected_leaf_height=1):
            if node.leaf:
                assert node.height == 1
                return 1
            child_heights = {check(entry.child) for entry in node.entries}
            assert len(child_heights) == 1, "unbalanced subtree heights"
            height = child_heights.pop() + 1
            assert node.height == height
            return height

        check(tree._root)
