"""Tests for ROC analysis."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.roc import auc_score, roc_curve


class TestRocCurve:
    def test_perfect_ranking_auc_one(self):
        risk = np.array([0.9, 0.8, 0.2, 0.1])
        occurrences = np.array([1, 1, 0, 0])
        assert auc_score(risk, occurrences) == 1.0

    def test_inverted_ranking_auc_zero(self):
        risk = np.array([0.1, 0.2, 0.8, 0.9])
        occurrences = np.array([1, 1, 0, 0])
        assert auc_score(risk, occurrences) == 0.0

    def test_random_ranking_near_half(self):
        rng = np.random.default_rng(1)
        risk = rng.random(5000)
        occurrences = rng.integers(0, 2, 5000)
        assert auc_score(risk, occurrences) == pytest.approx(0.5, abs=0.03)

    def test_curve_endpoints(self):
        rng = np.random.default_rng(2)
        risk = rng.random(100)
        occurrences = (risk > 0.6).astype(int)
        curve = roc_curve(risk, occurrences)
        assert curve.false_positive_rates[0] == 0.0
        assert curve.true_positive_rates[0] == 0.0
        assert curve.false_positive_rates[-1] == 1.0
        assert curve.true_positive_rates[-1] == 1.0

    def test_curve_monotone(self):
        rng = np.random.default_rng(3)
        risk = rng.random(200)
        occurrences = rng.integers(0, 2, 200)
        curve = roc_curve(risk, occurrences)
        assert np.all(np.diff(curve.false_positive_rates) >= 0)
        assert np.all(np.diff(curve.true_positive_rates) >= 0)

    def test_tied_scores_collapse(self):
        risk = np.array([0.5, 0.5, 0.5, 0.5])
        occurrences = np.array([1, 0, 1, 0])
        curve = roc_curve(risk, occurrences)
        # One distinct score -> origin + one point + end only.
        assert len(curve.thresholds) == 2
        assert auc_score(risk, occurrences) == pytest.approx(0.5)

    def test_auc_is_concordance_probability(self):
        """AUC equals P(score_pos > score_neg) for distinct scores."""
        rng = np.random.default_rng(4)
        risk = rng.permutation(np.linspace(0, 1, 200))
        occurrences = rng.integers(0, 2, 200)
        if not occurrences.any() or occurrences.all():
            occurrences[0], occurrences[1] = 0, 1
        positives = risk[occurrences > 0]
        negatives = risk[occurrences == 0]
        concordance = np.mean(
            positives[:, None] > negatives[None, :]
        )
        assert auc_score(risk, occurrences) == pytest.approx(
            float(concordance), abs=1e-9
        )

    def test_operating_point(self):
        risk = np.array([0.9, 0.7, 0.4, 0.1])
        occurrences = np.array([1, 0, 1, 0])
        curve = roc_curve(risk, occurrences)
        fpr, tpr = curve.operating_point(0.5)
        assert tpr == pytest.approx(0.5)
        assert fpr == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            roc_curve(np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError):
            roc_curve(np.zeros(3), np.zeros(3))  # no positives

    @given(st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_auc_bounded(self, seed):
        rng = np.random.default_rng(seed)
        risk = rng.random(100)
        occurrences = rng.integers(0, 2, 100)
        if not occurrences.any():
            occurrences[0] = 1
        if occurrences.all():
            occurrences[0] = 0
        assert 0.0 <= auc_score(risk, occurrences) <= 1.0
