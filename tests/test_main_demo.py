"""Tests for the ``python -m repro`` demo entry point."""

from __future__ import annotations

import subprocess
import sys

import pytest


@pytest.mark.slow
def test_fsm_demo_runs():
    completed = subprocess.run(
        [sys.executable, "-m", "repro", "fsm"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stderr
    assert "fire ants" in completed.stdout.lower()


@pytest.mark.slow
def test_onion_demo_runs():
    completed = subprocess.run(
        [sys.executable, "-m", "repro", "onion"],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, completed.stderr
    assert "tuples examined" in completed.stdout


def test_unknown_demo_rejected():
    completed = subprocess.run(
        [sys.executable, "-m", "repro", "quantum"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert completed.returncode != 0
