"""Tests for the Haar wavelet transform."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pyramid.wavelet import (
    approximation_as_means,
    haar_decompose_1d,
    haar_decompose_2d,
    haar_reconstruct_1d,
    haar_reconstruct_2d,
)


@st.composite
def _pow2_signal(draw):
    exponent = draw(st.integers(1, 6))
    size = 2**exponent
    values = draw(
        st.lists(
            st.floats(-1e6, 1e6, allow_nan=False), min_size=size, max_size=size
        )
    )
    levels = draw(st.integers(0, exponent))
    return np.array(values), levels


class TestHaar1D:
    @given(_pow2_signal())
    @settings(max_examples=50)
    def test_perfect_reconstruction(self, signal_levels):
        signal, levels = signal_levels
        approx, details = haar_decompose_1d(signal, levels)
        reconstructed = haar_reconstruct_1d(approx, details)
        assert np.allclose(reconstructed, signal, atol=1e-6 * max(1, np.abs(signal).max()))

    @given(_pow2_signal())
    @settings(max_examples=50)
    def test_energy_preserved(self, signal_levels):
        """Orthonormality: sum of squares is invariant."""
        signal, levels = signal_levels
        approx, details = haar_decompose_1d(signal, levels)
        energy = float(np.sum(approx**2)) + sum(
            float(np.sum(d**2)) for d in details
        )
        assert energy == pytest.approx(float(np.sum(signal**2)), rel=1e-9, abs=1e-6)

    def test_band_sizes_halve(self):
        signal = np.arange(16.0)
        approx, details = haar_decompose_1d(signal, 3)
        assert [d.size for d in details] == [8, 4, 2]
        assert approx.size == 2

    def test_zero_levels_is_identity(self):
        signal = np.arange(8.0)
        approx, details = haar_decompose_1d(signal, 0)
        assert details == []
        assert np.array_equal(approx, signal)

    def test_constant_signal_has_zero_details(self):
        approx, details = haar_decompose_1d(np.full(8, 3.0), 3)
        for detail in details:
            assert np.allclose(detail, 0.0)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            haar_decompose_1d(np.zeros(6), 1)

    def test_too_many_levels_rejected(self):
        with pytest.raises(ValueError):
            haar_decompose_1d(np.zeros(4), 3)

    def test_mismatched_reconstruction_rejected(self):
        with pytest.raises(ValueError):
            haar_reconstruct_1d(np.zeros(2), [np.zeros(3)])


class TestHaar2D:
    def test_perfect_reconstruction(self):
        rng = np.random.default_rng(1)
        image = rng.normal(size=(32, 16))
        approx, details = haar_decompose_2d(image, 3)
        assert np.allclose(haar_reconstruct_2d(approx, details), image)

    def test_band_structure(self):
        image = np.zeros((16, 16))
        approx, details = haar_decompose_2d(image, 2)
        assert approx.shape == (4, 4)
        assert set(details[0]) == {"horizontal", "vertical", "diagonal"}
        assert details[0]["diagonal"].shape == (8, 8)

    def test_energy_preserved(self):
        rng = np.random.default_rng(2)
        image = rng.normal(size=(16, 16))
        approx, details = haar_decompose_2d(image, 4)
        energy = float(np.sum(approx**2))
        for bands in details:
            energy += sum(float(np.sum(band**2)) for band in bands.values())
        assert energy == pytest.approx(float(np.sum(image**2)))

    def test_approximation_as_means(self):
        image = np.arange(16.0).reshape(4, 4)
        approx, _ = haar_decompose_2d(image, 2)
        means = approximation_as_means(approx, 2)
        assert means.shape == (1, 1)
        assert means[0, 0] == pytest.approx(image.mean())

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            haar_decompose_2d(np.zeros(8), 1)

    def test_level_bounds(self):
        with pytest.raises(ValueError):
            haar_decompose_2d(np.zeros((4, 4)), 3)
