"""Tests for archive persistence."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.archive import Archive
from repro.data.catalog import CatalogEntry, Modality
from repro.data.io import load_archive, save_archive
from repro.data.raster import RasterLayer
from repro.data.series import DepthSeries, TimeSeries
from repro.data.table import Table
from repro.exceptions import ArchiveError


@pytest.fixture()
def archive() -> Archive:
    built = Archive("roundtrip")
    rng = np.random.default_rng(61)
    built.add(
        RasterLayer("band", rng.random((12, 17))),
        CatalogEntry(
            "band", Modality.IMAGERY,
            description="synthetic band",
            tags={"sensor": "tm", "season": "wet"},
            units="DN",
        ),
    )
    built.add(
        TimeSeries(
            "station",
            np.arange(30.0),
            {"rain_mm": rng.random(30), "temperature_c": rng.random(30) * 30},
        )
    )
    built.add(
        DepthSeries(
            "well",
            np.arange(0.0, 10.0, 0.5),
            {"gamma_ray": rng.random(20) * 100, "lithology": np.zeros(20)},
        )
    )
    built.add(Table("tuples", {"x": rng.random(7), "y": rng.random(7)}))
    return built


class TestRoundTrip:
    def test_values_survive(self, archive, tmp_path):
        path = tmp_path / "archive.npz"
        save_archive(archive, path)
        loaded = load_archive(path)

        assert loaded.name == "roundtrip"
        assert loaded.names() == archive.names()
        assert np.array_equal(
            loaded.raster("band").values, archive.raster("band").values
        )
        assert np.array_equal(
            loaded.series("station").values("rain_mm"),
            archive.series("station").values("rain_mm"),
        )
        assert np.array_equal(
            loaded.depth_series("well").axis,
            archive.depth_series("well").axis,
        )
        assert np.array_equal(
            loaded.table("tuples").column("y"),
            archive.table("tuples").column("y"),
        )

    def test_catalog_survives(self, archive, tmp_path):
        path = tmp_path / "archive.npz"
        save_archive(archive, path)
        loaded = load_archive(path)
        entry = loaded.entry("band")
        assert entry.modality is Modality.IMAGERY
        assert entry.tags == {"sensor": "tm", "season": "wet"}
        assert entry.units == "DN"
        assert loaded.entry("well").modality is Modality.WELL_LOG

    def test_types_survive(self, archive, tmp_path):
        path = tmp_path / "archive.npz"
        save_archive(archive, path)
        loaded = load_archive(path)
        assert isinstance(loaded.series("station"), TimeSeries)
        assert isinstance(loaded.depth_series("well"), DepthSeries)
        with pytest.raises(ArchiveError):
            loaded.series("well")  # depth series is not a time series

    def test_loaded_archive_is_queryable(self, archive, tmp_path):
        """The round trip must produce a fully functional archive."""
        from repro.core.engine import RasterRetrievalEngine
        from repro.core.query import TopKQuery
        from repro.models.linear import LinearModel

        path = tmp_path / "archive.npz"
        save_archive(archive, path)
        loaded = load_archive(path)
        stack = loaded.stack(["band"])
        engine = RasterRetrievalEngine(stack, leaf_size=4)
        query = TopKQuery(model=LinearModel({"band": 1.0}), k=3)
        result = engine.progressive_top_k(query)
        baseline = engine.exhaustive_top_k(query)
        assert sorted(round(s, 9) for s in result.scores) == sorted(
            round(s, 9) for s in baseline.scores
        )

    def test_missing_file(self, tmp_path):
        with pytest.raises(ArchiveError):
            load_archive(tmp_path / "nope.npz")

    def test_non_archive_npz_rejected(self, tmp_path):
        path = tmp_path / "random.npz"
        np.savez(path, x=np.zeros(3))
        with pytest.raises(ArchiveError):
            load_archive(path)

    def test_empty_archive_round_trips(self, tmp_path):
        path = tmp_path / "empty.npz"
        save_archive(Archive("empty"), path)
        loaded = load_archive(path)
        assert len(loaded) == 0
        assert loaded.name == "empty"


class TestRoundTripProperty:
    @given(seed=st.integers(0, 50), rows=st.integers(1, 12), cols=st.integers(1, 12))
    @settings(max_examples=20, deadline=None)
    def test_arbitrary_rasters_round_trip(self, tmp_path_factory, seed, rows, cols):
        rng = np.random.default_rng(seed)
        archive = Archive("prop")
        archive.add(RasterLayer("layer", rng.normal(size=(rows, cols))))
        path = tmp_path_factory.mktemp("io") / "a.npz"
        save_archive(archive, path)
        loaded = load_archive(path)
        assert np.array_equal(
            loaded.raster("layer").values, archive.raster("layer").values
        )


class TestFailureInjection:
    def test_truncated_file_fails_loudly(self, archive, tmp_path):
        path = tmp_path / "archive.npz"
        save_archive(archive, path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 3])
        with pytest.raises(Exception):  # zipfile/numpy error, never silence
            load_archive(path)

    def test_version_mismatch_rejected(self, tmp_path):
        import json

        header = {"format_version": 99, "archive_name": "future", "items": []}
        manifest = np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        )
        path = tmp_path / "future.npz"
        np.savez(path, __manifest__=manifest)
        with pytest.raises(ArchiveError):
            load_archive(path)

    def test_unknown_item_kind_rejected(self, tmp_path):
        import json

        header = {
            "format_version": 1,
            "archive_name": "odd",
            "items": [
                {
                    "name": "x",
                    "kind": "hologram",
                    "modality": "imagery",
                    "description": "",
                    "tags": {},
                    "units": "",
                }
            ],
        }
        manifest = np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        )
        path = tmp_path / "odd.npz"
        np.savez(path, __manifest__=manifest)
        with pytest.raises(ArchiveError):
            load_archive(path)


class TestSuffixNormalization:
    def test_suffixless_path_round_trips(self, archive, tmp_path):
        # numpy appends .npz when saving; loading through the same
        # suffix-less path must find the file it actually wrote.
        save_archive(archive, tmp_path / "snapshot")
        assert (tmp_path / "snapshot.npz").exists()
        loaded = load_archive(tmp_path / "snapshot")
        assert loaded.names() == archive.names()

    def test_exact_path_still_wins(self, archive, tmp_path):
        save_archive(archive, tmp_path / "snapshot.npz")
        loaded = load_archive(tmp_path / "snapshot.npz")
        assert loaded.names() == archive.names()

    def test_foreign_suffix_normalized_on_both_ends(self, archive, tmp_path):
        save_archive(archive, tmp_path / "snapshot.dat")
        assert (tmp_path / "snapshot.dat.npz").exists()
        loaded = load_archive(tmp_path / "snapshot.dat")
        assert loaded.names() == archive.names()


class TestSlashRejection:
    def test_series_attribute_with_slash_rejected(self, tmp_path):
        built = Archive("bad")
        built.add(
            TimeSeries(
                "station", np.arange(2.0), {"rain/mm": np.zeros(2)}
            )
        )
        with pytest.raises(ArchiveError, match="must not contain '/'"):
            save_archive(built, tmp_path / "bad.npz")

    def test_table_column_with_slash_rejected(self, tmp_path):
        built = Archive("bad")
        built.add(Table("tuples", {"x/y": np.zeros(2)}))
        with pytest.raises(ArchiveError, match="must not contain '/'"):
            save_archive(built, tmp_path / "bad.npz")
