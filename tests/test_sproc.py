"""Tests for fuzzy Cartesian query evaluation (SPROC)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import QueryError
from repro.metrics.counters import CostCounter
from repro.sproc.dp import sproc_top_k
from repro.sproc.fast import fast_top_k
from repro.sproc.naive import naive_top_k
from repro.sproc.query import CompositeQuery


def _random_query(rng, n_components, n_objects, combiner="product"):
    scores = rng.random((n_components, n_objects))
    matrices = [
        rng.random((n_objects, n_objects)) for _ in range(n_components - 1)
    ]
    return CompositeQuery(
        [f"c{i}" for i in range(n_components)],
        scores,
        matrices if matrices else None,
        combiner=combiner,
    )


class TestCompositeQuery:
    def test_score_combines_unary_and_pairwise(self):
        scores = np.array([[0.5, 1.0], [1.0, 0.8]])
        compat = [np.array([[0.0, 1.0], [1.0, 0.0]])]
        query = CompositeQuery(["a", "b"], scores, compat)
        assert query.score((0, 1)) == pytest.approx(0.5 * 0.8 * 1.0)
        assert query.score((0, 0)) == 0.0

    def test_min_combiner(self):
        scores = np.array([[0.5, 1.0], [1.0, 0.8]])
        query = CompositeQuery(["a", "b"], scores, combiner="min")
        assert query.score((0, 1)) == 0.5

    def test_default_compatibility_is_one(self):
        query = CompositeQuery(["a", "b"], np.ones((2, 3)))
        assert query.compatibility(0, 0, 2) == 1.0

    def test_validation(self):
        with pytest.raises(QueryError):
            CompositeQuery(["a"], np.ones((2, 3)))  # name count mismatch
        with pytest.raises(QueryError):
            CompositeQuery(["a"], np.full((1, 3), 1.5))  # out of [0,1]
        with pytest.raises(QueryError):
            CompositeQuery(["a", "b"], np.ones((2, 3)), [np.ones((2, 2))])
        with pytest.raises(QueryError):
            CompositeQuery(["a"], np.ones((1, 3)), combiner="sum")

    def test_compat_matrix_range_checked(self):
        with pytest.raises(QueryError):
            CompositeQuery(
                ["a", "b"], np.ones((2, 2)), [np.full((2, 2), 2.0)]
            )

    def test_assignment_length_checked(self):
        query = CompositeQuery(["a", "b"], np.ones((2, 3)))
        with pytest.raises(QueryError):
            query.score((0,))

    def test_stage_bounds_checked(self):
        query = CompositeQuery(["a", "b"], np.ones((2, 3)))
        with pytest.raises(QueryError):
            query.compatibility(1, 0, 0)

    def test_successors_default_to_all(self):
        query = CompositeQuery(["a", "b"], np.ones((2, 3)))
        assert query.successors_of(0, 1) == [0, 1, 2]


class TestEvaluatorAgreement:
    @given(
        n_components=st.integers(1, 3),
        n_objects=st.integers(1, 7),
        k=st.integers(1, 10),
        seed=st.integers(0, 20),
        combiner=st.sampled_from(["product", "min"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_three_evaluators_return_identical_scores(
        self, n_components, n_objects, k, seed, combiner
    ):
        rng = np.random.default_rng(seed)
        query = _random_query(rng, n_components, n_objects, combiner)
        naive = naive_top_k(query, k)
        dp = sproc_top_k(query, k)
        fast = fast_top_k(query, k)
        naive_scores = [round(score, 10) for _, score in naive]
        assert naive_scores == [round(score, 10) for _, score in dp]
        assert naive_scores == [round(score, 10) for _, score in fast]
        # Returned assignments must actually achieve their scores.
        for evaluated in (dp, fast):
            for assignment, score in evaluated:
                assert query.score(assignment) == pytest.approx(score)
        # Under the product combiner with continuous random factors,
        # distinct assignments score distinct values (almost surely), so
        # the returned assignment lists are forced and must agree. The
        # min combiner routinely produces exact ties (many assignments
        # share the binding factor), where equal-scored assignments may
        # legitimately resolve differently across evaluators.
        if combiner == "product" and len(set(naive_scores)) == len(
            naive_scores
        ):
            assert [a for a, _ in naive] == [a for a, _ in dp]
            assert [a for a, _ in naive] == [a for a, _ in fast]

    def test_known_small_case(self):
        scores = np.array([[0.9, 0.1], [0.2, 0.8]])
        query = CompositeQuery(["a", "b"], scores)
        best = naive_top_k(query, 1)[0]
        assert best[0] == (0, 1)
        assert best[1] == pytest.approx(0.72)

    def test_k_validation(self):
        query = CompositeQuery(["a"], np.ones((1, 2)))
        for evaluate in (naive_top_k, sproc_top_k, fast_top_k):
            with pytest.raises(QueryError):
                evaluate(query, 0)


class TestWorkOrdering:
    def test_counted_work_ordering(self):
        """naive > dp > fast on a chain-structured query."""
        rng = np.random.default_rng(1)
        n_objects = 12
        scores = rng.random((3, n_objects))
        successors = [
            [[obj + 1] if obj + 1 < n_objects else [] for obj in range(n_objects)]
            for _ in range(2)
        ]

        def chain(stage, prev_obj, next_obj):
            return 1.0 if next_obj == prev_obj + 1 else 0.0

        query = CompositeQuery(
            ["a", "b", "c"], scores, chain, successors=successors
        )
        counters = {
            "naive": CostCounter(),
            "dp": CostCounter(),
            "fast": CostCounter(),
        }
        naive_top_k(query, 3, counters["naive"])
        sproc_top_k(query, 3, counters["dp"])
        fast_top_k(query, 3, counters["fast"])
        assert (
            counters["naive"].tuples_examined
            > counters["dp"].tuples_examined
            > counters["fast"].tuples_examined
        )

    def test_dp_complexity_scales_as_mkl2(self):
        """DP tuple counts must track the O(M*K*L^2) formula."""
        rng = np.random.default_rng(2)
        small = _random_query(rng, 3, 8)
        large = _random_query(rng, 3, 16)
        counter_small, counter_large = CostCounter(), CostCounter()
        sproc_top_k(small, 2, counter_small)
        sproc_top_k(large, 2, counter_large)
        ratio = counter_large.tuples_examined / counter_small.tuples_examined
        assert 3.0 < ratio < 5.0  # L doubled -> ~4x

    def test_naive_complexity_is_exponential_in_m(self):
        rng = np.random.default_rng(3)
        two = _random_query(rng, 2, 6)
        three = _random_query(rng, 3, 6)
        counter_two, counter_three = CostCounter(), CostCounter()
        naive_top_k(two, 1, counter_two)
        naive_top_k(three, 1, counter_three)
        assert counter_three.tuples_examined == 6 * counter_two.tuples_examined
