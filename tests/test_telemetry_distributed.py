"""Cross-process trace shipping: budgets, re-parenting, tail sampling.

Pure-dict tests (no processes): the wire format is plain ``as_dict``
output, so everything here drives the real serving code paths with
hand-built or real in-process traces.
"""

from __future__ import annotations

import threading
import time

from repro.service.tracing import BatchTrace, QueryTrace
from repro.telemetry.distributed import (
    DEFAULT_MAX_SHIP_SPANS,
    FleetTraceCollector,
    TailSampler,
    count_spans,
    reparent_shipped,
    ship_trace,
)
from repro.telemetry.export import TraceBuffer, chrome_trace_events


def _finished_trace(n_spans: int = 3, n_shards: int = 2) -> QueryTrace:
    trace = QueryTrace()
    for i in range(n_spans):
        trace.record_span(f"stage{i}", 0.001)
    for shard in range(n_shards):
        trace.add_shard(shard=shard, tuples=10)
    trace.finish()
    return trace


class TestShipTrace:
    def test_whole_tree_survives_under_budget(self):
        trace = _finished_trace()
        shipped = ship_trace(trace)
        assert shipped["trace_id"] == trace.trace_id
        assert shipped["pid"] == trace.pid
        assert len(shipped["spans"]) == 3
        assert len(shipped["shards"]) == 2
        assert "spans_dropped" not in shipped
        assert count_spans(shipped) == count_spans(trace.as_dict())

    def test_truncation_counts_drops(self):
        trace = _finished_trace(n_spans=6, n_shards=4)
        shipped = ship_trace(trace, max_spans=5)
        assert count_spans(shipped) == 5
        assert shipped["spans_dropped"] == 5
        # Root stage spans are the most valuable and are kept first.
        assert len(shipped["spans"]) == 5
        assert shipped["shards"] == []

    def test_oversized_batch_tree_is_bounded(self):
        """No reply payload exceeds the span budget no matter how many
        batch children pile up — the skeleton survives, spans are cut."""
        batch = BatchTrace(batch_size=40)
        for _ in range(40):
            child = batch.child()
            for i in range(10):
                child.record_span(f"s{i}", 0.0001)
            child.finish()
        batch.finish()
        full = count_spans(batch.as_dict())
        assert full == 400
        shipped = ship_trace(batch, max_spans=64)
        assert count_spans(shipped) <= 64
        assert shipped["spans_dropped"] == full - count_spans(shipped)
        # Every child's root record survives truncation (outcome flags
        # stay visible even when its spans were cut).
        assert len(shipped["children"]) == 40
        assert all("complete" in child for child in shipped["children"])

    def test_zero_budget_keeps_skeleton_only(self):
        trace = _finished_trace()
        shipped = ship_trace(trace, max_spans=0)
        assert shipped["spans"] == []
        assert shipped["shards"] == []
        assert shipped["spans_dropped"] == 5

    def test_default_budget_sane(self):
        assert DEFAULT_MAX_SHIP_SPANS >= 128

    def test_accepts_dict_input(self):
        data = _finished_trace().as_dict()
        assert ship_trace(data)["trace_id"] == data["trace_id"]


class TestReparent:
    def test_ids_shift_and_root_reattaches(self):
        shipped = ship_trace(_finished_trace())
        grafted = reparent_shipped(shipped, parent_span_id=7, offset=1000)
        assert grafted["span_id"] == shipped["span_id"] + 1000
        assert grafted["parent_span_id"] == 7
        for before, after in zip(shipped["spans"], grafted["spans"]):
            assert after["span_id"] == before["span_id"] + 1000
            assert after["parent_id"] == before["parent_id"] + 1000
        # Input not mutated.
        assert shipped["parent_span_id"] != 7

    def test_parent_links_stay_closed(self):
        """Every non-root parent link in a grafted batch tree resolves
        to a span id inside the merged tree — the invariant the Chrome
        export lint checks."""
        batch = BatchTrace(batch_size=3)
        for _ in range(3):
            child = batch.child()
            child.record_span("search", 0.001)
            child.add_shard(shard=0)
            child.finish()
        batch.finish()
        grafted = reparent_shipped(
            ship_trace(batch), parent_span_id=1, offset=1_000_000
        )

        ids = set()

        def collect(node):
            ids.add(node["span_id"])
            for span in node.get("spans", ()):
                ids.add(span["span_id"])
            for shard in node.get("shards", ()):
                ids.add(shard["span_id"])
            for sub in node.get("children", ()):
                collect(sub)

        collect(grafted)
        ids.add(1)  # the front-end anchor span

        def check(node):
            assert node["parent_span_id"] in ids
            for span in node.get("spans", ()):
                assert span["parent_id"] in ids
            for shard in node.get("shards", ()):
                assert shard["parent_id"] in ids
            for sub in node.get("children", ()):
                check(sub)

        check(grafted)


class TestTailSampler:
    def test_error_traces_always_kept(self):
        sampler = TailSampler(sample_rate=0.0, slow_fraction=0.0, seed=1)
        assert sampler.keep({"complete": False, "wall_seconds": 0.001})
        assert sampler.keep(
            {"complete": True, "cancel_reason": "deadline",
             "wall_seconds": 0.0}
        )
        assert sampler.keep(
            {"complete": True, "metadata": {"error": "boom"},
             "wall_seconds": 0.0}
        )
        assert sampler.keep(
            {"complete": True, "metadata": {"shed": "queue"},
             "wall_seconds": 0.0}
        )
        assert sampler.keep(
            {"complete": True, "metadata": {"status": 429},
             "wall_seconds": 0.0}
        )

    def test_fast_ok_traces_sampled_out_at_zero_rate(self):
        sampler = TailSampler(sample_rate=0.0, slow_fraction=0.0, seed=1)
        trace = {"complete": True, "metadata": {"status": 200},
                 "wall_seconds": 0.001}
        assert not sampler.keep(trace)
        assert sampler.stats()["sampled_out"] == 1

    def test_slowest_fraction_kept(self):
        sampler = TailSampler(sample_rate=0.0, slow_fraction=0.1, seed=1)
        ok = {"complete": True, "metadata": {"status": 200}}
        # Seed the duration window with fast traffic.
        for _ in range(100):
            sampler.keep({**ok, "wall_seconds": 0.001})
        assert sampler.keep({**ok, "wall_seconds": 5.0})

    def test_default_keeps_everything(self):
        sampler = TailSampler()
        for i in range(20):
            assert sampler.keep(
                {"complete": True, "wall_seconds": i * 0.001}
            )
        assert sampler.stats()["sampled_out"] == 0


class TestFleetTraceCollector:
    def _frontend_trace(self) -> dict:
        trace = QueryTrace()
        trace.record_span("admit", 0.0001)
        trace.record_span("queue_wait", 0.0002)
        trace.finish()
        return trace.as_dict()

    def test_merge_produces_connected_multi_pid_tree(self):
        frontend = self._frontend_trace()
        worker = _finished_trace().as_dict()
        worker["pid"] = 99999  # pretend it came from another process
        collector = FleetTraceCollector()
        merged = collector.merge(frontend, [ship_trace(worker)])
        child = merged["children"][0]
        assert child["parent_span_id"] == merged["span_id"]
        assert child["span_id"] == worker["span_id"] + 1_000_000
        events = chrome_trace_events([merged])
        pids = {event["pid"] for event in events}
        assert len(pids) == 2

    def test_record_request_buffers_kept_traces(self):
        collector = FleetTraceCollector(capacity=4)
        assert collector.record_request(self._frontend_trace(), None)
        assert len(collector.recent()) == 1
        stats = collector.stats()
        assert stats["kept"] == 1
        assert stats["buffered"] == 1

    def test_sampled_out_traces_not_buffered(self):
        collector = FleetTraceCollector(
            sampler=TailSampler(sample_rate=0.0, slow_fraction=0.0, seed=1)
        )
        kept = collector.record_request(self._frontend_trace(), None)
        assert not kept
        assert collector.recent() == []


class TestTraceBufferHammer:
    def test_concurrent_producers_and_readers(self):
        """PR-10 satellite: hammer one TraceBuffer from many producer
        threads while a reader snapshots — no lost updates beyond the
        drop-oldest policy, no exceptions, bounded memory."""
        buffer = TraceBuffer(capacity=128)
        n_threads, per_thread = 8, 300
        stop = threading.Event()
        snapshots: list[int] = []

        def produce(k: int) -> None:
            for i in range(per_thread):
                buffer.record(
                    {"trace_id": f"{k}-{i}", "wall_seconds": 0.0}
                )

        def read() -> None:
            while not stop.is_set():
                snapshot = buffer.snapshot()
                assert len(snapshot) <= 128
                snapshots.append(len(snapshot))
                time.sleep(0.0005)

        reader = threading.Thread(target=read)
        producers = [
            threading.Thread(target=produce, args=(k,))
            for k in range(n_threads)
        ]
        reader.start()
        for thread in producers:
            thread.start()
        for thread in producers:
            thread.join()
        stop.set()
        reader.join()
        assert len(buffer) == 128
        assert buffer.dropped == n_threads * per_thread - 128
        assert snapshots  # the reader actually observed the buffer
        # Ring holds the newest traces (drop-oldest).
        newest = buffer.snapshot()[-1]["trace_id"]
        assert int(newest.split("-")[1]) >= per_thread - 128
