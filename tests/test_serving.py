"""Serving-fleet suite: protocol, shared memory, fleet, HTTP front end.

The headline contract is *bit-identity*: every answer a worker process
returns over HTTP equals the in-process ``top_k`` / ``top_k_batch``
result for the same query — same cells, same order, same float bits.
A hypothesis differential drives that through the fleet, and
deterministic scenarios cover the operational surface: deadline headers
becoming prefix-sound partials, 429 shedding when the queue fills,
per-client rate limits, worker-crash recovery (retried or failed
cleanly, never hung), warm-at-startup, and the in-flight coalescer.

Process-backed tests share one module-scoped 2-worker fleet (spawning
is the expensive part); HTTP servers are per-test (a thread + socket).
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.query import TopKQuery
from repro.data.raster import RasterLayer, RasterStack
from repro.exceptions import ArchiveError, QueryError
from repro.metrics.registry import MetricsRegistry, merge_snapshots
from repro.models.linear import LinearModel
from repro.service import RetrievalService
from repro.serving import (
    FleetConfig,
    ProtocolError,
    ServingServer,
    WorkerFleet,
    attach_stack,
    decode_query,
    encode_query,
    encode_result,
)
from repro.serving.http import TokenBucket
from repro.serving.protocol import (
    WorkItem,
    batch_key,
    deadline_remaining_s,
)
from repro.serving.shm import SharedStackExport
from repro.telemetry.prometheus import render_prometheus

SHAPE = (96, 96)
LAYERS = ("band_a", "band_b", "tie_a", "tie_b")


def _build_stack() -> RasterStack:
    """Two smooth bands + two small-integer tie layers: enough cells
    that deadlines can truncate, enough ties to stress ordering."""
    generator = np.random.default_rng(4242)
    stack = RasterStack()
    for name in LAYERS[:2]:
        stack.add(RasterLayer(name, generator.normal(size=SHAPE)))
    for name in LAYERS[2:]:
        stack.add(
            RasterLayer(
                name,
                generator.integers(0, 3, size=SHAPE).astype(float),
            )
        )
    return stack


def _model(seed: int) -> LinearModel:
    generator = np.random.default_rng(seed)
    return LinearModel(
        {
            name: float(generator.choice([-2.0, -1.0, 1.0, 2.0]))
            for name in LAYERS
        },
        intercept=0.25,
        name=f"m{seed}",
    )


@pytest.fixture(scope="module")
def serving_stack() -> RasterStack:
    return _build_stack()


@pytest.fixture(scope="module")
def local_service(serving_stack) -> RetrievalService:
    """In-process reference, configured exactly like the workers."""
    return RetrievalService(
        serving_stack,
        leaf_size=16,
        n_shards=2,
        cache_size=128,
        registry=MetricsRegistry(),
    )


@pytest.fixture(scope="module")
def fleet(serving_stack):
    """One 2-worker fleet for the whole module (spawn is the cost)."""
    fleet = WorkerFleet(
        serving_stack,
        FleetConfig(
            n_workers=2,
            debug_hooks=True,
            warm=[{"attributes": ["band_a", "band_b"], "region": None}],
        ),
    )
    fleet.start()
    yield fleet
    fleet.stop()


def _post(server, path, payload, headers=None):
    connection = http.client.HTTPConnection(
        server.host, server.port, timeout=60
    )
    try:
        connection.request(
            "POST", path, body=json.dumps(payload).encode(), headers=headers or {}
        )
        response = connection.getresponse()
        body = response.read()
        return response.status, json.loads(body), dict(response.getheaders())
    finally:
        connection.close()


def _get(server, path):
    connection = http.client.HTTPConnection(
        server.host, server.port, timeout=60
    )
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, response.read()
    finally:
        connection.close()


# -- protocol (no processes) -------------------------------------------------


class TestProtocol:
    def test_query_round_trip(self):
        query = TopKQuery(
            model=_model(3), k=7, maximize=False, region=(2, 3, 40, 50)
        )
        payload = encode_query(
            query, strategy="auto", use_cache=False, heuristic_margin=0.5
        )
        decoded = decode_query(json.loads(json.dumps(payload)))
        assert decoded.query.k == 7
        assert decoded.query.maximize is False
        assert decoded.query.region == (2, 3, 40, 50)
        assert decoded.query.model.coefficients == query.model.coefficients
        assert decoded.query.model.intercept == query.model.intercept
        assert decoded.strategy == "auto"
        assert decoded.use_cache is False
        assert decoded.heuristic_margin == 0.5

    @pytest.mark.parametrize(
        "mutation",
        [
            {"k": 0},
            {"k": True},
            {"k": "ten"},
            {"maximize": 1},
            {"region": [1, 2, 3]},
            {"region": [1, 2, 3, True]},
            {"strategy": "warp"},
            {"pruning": "vibes"},
            {"heuristic_margin": float("nan")},
            {"n_shards": 0},
            {"bogus_field": 1},
            {"model": {"type": "linear", "coefficients": {}}},
            {"model": {"type": "svm"}},
            {"model": {"type": "linear", "coefficients": {"band_a": "x"}}},
        ],
    )
    def test_malformed_payloads_rejected(self, mutation):
        payload = encode_query(TopKQuery(model=_model(1), k=3))
        payload.update(mutation)
        with pytest.raises(ProtocolError):
            decode_query(payload)

    def test_encode_query_rejects_unknown_knob(self):
        with pytest.raises(ProtocolError):
            encode_query(TopKQuery(model=_model(1), k=3), turbo=True)

    def test_batch_key_groups_by_execution_knobs(self):
        compatible_a = encode_query(TopKQuery(model=_model(1), k=3))
        compatible_b = encode_query(TopKQuery(model=_model(2), k=9))
        incompatible = encode_query(
            TopKQuery(model=_model(1), k=3), use_cache=False
        )
        assert batch_key(compatible_a) == batch_key(compatible_b)
        assert batch_key(compatible_a) != batch_key(incompatible)

    def test_deadline_remaining_clamps_expired(self):
        assert deadline_remaining_s(None) is None
        remaining = deadline_remaining_s(100.0, now=250.0)
        assert remaining == pytest.approx(1e-4)
        assert deadline_remaining_s(105.0, now=100.0) == pytest.approx(5.0)


class TestMergeSnapshots:
    def test_counters_sum_gauges_average_histograms_merge(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.inc("service.queries", 3)
        second.inc("service.queries", 5)
        first.gauge("service.cache_hit_rate", 0.2)
        second.gauge("service.cache_hit_rate", 0.6)
        for value in (0.001, 0.010, 0.100):
            first.observe("service.stage.search_seconds", value)
        second.observe("service.stage.search_seconds", 0.010)
        merged = merge_snapshots([first.snapshot(), second.snapshot()])
        assert merged["counters"]["service.queries"] == 8
        assert merged["gauges"]["service.cache_hit_rate"] == pytest.approx(0.4)
        histogram = merged["histograms"]["service.stage.search_seconds"]
        assert histogram["count"] == 4
        assert histogram["sum"] == pytest.approx(0.121)
        assert histogram["min"] == pytest.approx(0.001)
        assert histogram["max"] == pytest.approx(0.100)
        # The merged snapshot must render as valid exposition text.
        text = render_prometheus(merged)
        assert "service_queries_total 8" in text
        assert 'service_stage_search_seconds_bucket{le="+Inf"} 4' in text

    def test_mismatched_bucket_bounds_raise(self):
        registry = MetricsRegistry()
        registry.observe("h", 0.01)
        snapshot = registry.snapshot()
        doctored = json.loads(json.dumps(snapshot))
        doctored["histograms"]["h"]["buckets"] = [[0.5, 1]]
        with pytest.raises(ValueError):
            merge_snapshots([snapshot, doctored])


class TestTokenBucket:
    def test_burst_then_deny_then_refill(self):
        clock = [0.0]
        bucket = TokenBucket(rate=2.0, burst=3.0, now=lambda: clock[0])
        assert [bucket.try_acquire() for _ in range(3)] == [0.0, 0.0, 0.0]
        retry_after = bucket.try_acquire()
        assert retry_after == pytest.approx(0.5)
        clock[0] += 0.5  # one token refilled
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0

    def test_burst_never_exceeds_capacity(self):
        clock = [0.0]
        bucket = TokenBucket(rate=10.0, burst=2.0, now=lambda: clock[0])
        clock[0] += 100.0
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0

    def test_rejects_nonpositive_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)


# -- shared memory -----------------------------------------------------------


class TestSharedMemory:
    def test_export_attach_bit_identity_and_read_only(self, serving_stack):
        export = SharedStackExport(serving_stack)
        try:
            attached = attach_stack(export.manifest)
            try:
                assert attached.stack.names == serving_stack.names
                for name in serving_stack.names:
                    original = serving_stack[name].values
                    view = attached.stack[name].values
                    assert view.dtype == np.float64
                    assert np.array_equal(
                        view.view(np.uint64), original.view(np.uint64)
                    ), f"layer {name} not bit-identical through shm"
                    with pytest.raises((ValueError, RuntimeError)):
                        view[0, 0] = 1.0
            finally:
                attached.close()
        finally:
            export.close()

    def test_close_is_idempotent_and_unlinks(self, serving_stack):
        export = SharedStackExport(serving_stack)
        names = [spec.shm_name for spec in export.manifest.layers]
        export.close()
        export.close()
        from multiprocessing import shared_memory

        for name in names:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_zero_copy_layer_requires_float64(self):
        with pytest.raises(ArchiveError):
            RasterLayer(
                "bad", np.ones((4, 4), dtype=np.float32), copy=False
            )


# -- satellite 1: explicit service concurrency knobs -------------------------


class TestServiceConcurrencyKnobs:
    def test_pool_workers_default_and_override(self, serving_stack):
        registry = MetricsRegistry()
        service = RetrievalService(
            serving_stack, n_shards=3, registry=registry
        )
        assert service.pool_workers == max(8, 2 * 3)
        snapshot = registry.snapshot()
        assert snapshot["gauges"]["service.n_shards"] == 3.0
        assert snapshot["gauges"]["service.pool_workers"] == 8.0
        assert snapshot["gauges"]["service.cache_capacity"] == 128.0

        explicit = RetrievalService(
            serving_stack, n_shards=2, pool_workers=5
        )
        assert explicit.pool_workers == 5

    def test_pool_workers_validation(self, serving_stack):
        with pytest.raises(QueryError):
            RetrievalService(serving_stack, pool_workers=0)


# -- fleet differential ------------------------------------------------------


class TestFleetDifferential:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        k=st.integers(min_value=1, max_value=25),
        maximize=st.booleans(),
        quarter=st.booleans(),
    )
    def test_worker_answers_bit_identical_to_in_process(
        self, fleet, local_service, seed, k, maximize, quarter
    ):
        region = (0, 0, SHAPE[0] // 2, SHAPE[1] // 2) if quarter else None
        query = TopKQuery(
            model=_model(seed), k=k, maximize=maximize, region=region
        )
        reply = fleet.submit_query(encode_query(query)).result(timeout=60)
        assert reply.ok, reply.error
        local = encode_result(local_service.top_k(query))
        assert reply.value["answers"] == local["answers"]
        assert reply.value["complete"] is True

    def test_batch_bit_identical_to_in_process(self, fleet, local_service):
        queries = [TopKQuery(model=_model(seed), k=5) for seed in range(6)]
        payloads = [encode_query(query) for query in queries]
        reply = fleet.submit_batch(payloads).result(timeout=60)
        assert reply.ok, reply.error
        local = [
            encode_result(result)
            for result in local_service.top_k_batch(queries)
        ]
        assert [member["answers"] for member in reply.value] == [
            member["answers"] for member in local
        ]

    def test_warm_hook_ran_at_startup(self, fleet):
        stats = fleet.stats()
        assert len(stats) == 2
        assert all(entry["onion_indexes"] >= 1 for entry in stats)
        assert all(
            entry["registry"]["counters"]["service.worker_starts"] >= 1
            for entry in stats
        )

    def test_fleet_warm_broadcast_reaches_every_worker(self, fleet):
        replies = fleet.warm_index(["tie_a", "tie_b"])
        assert len(replies) == 2
        assert all(reply.ok for reply in replies)
        assert all(reply.value["layers"] >= 1 for reply in replies)
        stats = fleet.stats()
        assert all(entry["onion_indexes"] >= 2 for entry in stats)


# -- HTTP front end ----------------------------------------------------------


class TestHttpFrontEnd:
    def test_query_over_http_matches_local(self, fleet, local_service):
        with ServingServer(fleet) as server:
            query = TopKQuery(model=_model(77), k=9)
            status, body, headers = _post(
                server, "/query", encode_query(query),
                headers={"X-Trace-Id": "trace-abc-123"},
            )
            assert status == 200
            local = encode_result(local_service.top_k(query))
            assert body["answers"] == local["answers"]
            assert body["trace_id"] == "trace-abc-123"
            assert headers["X-Trace-Id"] == "trace-abc-123"

    def test_batch_over_http_matches_local(self, fleet, local_service):
        with ServingServer(fleet) as server:
            queries = [
                TopKQuery(model=_model(seed), k=4) for seed in (11, 12, 13)
            ]
            status, body, _ = _post(
                server,
                "/batch",
                {"queries": [encode_query(query) for query in queries]},
            )
            assert status == 200
            local = [
                encode_result(result)
                for result in local_service.top_k_batch(queries)
            ]
            assert [member["answers"] for member in body["results"]] == [
                member["answers"] for member in local
            ]

    def test_malformed_body_is_400_not_worker_work(self, fleet):
        with ServingServer(fleet) as server:
            status, body, _ = _post(server, "/query", {"k": 3})
            assert status == 400
            assert "model" in body["error"]
            status, body, _ = _post(
                server, "/batch", {"queries": []}
            )
            assert status == 400

    def test_unknown_route_404_and_wrong_method_405(self, fleet):
        with ServingServer(fleet) as server:
            status, _ = _get(server, "/nope")
            assert status == 404
            status, _ = _get(server, "/query")
            assert status == 405

    def test_deadline_header_yields_prefix_sound_partial(self, fleet):
        with ServingServer(fleet) as server:
            query = TopKQuery(model=_model(991), k=40)
            status, body, _ = _post(
                server,
                "/query",
                encode_query(query, use_cache=False),
                headers={"X-Deadline-Ms": "1"},
            )
            assert status == 200
            assert body["complete"] is False
            assert body["strategy"].endswith("-partial")
            assert body["cancel_reason"] == "deadline"

    def test_bad_deadline_header_is_400(self, fleet):
        with ServingServer(fleet) as server:
            query = encode_query(TopKQuery(model=_model(1), k=3))
            for value in ("soon", "-5", "0"):
                status, body, _ = _post(
                    server, "/query", query,
                    headers={"X-Deadline-Ms": value},
                )
                assert status == 400
                assert "X-Deadline-Ms" in body["error"]

    def test_metrics_document_merges_workers_and_frontend(self, fleet):
        with ServingServer(fleet) as server:
            _post(
                server, "/query",
                encode_query(TopKQuery(model=_model(5), k=3)),
            )
            status, text = _get(server, "/metrics")
            assert status == 200
            exposition = text.decode()
            assert "service_worker_starts_total 2" in exposition
            assert "frontend_requests_total" in exposition
            assert "fleet_workers_alive 2" in exposition
            status, health = _get(server, "/healthz")
            assert status == 200
            payload = json.loads(health)
            assert payload["status"] == "ok"
            assert len(payload["workers"]) == 2

    def test_queue_full_sheds_429_with_retry_after(self, fleet):
        with ServingServer(fleet, queue_depth=1, coalesce=False) as server:
            # Pin both workers down so admitted queries cannot drain.
            sleeps = [
                fleet.submit(
                    WorkItem(kind="sleep", request_id=0, payload=1.2),
                    worker_id=worker_id,
                )
                for worker_id in range(2)
            ]
            payload = encode_query(
                TopKQuery(model=_model(8), k=3), use_cache=False
            )
            results = []
            lock = threading.Lock()

            def fire():
                status, _, headers = _post(server, "/query", payload)
                with lock:
                    results.append((status, headers.get("Retry-After")))

            threads = [
                threading.Thread(target=fire, daemon=True) for _ in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            for future in sleeps:
                future.result(timeout=30)
            statuses = sorted(status for status, _ in results)
            assert 429 in statuses, statuses
            assert all(status in (200, 429) for status, _ in results)
            assert any(
                retry is not None
                for status, retry in results
                if status == 429
            )
            shed = server.registry.snapshot()["counters"].get(
                "frontend.shed_queue", 0
            )
            assert shed >= 1

    def test_client_rate_limit_429(self, fleet):
        with ServingServer(
            fleet, rate_limit=1.0, rate_burst=1.0
        ) as server:
            payload = encode_query(TopKQuery(model=_model(9), k=3))
            headers = {"X-Client-Id": "hammer"}
            first, _, _ = _post(server, "/query", payload, headers=headers)
            second, body, reply_headers = _post(
                server, "/query", payload, headers=headers
            )
            assert first == 200
            assert second == 429
            assert "rate limit" in body["error"]
            assert "Retry-After" in reply_headers
            # A different client is untouched by the hammer's bucket.
            other, _, _ = _post(
                server, "/query", payload,
                headers={"X-Client-Id": "polite"},
            )
            assert other == 200

    def test_coalescer_groups_compatible_queries(self, fleet, local_service):
        with ServingServer(fleet, coalesce=True, coalesce_max=8) as server:
            # Hold both workers so concurrent arrivals pile up in the
            # dispatch queue where the lanes can coalesce them.
            sleeps = [
                fleet.submit(
                    WorkItem(kind="sleep", request_id=0, payload=0.8),
                    worker_id=worker_id,
                )
                for worker_id in range(2)
            ]
            queries = [TopKQuery(model=_model(seed), k=6) for seed in range(60, 66)]
            results: dict[int, dict] = {}
            lock = threading.Lock()

            def fire(index: int) -> None:
                status, body, _ = _post(
                    server, "/query", encode_query(queries[index])
                )
                with lock:
                    results[index] = (status, body)

            threads = [
                threading.Thread(target=fire, args=(index,), daemon=True)
                for index in range(len(queries))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            for future in sleeps:
                future.result(timeout=30)
            assert len(results) == len(queries)
            for index, query in enumerate(queries):
                status, body = results[index]
                assert status == 200
                local = encode_result(local_service.top_k(query))
                assert body["answers"] == local["answers"], (
                    f"coalesced answer {index} diverged from in-process"
                )
            coalesced = server.registry.snapshot()["counters"].get(
                "frontend.coalesced", 0
            )
            assert coalesced >= 1, "no queries were coalesced under load"


# -- crash recovery (last: it respawns a worker) -----------------------------


class TestCrashRecovery:
    def test_crash_is_failed_cleanly_and_inflight_retried(self, fleet):
        before = fleet.restarts
        # The query queued behind the crash dies with the worker; the
        # monitor must resubmit it elsewhere, never hang its future.
        crash = fleet.submit(
            WorkItem(kind="crash", request_id=0), worker_id=0
        )
        queued = fleet.submit(
            WorkItem(
                kind="query",
                request_id=0,
                payload=encode_query(TopKQuery(model=_model(21), k=5)),
            ),
            worker_id=0,
        )
        crash_reply = crash.result(timeout=30)
        assert crash_reply.ok is False
        assert crash_reply.error_kind == "crashed"
        queued_reply = queued.result(timeout=30)
        assert queued_reply.ok, queued_reply.error
        assert queued_reply.value["answers"]

        deadline = time.monotonic() + 30
        while fleet.restarts <= before and time.monotonic() < deadline:
            time.sleep(0.05)
        assert fleet.restarts == before + 1

        # The respawned worker serves again (and re-ran its warm hook).
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            stats = fleet.stats()
            if len(stats) == 2 and all(
                entry["onion_indexes"] >= 1 for entry in stats
            ):
                break
            time.sleep(0.1)
        else:
            pytest.fail("respawned worker never became serviceable")
        reply = fleet.submit_query(
            encode_query(TopKQuery(model=_model(22), k=3))
        ).result(timeout=30)
        assert reply.ok, reply.error
