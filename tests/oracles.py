"""Brute-force reference implementations the differential suites pin to.

Every oracle here is deliberately *dumb*: score everything densely,
rank with numpy's lexsort under the library-wide tie-break convention
(descending score, then ascending ``(row, col)``), and — where counted
work is part of the contract — recompute the expected counter ledger
from first principles. The production paths must match these bitwise:

* :func:`flat_ip_oracle` — dense inner-product top-K over a vector set,
  the reference for :class:`repro.index.vector.FlatIPIndex` (and, via
  probe-everything, :class:`~repro.index.vector.IVFIPIndex`).
* :func:`exhaustive_fused` — score every cell of a region as
  ``alpha * model + (1 - alpha) * cosine`` and rank, plus the exact
  counter dict the service's ``embed-scan`` strategy must produce.

The oracles reuse the library's *scoring* primitives (term-order inner
products, the fusion blend) on purpose — the bitwise contract is about
search/pruning/tie-break machinery, and sharing the leaf arithmetic is
what makes "bit-identical" a meaningful demand rather than a tolerance
in disguise. The *ranking* is independent: lexsort, no heaps.
"""

from __future__ import annotations

import numpy as np

from repro.embed.fusion import BLEND_FLOPS, FusionSpec
from repro.embed.tiles import TileEmbeddings
from repro.index.vector import ip_scores

#: Counter fields the work-ledger contracts compare (wall_seconds and
#: notes are environment-dependent bookkeeping, not counted work).
COUNTER_FIELDS = (
    "data_points",
    "model_evals",
    "partial_evals",
    "flops",
    "tuples_examined",
    "nodes_visited",
)


def counter_dict(counter) -> dict[str, int]:
    """The counted-work fields of a :class:`CostCounter`, as a dict."""
    return {name: getattr(counter, name) for name in COUNTER_FIELDS}


def rank_top_k(
    scores: np.ndarray, rows: np.ndarray, cols: np.ndarray, k: int
) -> list[tuple[float, tuple[int, int]]]:
    """Dense top-``k`` under the library tie-break, heap-free.

    Descending score; equal scores break to the smallest ``(row, col)``.
    ``lexsort`` keys are least-significant first, so the sign-flipped
    score (exact for floats) is the last key.
    """
    order = np.lexsort((cols, rows, -np.asarray(scores)))[:k]
    return [
        (float(scores[i]), (int(rows[i]), int(cols[i])))
        for i in order.tolist()
    ]


def flat_ip_oracle(
    vectors: np.ndarray, cells: np.ndarray, query: np.ndarray, k: int
) -> list[tuple[float, tuple[int, int]]]:
    """Reference answer for the flat inner-product index."""
    cells = np.asarray(cells)
    return rank_top_k(
        ip_scores(vectors, query), cells[:, 0], cells[:, 1], k
    )


def exhaustive_fused(
    stack,
    embeddings: TileEmbeddings | None,
    query,
    region: tuple[int, int, int, int],
) -> tuple[list[tuple[int, int, float]], dict[str, int]]:
    """Reference answers + work ledger for one (possibly fused) query.

    Scores every cell of ``region`` densely — model evaluation plus,
    for fused queries, the per-tile cosine against the example tile —
    and ranks with :func:`rank_top_k`. The returned counter dict is the
    ledger the service's exhaustive strategies must match exactly:
    ``embed-scan`` for fused queries, ``scan`` for model-only ones.
    """
    row0, col0, row1, col1 = region
    model = query.model
    columns = {
        name: stack[name].read_window(row0, col0, row1, col1, None)
        for name in model.attributes
    }
    scores = model.evaluate_batch(columns).reshape(-1)
    n_cells = scores.size
    if query.fused:
        fusion = FusionSpec.build(embeddings, query.similar_to, query.alpha)
        blended = fusion.blend(
            scores, fusion.region_cosines(region).reshape(-1)
        )
    else:
        fusion = None
        blended = scores
    sign = 1.0 if query.maximize else -1.0
    flat = np.arange(n_cells)
    rows = row0 + flat // (col1 - col0)
    cols = col0 + flat % (col1 - col0)
    ranked = rank_top_k(sign * blended, rows, cols, query.k)
    # Decode exactly as the service does: the stored signed score times
    # the sign again (an exact double flip).
    answers = [
        (cell[0], cell[1], sign * signed) for signed, cell in ranked
    ]
    expected = {
        "data_points": n_cells * len(model.attributes),
        "model_evals": n_cells,
        "partial_evals": 0,
        "flops": n_cells * model.complexity,
        "tuples_examined": n_cells,
        "nodes_visited": 0,
    }
    if fusion is not None:
        expected["partial_evals"] = embeddings.n_tiles + n_cells
        expected["flops"] += (
            embeddings.n_tiles * 2 * embeddings.dim
            + n_cells * BLEND_FLOPS
        )
    return answers, expected


def exact_answers(result) -> list[tuple[int, int, float]]:
    """A result's answers as exact (unrounded) triples."""
    return [(a.row, a.col, a.score) for a in result.answers]
