"""Tests for progressive query planning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.planner import plan_query
from repro.core.query import TopKQuery
from repro.core.screening import TileScreen
from repro.data.raster import RasterLayer, RasterStack
from repro.exceptions import PlanError
from repro.models.fuzzy import sigmoid_membership
from repro.models.knowledge import FuzzyRule, KnowledgeModel, RulePredicate
from repro.models.linear import LinearModel


@pytest.fixture(scope="module")
def screen():
    rng = np.random.default_rng(9)
    stack = RasterStack()
    # "wide" has 100x the spread of "narrow".
    stack.add(RasterLayer("wide", rng.uniform(0, 100, (32, 32))))
    stack.add(RasterLayer("narrow", rng.uniform(0, 1, (32, 32))))
    # "blocky" is piecewise-constant: tiny envelopes per tile (selective).
    blocky = np.repeat(np.repeat(rng.uniform(0, 100, (4, 4)), 8, 0), 8, 1)
    stack.add(RasterLayer("blocky", blocky))
    return TileScreen(stack, leaf_size=8)


class TestContributionOrdering:
    def test_spread_weighted_coefficients_order_terms(self, screen):
        model = LinearModel({"wide": 0.1, "narrow": 5.0})
        query = TopKQuery(model=model, k=1)
        plan = plan_query(query, screen, ordering="contribution")
        # 0.1 * 100 = 10 > 5.0 * 1 = 5 -> wide first.
        assert plan.term_order[0] == "wide"

    def test_uncertainty_shrinks_along_plan(self, screen):
        model = LinearModel({"wide": 1.0, "narrow": 1.0, "blocky": 1.0})
        plan = plan_query(TopKQuery(model=model, k=1), screen)
        widths = list(plan.expected_level_uncertainty)
        assert widths == sorted(widths, reverse=True)
        assert widths[-1] == 0.0


class TestSelectivityOrdering:
    def test_blocky_attribute_ranked_most_selective(self, screen):
        model = LinearModel({"wide": 1.0, "blocky": 1.0})
        query = TopKQuery(model=model, k=1)
        plan = plan_query(query, screen, ordering="selectivity")
        assert plan.term_order[0] == "blocky"

    def test_orderings_can_differ(self, screen):
        """The paper's point: relevance order != filtering order."""
        model = LinearModel({"wide": 10.0, "blocky": 0.5})
        query = TopKQuery(model=model, k=1)
        contribution = plan_query(query, screen, ordering="contribution")
        selectivity = plan_query(query, screen, ordering="selectivity")
        assert contribution.term_order[0] == "wide"
        assert selectivity.term_order[0] == "blocky"


class TestValidation:
    def test_unknown_ordering(self, screen):
        model = LinearModel({"wide": 1.0})
        with pytest.raises(PlanError):
            plan_query(TopKQuery(model=model, k=1), screen, ordering="magic")

    def test_nonlinear_model_cannot_take_levels(self, screen):
        knowledge = KnowledgeModel(
            [
                FuzzyRule(
                    "r",
                    (RulePredicate("wide", sigmoid_membership(50.0, 0.1)),),
                )
            ]
        )
        with pytest.raises(PlanError):
            plan_query(TopKQuery(model=knowledge, k=1), screen)

    def test_nonlinear_model_allowed_without_levels(self, screen):
        knowledge = KnowledgeModel(
            [
                FuzzyRule(
                    "r",
                    (RulePredicate("wide", sigmoid_membership(50.0, 0.1)),),
                )
            ]
        )
        plan = plan_query(
            TopKQuery(model=knowledge, k=1),
            screen,
            use_model_levels=False,
        )
        assert not plan.use_model_levels
        assert plan.expected_level_uncertainty == ()

    def test_missing_attribute(self, screen):
        model = LinearModel({"unknown": 1.0})
        with pytest.raises(PlanError):
            plan_query(TopKQuery(model=model, k=1), screen)

    def test_plan_records_configuration(self, screen):
        model = LinearModel({"wide": 1.0})
        plan = plan_query(
            TopKQuery(model=model, k=1), screen, use_tiles=False
        )
        assert plan.leaf_size == 8
        assert not plan.use_tiles
        assert plan.ordering == "contribution"
