"""Property tests for the vector indexes and the tile embedder.

Pins the flat inner-product index bitwise to a numpy argsort oracle,
the IVF index to the flat one (probe-everything and exact-mode alike),
the soundness of the IVF partition caps, and the region-scoped
embedding refresh contract (dirty tiles only, bit-identical to a full
rebuild).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.oracles import flat_ip_oracle
from repro.core.screening import TileScreen
from repro.embed.tiles import TileEmbedder, TileEmbeddings
from repro.exceptions import EmbeddingError, IndexError_
from repro.index.vector import FlatIPIndex, IVFIPIndex, ip_scores
from repro.metrics.counters import CostCounter


def _vector_set(n, dim, seed, ties=False):
    rng = np.random.default_rng(seed)
    if ties:
        # Quantized coordinates force duplicate rows and score ties, so
        # the (row, col) tie-break actually gets exercised.
        vectors = rng.integers(-2, 3, size=(n, dim)).astype(np.float64)
    else:
        vectors = rng.standard_normal((n, dim))
    cells = np.stack(
        [rng.permutation(n), rng.integers(0, 50, size=n)], axis=1
    )
    query = (
        rng.integers(-2, 3, size=dim).astype(np.float64)
        if ties
        else rng.standard_normal(dim)
    )
    return vectors, cells, query


class TestFlatIndex:
    @given(
        n=st.integers(1, 120),
        dim=st.integers(1, 12),
        k=st.integers(1, 20),
        seed=st.integers(0, 500),
        ties=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_flat_matches_argsort_oracle_bitwise(self, n, dim, k, seed, ties):
        vectors, cells, query = _vector_set(n, dim, seed, ties)
        index = FlatIPIndex(vectors, cells)
        assert index.search(query, k) == flat_ip_oracle(
            vectors, cells, query, k
        )

    def test_flat_counts_work(self):
        vectors, cells, query = _vector_set(30, 4, 0)
        counter = CostCounter()
        FlatIPIndex(vectors, cells).search(query, 5, counter=counter)
        assert counter.tuples_examined == 30
        assert counter.model_evals == 30
        assert counter.flops == 30 * 2 * 4

    def test_flat_rejects_bad_shapes(self):
        with pytest.raises(IndexError_):
            FlatIPIndex(np.zeros((0, 3)), np.zeros((0, 2)))
        with pytest.raises(IndexError_):
            FlatIPIndex(np.zeros((4, 3)), np.zeros((3, 2)))
        index = FlatIPIndex(np.ones((4, 3)), np.zeros((4, 2), dtype=int))
        with pytest.raises(IndexError_):
            index.search(np.ones(5), 2)

    def test_ip_scores_subset_is_bitwise_stable(self):
        """Scoring a gathered row subset reproduces the full-scan floats
        — the property every partition probe depends on."""
        vectors, _, query = _vector_set(64, 9, 7)
        full = ip_scores(vectors, query)
        subset = np.array([3, 17, 17, 40, 63])
        assert np.array_equal(ip_scores(vectors[subset], query), full[subset])


class TestIVFIndex:
    @given(
        n=st.integers(2, 100),
        dim=st.integers(1, 8),
        k=st.integers(1, 12),
        n_partitions=st.integers(1, 12),
        seed=st.integers(0, 300),
        ties=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_probe_everything_equals_flat(
        self, n, dim, k, n_partitions, seed, ties
    ):
        vectors, cells, query = _vector_set(n, dim, seed, ties)
        flat = FlatIPIndex(vectors, cells).search(query, k)
        ivf = IVFIPIndex(vectors, cells, n_partitions=n_partitions, seed=seed)
        ranked, probed = ivf.search(query, k, nprobe=ivf.n_partitions)
        assert ranked == flat
        assert probed == ivf.n_partitions

    @given(
        n=st.integers(2, 100),
        dim=st.integers(1, 8),
        k=st.integers(1, 12),
        n_partitions=st.integers(1, 12),
        seed=st.integers(0, 300),
        ties=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_exact_mode_equals_flat_with_fewer_probes(
        self, n, dim, k, n_partitions, seed, ties
    ):
        """nprobe=None prunes on caps yet must stay exact — the cap
        soundness contract, checked answer-for-answer."""
        vectors, cells, query = _vector_set(n, dim, seed, ties)
        flat = FlatIPIndex(vectors, cells).search(query, k)
        ivf = IVFIPIndex(vectors, cells, n_partitions=n_partitions, seed=seed)
        ranked, probed = ivf.search(query, k)
        assert ranked == flat
        assert probed <= ivf.n_partitions

    @given(
        n=st.integers(2, 80),
        dim=st.integers(1, 8),
        n_partitions=st.integers(1, 10),
        seed=st.integers(0, 300),
    )
    @settings(max_examples=40, deadline=None)
    def test_partition_caps_dominate_member_scores(
        self, n, dim, n_partitions, seed
    ):
        """Every member's true inner product sits at or below its
        partition's cap — no true answer can ever be pruned."""
        vectors, cells, query = _vector_set(n, dim, seed)
        ivf = IVFIPIndex(vectors, cells, n_partitions=n_partitions, seed=seed)
        caps = ivf.partition_caps(query)
        scores = ip_scores(vectors, query)
        for p, members in enumerate(ivf._members):
            if members.size:
                assert scores[members].max() <= caps[p]

    def test_limited_nprobe_probes_exactly_that_many(self):
        vectors, cells, query = _vector_set(60, 6, 1)
        ivf = IVFIPIndex(vectors, cells, n_partitions=6, seed=1)
        ranked, probed = ivf.search(query, 5, nprobe=2)
        assert probed == 2
        assert len(ranked) <= 5

    def test_rejects_bad_config(self):
        vectors, cells, _ = _vector_set(10, 3, 0)
        with pytest.raises(IndexError_):
            IVFIPIndex(vectors, cells, n_partitions=0)
        with pytest.raises(IndexError_):
            IVFIPIndex(np.zeros((0, 3)), np.zeros((0, 2)))


def _stack(rows, cols, seed, make_noise_stack):
    return make_noise_stack(rows, cols, 2, seed)


def _poke(layer, region, block):
    """In-place mutate a frozen layer window (what the disk store's
    ``append_region`` does through its memmap)."""
    layer.values.setflags(write=True)
    try:
        layer.values[region[0]:region[2], region[1]:region[3]] = block
    finally:
        layer.values.setflags(write=False)


class TestEmbeddingRefresh:
    @given(
        rows=st.integers(10, 48),
        cols=st.integers(10, 48),
        seed=st.integers(0, 200),
        r0=st.integers(0, 40),
        c0=st.integers(0, 40),
        height=st.integers(1, 20),
        width=st.integers(1, 20),
    )
    @settings(max_examples=30, deadline=None)
    def test_refresh_is_bitwise_identical_to_rebuild(
        self, rows, cols, seed, r0, c0, height, width, make_noise_stack
    ):
        """Mutate a rectangle, refresh it, and compare the whole vector
        grid against a from-scratch rebuild: bit-identical, and only the
        dirty tile block was re-embedded."""
        stack = _stack(rows, cols, seed, make_noise_stack)
        screen = TileScreen(stack, leaf_size=8)
        embeddings = TileEmbeddings.build(stack, screen, dim=8, seed=3)
        assert embeddings.embedded_tiles == embeddings.n_tiles
        r0, c0 = min(r0, rows - 1), min(c0, cols - 1)
        region = (r0, c0, min(rows, r0 + height), min(cols, c0 + width))
        rng = np.random.default_rng(seed + 1)
        for name in stack.names:
            _poke(
                stack[name],
                region,
                rng.standard_normal(
                    (region[2] - region[0], region[3] - region[1])
                ),
            )
        dirty = embeddings.refresh_region(region)
        rebuilt = TileEmbeddings.build(stack, screen, dim=8, seed=3)
        assert np.array_equal(embeddings.vectors, rebuilt.vectors)
        assert dirty >= 1
        assert embeddings.embedded_tiles == embeddings.n_tiles + dirty

    def test_refresh_touches_only_dirty_tiles(self, make_noise_stack):
        stack = _stack(32, 32, 5, make_noise_stack)
        screen = TileScreen(stack, leaf_size=8)
        embeddings = TileEmbeddings.build(stack, screen, dim=8, seed=0)
        before = embeddings.vectors.copy()
        # One cell inside tile (0, 0): exactly one tile is dirty.
        _poke(stack[stack.names[0]], (2, 3, 3, 4), 99.0)
        assert embeddings.refresh_region((2, 3, 3, 4)) == 1
        assert embeddings.embedded_tiles == embeddings.n_tiles + 1
        changed = ~np.all(embeddings.vectors == before, axis=-1)
        assert changed[0, 0]
        assert changed.sum() == 1

    def test_refresh_out_of_grid_is_a_noop(self, make_noise_stack):
        stack = _stack(16, 16, 1, make_noise_stack)
        screen = TileScreen(stack, leaf_size=8)
        embeddings = TileEmbeddings.build(stack, screen, dim=4, seed=0)
        assert embeddings.refresh_region((20, 20, 30, 30)) == 0
        assert embeddings.refresh_region((5, 5, 5, 9)) == 0
        assert embeddings.embedded_tiles == embeddings.n_tiles

    def test_cosines_match_term_order_reference(self, make_noise_stack):
        stack = _stack(24, 24, 2, make_noise_stack)
        screen = TileScreen(stack, leaf_size=8)
        embeddings = TileEmbeddings.build(stack, screen, dim=6, seed=2)
        query = embeddings.tile_vector((10, 10))
        grid = embeddings.cosines(query)
        n_i, n_j = embeddings.grid_shape
        flat = ip_scores(
            embeddings.vectors.reshape(n_i * n_j, embeddings.dim), query
        )
        assert np.array_equal(grid.reshape(-1), flat)
        # Unit vectors: the example tile's cosine with itself is ~1 and
        # is the grid maximum.
        i, j = embeddings.tile_index((10, 10))
        assert grid[i, j] == grid.max()

    def test_embedder_validation(self):
        with pytest.raises(EmbeddingError):
            TileEmbedder((), dim=4)
        with pytest.raises(EmbeddingError):
            TileEmbedder(("a",), dim=0)
        embedder = TileEmbedder(("a",), dim=4)
        with pytest.raises(EmbeddingError):
            embedder.embed_block(np.zeros((2, 2, 7)))
