"""Tests for compressed-domain classification."""

from __future__ import annotations

import numpy as np
import pytest

from repro.abstraction.compressed import classify_compressed
from repro.abstraction.semantics import ThresholdClassifier
from repro.data.raster import RasterLayer
from repro.metrics.counters import CostCounter
from repro.synth.landsat import generate_band


@pytest.fixture(scope="module")
def band():
    return generate_band((128, 128), seed=51, smoothness=3.0)


@pytest.fixture(scope="module")
def classifier():
    return ThresholdClassifier([80.0])


class TestClassifyCompressed:
    def test_labels_cover_grid(self, band, classifier):
        result = classify_compressed(band, classifier, margin=10.0)
        assert result.labels.shape == band.shape
        assert not np.any(result.labels == -1)

    def test_zero_margin_reads_almost_nothing(self, band, classifier):
        result = classify_compressed(band, classifier, margin=0.0)
        assert result.values_read < band.size / 50
        assert result.refined_fraction == 0.0

    def test_larger_margin_improves_agreement(self, band, classifier):
        agreements = []
        reads = []
        for margin in (0.0, 5.0, 15.0, 30.0):
            result = classify_compressed(band, classifier, margin=margin)
            agreements.append(result.agreement)
            reads.append(result.values_read)
        assert agreements == sorted(agreements)
        assert reads == sorted(reads)

    def test_huge_margin_recovers_exact_labels(self, band, classifier):
        """A margin covering the whole value range forces refinement to
        pixels everywhere, recovering exact classification."""
        span = float(band.values.max() - band.values.min())
        result = classify_compressed(band, classifier, margin=span)
        assert result.agreement == 1.0

    def test_constant_layer_perfect_at_coarse_cost(self, classifier):
        layer = RasterLayer("flat", np.full((64, 64), 50.0))
        result = classify_compressed(
            layer, classifier, margin=5.0, n_levels=6
        )
        assert result.agreement == 1.0
        assert result.values_read == 1  # one coarsest coefficient suffices

    def test_counter_charges_reads(self, band, classifier):
        counter = CostCounter()
        result = classify_compressed(
            band, classifier, margin=10.0, counter=counter
        )
        assert counter.data_points == result.values_read

    def test_compare_exact_flag(self, band, classifier):
        result = classify_compressed(
            band, classifier, margin=5.0, compare_exact=False
        )
        assert result.agreement is None

    def test_margin_validation(self, band, classifier):
        with pytest.raises(ValueError):
            classify_compressed(band, classifier, margin=-1.0)

    def test_accuracy_work_tradeoff_beats_exact_progressive_on_reads(
        self, band, classifier
    ):
        """At moderate margins the compressed path reads far less than
        full resolution while agreeing on the vast majority of pixels —
        the trade [13] accepted for its 30x."""
        result = classify_compressed(band, classifier, margin=12.0)
        assert result.values_read < band.size / 3
        assert result.agreement > 0.9
