"""Tests for threshold-region extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.abstraction.contours import threshold_regions
from repro.metrics.counters import CostCounter


class TestThresholdRegions:
    def test_single_block(self):
        values = np.zeros((5, 5))
        values[1:3, 1:4] = 10.0
        regions = threshold_regions(values, 5.0)
        assert len(regions) == 1
        assert regions[0].size == 6
        assert regions[0].bounding_box == (1, 1, 3, 4)

    def test_two_disconnected_blocks_ordered_by_size(self):
        values = np.zeros((6, 6))
        values[0:3, 0:3] = 10.0  # 9 cells
        values[5, 5] = 10.0  # 1 cell
        regions = threshold_regions(values, 5.0)
        assert [region.size for region in regions] == [9, 1]

    def test_diagonal_connectivity(self):
        values = np.zeros((4, 4))
        values[0, 0] = 10.0
        values[1, 1] = 10.0
        four = threshold_regions(values, 5.0, connectivity=4)
        eight = threshold_regions(values, 5.0, connectivity=8)
        assert len(four) == 2
        assert len(eight) == 1

    def test_below_threshold_direction(self):
        values = np.full((4, 4), 10.0)
        values[2, 2] = 0.0
        regions = threshold_regions(values, 5.0, above=False)
        assert len(regions) == 1
        assert regions[0].cells == frozenset({(2, 2)})

    def test_no_regions(self):
        assert threshold_regions(np.zeros((3, 3)), 5.0) == []

    def test_whole_grid_region(self):
        regions = threshold_regions(np.full((3, 3), 9.0), 5.0)
        assert len(regions) == 1
        assert regions[0].size == 9

    def test_centroid(self):
        values = np.zeros((5, 5))
        values[2, 1:4] = 10.0
        region = threshold_regions(values, 5.0)[0]
        assert region.centroid == (2.0, 2.0)

    def test_counter_charges_one_pass(self):
        counter = CostCounter()
        threshold_regions(np.zeros((10, 10)), 1.0, counter=counter)
        assert counter.data_points == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            threshold_regions(np.zeros(5), 1.0)
        with pytest.raises(ValueError):
            threshold_regions(np.zeros((3, 3)), 1.0, connectivity=6)

    def test_labels_unique(self):
        rng = np.random.default_rng(1)
        values = rng.random((20, 20))
        regions = threshold_regions(values, 0.7)
        labels = [region.label for region in regions]
        assert len(labels) == len(set(labels))
        covered = [cell for region in regions for cell in region.cells]
        assert len(covered) == len(set(covered))
        assert len(covered) == int((values > 0.7).sum())
