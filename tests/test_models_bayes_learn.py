"""Tests for CPT learning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import BayesNetError
from repro.models.bayes import BayesianNetwork, Variable
from repro.models.bayes_learn import fit_cpts, log_likelihood


def _structure() -> BayesianNetwork:
    network = BayesianNetwork()
    network.add_variable(Variable("a", ("x", "y")))
    network.add_variable(Variable("b", ("u", "v")), parents=("a",))
    return network


def _generating_network() -> BayesianNetwork:
    network = _structure()
    network.set_cpt("a", np.array([0.7, 0.3]))
    network.set_cpt("b", np.array([[0.9, 0.1], [0.2, 0.8]]))
    return network


class TestFitCpts:
    def test_recovers_generating_parameters(self):
        source = _generating_network()
        records = source.sample(30000, seed=1)
        learned = _structure()
        fit_cpts(learned, records, alpha=0.0)
        assert learned.cpt("a")[0] == pytest.approx(0.7, abs=0.02)
        assert learned.cpt("b")[0, 0] == pytest.approx(0.9, abs=0.02)
        assert learned.cpt("b")[1, 1] == pytest.approx(0.8, abs=0.02)

    def test_smoothing_handles_unseen_configurations(self):
        learned = _structure()
        records = [{"a": "x", "b": "u"}] * 5  # a=y never observed
        fit_cpts(learned, records, alpha=1.0)
        row = learned.cpt("b")[1]
        assert row.sum() == pytest.approx(1.0)
        assert np.all(row > 0)

    def test_mle_without_smoothing_rejects_unseen(self):
        learned = _structure()
        records = [{"a": "x", "b": "u"}] * 5
        with pytest.raises(BayesNetError):
            fit_cpts(learned, records, alpha=0.0)

    def test_incomplete_records_rejected(self):
        learned = _structure()
        with pytest.raises(BayesNetError):
            fit_cpts(learned, [{"a": "x"}])

    def test_empty_records_rejected(self):
        with pytest.raises(BayesNetError):
            fit_cpts(_structure(), [])

    def test_negative_alpha_rejected(self):
        with pytest.raises(BayesNetError):
            fit_cpts(_structure(), [{"a": "x", "b": "u"}], alpha=-1.0)

    def test_resulting_cpts_valid(self):
        learned = _structure()
        source = _generating_network()
        fit_cpts(learned, source.sample(100, seed=2))
        learned.validate()  # shapes + normalization re-checked by set_cpt


class TestLogLikelihood:
    def test_fitted_beats_wrong_parameters(self):
        source = _generating_network()
        records = source.sample(5000, seed=3)
        fitted = _structure()
        fit_cpts(fitted, records)
        wrong = _structure()
        wrong.set_cpt("a", np.array([0.5, 0.5]))
        wrong.set_cpt("b", np.array([[0.5, 0.5], [0.5, 0.5]]))
        assert log_likelihood(fitted, records) > log_likelihood(wrong, records)

    def test_impossible_record_is_minus_infinity(self):
        network = _structure()
        network.set_cpt("a", np.array([1.0, 0.0]))
        network.set_cpt("b", np.array([[1.0, 0.0], [0.5, 0.5]]))
        assert log_likelihood(network, [{"a": "y", "b": "u"}]) == float("-inf")

    def test_empty_records_rejected(self):
        with pytest.raises(BayesNetError):
            log_likelihood(_generating_network(), [])
