"""Tests for the Onion index."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import IndexError_
from repro.index.onion import OnionIndex
from repro.index.scan import scan_top_k
from repro.metrics.counters import CostCounter
from repro.models.linear import LinearModel
from repro.synth.gaussian import generate_gaussian_table


@pytest.fixture(scope="module")
def table():
    return generate_gaussian_table(800, 3, seed=1)


@pytest.fixture(scope="module")
def index(table):
    return OnionIndex(table)


class TestConstruction:
    def test_layer_sizes_sum_to_n(self, index, table):
        assert sum(index.layer_sizes()) == len(table)

    def test_layer_access_bounds(self, index):
        with pytest.raises(IndexError_):
            index.layer(index.n_layers)

    def test_needs_attributes(self, table):
        with pytest.raises(IndexError_):
            OnionIndex(table, attributes=[])

    def test_max_layers_cap(self, table):
        capped = OnionIndex(table, max_layers=4)
        assert capped.n_layers == 4
        assert sum(capped.layer_sizes()) == len(table)

    def test_max_layers_validation(self, table):
        with pytest.raises(IndexError_):
            OnionIndex(table, max_layers=0)


class TestQueries:
    def test_top_1_matches_scan(self, index, table):
        weights = {"x1": 0.5, "x2": 0.3, "x3": 0.2}
        expected = scan_top_k(table, LinearModel(weights), 1)
        actual = index.top_k(weights, 1)
        assert actual[0][0] == expected[0][0]
        assert actual[0][1] == pytest.approx(expected[0][1])

    @given(
        k=st.integers(1, 30),
        raw_weights=st.tuples(
            st.floats(-2, 2), st.floats(-2, 2), st.floats(-2, 2)
        ),
        maximize=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_top_k_matches_scan_for_random_queries(
        self, index, table, k, raw_weights, maximize
    ):
        """Exactness: the Onion answer must equal sequential scan for any
        weights, any K, both directions."""
        if all(abs(w) < 1e-6 for w in raw_weights):
            raw_weights = (1.0, 0.0, 0.0)
        weights = dict(zip(("x1", "x2", "x3"), raw_weights))
        expected = scan_top_k(table, LinearModel(weights), k, maximize=maximize)
        actual = index.top_k(weights, k, maximize=maximize)
        assert [row for row, _ in actual] == [row for row, _ in expected]
        for (_, a), (_, b) in zip(actual, expected):
            assert a == pytest.approx(b)

    def test_capped_index_still_exact_beyond_cap(self, table):
        capped = OnionIndex(table, max_layers=3)
        weights = {"x1": 1.0, "x2": -0.5, "x3": 0.2}
        expected = scan_top_k(table, LinearModel(weights), 10)
        actual = capped.top_k(weights, 10)
        assert [row for row, _ in actual] == [row for row, _ in expected]

    def test_examines_fewer_tuples_than_scan(self, index, table):
        weights = {"x1": 0.5, "x2": 0.3, "x3": 0.2}
        onion_counter, scan_counter = CostCounter(), CostCounter()
        index.top_k(weights, 1, counter=onion_counter)
        scan_top_k(table, LinearModel(weights), 1, counter=scan_counter)
        assert onion_counter.tuples_examined < scan_counter.tuples_examined / 5

    def test_top_k_work_grows_with_k(self, index):
        weights = {"x1": 0.5, "x2": 0.3, "x3": 0.2}
        small, large = CostCounter(), CostCounter()
        index.top_k(weights, 1, counter=small)
        index.top_k(weights, 10, counter=large)
        assert large.tuples_examined > small.tuples_examined

    def test_missing_weight_rejected(self, index):
        with pytest.raises(IndexError_):
            index.top_k({"x1": 1.0}, 1)

    def test_extra_weight_rejected(self, index):
        with pytest.raises(IndexError_):
            index.top_k({"x1": 1.0, "x2": 1.0, "x3": 1.0, "x9": 1.0}, 1)

    def test_k_positive(self, index):
        with pytest.raises(IndexError_):
            index.top_k({"x1": 1.0, "x2": 1.0, "x3": 1.0}, 0)

    def test_k_larger_than_table(self, table):
        small = generate_gaussian_table(5, 2, seed=3)
        index = OnionIndex(small)
        result = index.top_k({"x1": 1.0, "x2": 0.0}, 10)
        assert len(result) == 5


class TestIncrementalInserts:
    def test_inserted_extreme_point_is_found(self, table):
        index = OnionIndex(table, max_layers=4)
        weights = {"x1": 1.0, "x2": 0.0, "x3": 0.0}
        row = index.insert({"x1": 99.0, "x2": 0.0, "x3": 0.0})
        top = index.top_k(weights, 1)
        assert top[0][0] == row
        assert top[0][1] == pytest.approx(99.0)
        assert index.n_pending == 1

    def test_queries_match_oracle_with_pending_buffer(self, table):
        rng = np.random.default_rng(5)
        index = OnionIndex(table, max_layers=4)
        matrix = table.matrix()
        inserted = rng.normal(size=(20, 3))
        for point in inserted:
            index.insert({f"x{i + 1}": float(point[i]) for i in range(3)})
        combined = np.vstack([matrix, inserted])
        weights = np.array([0.5, -0.3, 0.2])
        expected_rows = np.argsort(-(combined @ weights), kind="stable")[:10]
        actual = index.top_k(
            {"x1": 0.5, "x2": -0.3, "x3": 0.2}, 10
        )
        assert [row for row, _ in actual] == [int(r) for r in expected_rows]

    def test_rebuild_clears_buffer_and_stays_exact(self, table):
        rng = np.random.default_rng(6)
        index = OnionIndex(table, max_layers=4)
        inserted = rng.normal(size=(15, 3))
        for point in inserted:
            index.insert({f"x{i + 1}": float(point[i]) for i in range(3)})
        before = index.top_k({"x1": 0.4, "x2": 0.4, "x3": 0.2}, 5)
        index.rebuild()
        assert index.n_pending == 0
        after = index.top_k({"x1": 0.4, "x2": 0.4, "x3": 0.2}, 5)
        assert [row for row, _ in before] == [row for row, _ in after]
        for (_, a), (_, b) in zip(before, after):
            assert a == pytest.approx(b)

    def test_rebuild_restores_pruning(self, table):
        index = OnionIndex(table, max_layers=4)
        for _ in range(50):
            index.insert({"x1": 0.0, "x2": 0.0, "x3": 0.0})
        from repro.metrics.counters import CostCounter

        buffered = CostCounter()
        index.top_k({"x1": 1.0, "x2": 0.0, "x3": 0.0}, 1, counter=buffered)
        index.rebuild()
        rebuilt = CostCounter()
        index.top_k({"x1": 1.0, "x2": 0.0, "x3": 0.0}, 1, counter=rebuilt)
        assert rebuilt.tuples_examined < buffered.tuples_examined

    def test_insert_validates_attributes(self, table):
        index = OnionIndex(table, max_layers=2)
        with pytest.raises(IndexError_):
            index.insert({"x1": 1.0})
