"""SLO burn rates: window math, multi-window AND, transition events."""

from __future__ import annotations

import pytest

from repro.metrics.registry import MetricsRegistry, merge_snapshots
from repro.telemetry.events import EventLog
from repro.telemetry.slo import (
    DEFAULT_SLOS,
    STATUS_CRITICAL,
    STATUS_OK,
    STATUS_WARNING,
    SLOMonitor,
    SLOSpec,
)


def _snapshot(
    requests=0.0,
    errors=0.0,
    shed=0.0,
    latencies=(),
) -> dict:
    """A merged-registry-shaped snapshot built from real histograms."""
    registry = MetricsRegistry()
    for _ in range(int(requests)):
        registry.inc("frontend.requests")
    for _ in range(int(errors)):
        registry.inc("frontend.errors")
    for _ in range(int(shed)):
        registry.inc("frontend.shed_queue")
    for value in latencies:
        registry.observe("frontend.request_seconds", value)
    return registry.snapshot()


class TestSpec:
    def test_budget(self):
        spec = SLOSpec(name="a", kind="availability", objective=0.999)
        assert spec.budget == pytest.approx(0.001)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kind": "uptime", "objective": 0.9},
            {"kind": "availability", "objective": 0.0},
            {"kind": "availability", "objective": 1.0},
            {"kind": "latency", "objective": 0.9},  # no threshold_s
            {"kind": "availability", "objective": 0.9, "windows_s": ()},
            {
                "kind": "availability",
                "objective": 0.9,
                "burn_warning": 5.0,
                "burn_critical": 2.0,
            },
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SLOSpec(name="bad", **kwargs)

    def test_defaults_cover_three_kinds(self):
        assert {spec.kind for spec in DEFAULT_SLOS} == {
            "availability", "latency", "shed_rate",
        }


class TestBurnMath:
    def _monitor(self, **kwargs) -> SLOMonitor:
        spec = SLOSpec(
            name="availability",
            kind="availability",
            objective=0.99,
            windows_s=(60.0,),
            **kwargs,
        )
        return SLOMonitor(specs=(spec,))

    def test_burn_one_at_budget_rate(self):
        monitor = self._monitor()
        monitor.observe(_snapshot(requests=0, errors=0), now=1000.0)
        # 1000 requests, 10 errors -> bad fraction 0.01 = exactly the
        # 1% budget -> burn 1.0.
        monitor.observe(_snapshot(requests=1000, errors=10), now=1060.0)
        verdict = monitor.evaluate(now=1060.0)
        result = verdict["slos"][0]
        assert result["burn_rate"] == pytest.approx(1.0)
        assert result["status"] == STATUS_OK
        assert result["windows"][0]["bad"] == pytest.approx(10.0)
        assert result["windows"][0]["total"] == pytest.approx(1000.0)

    def test_burn_scales_with_error_rate(self):
        monitor = self._monitor()
        monitor.observe(_snapshot(), now=1000.0)
        monitor.observe(_snapshot(requests=100, errors=25), now=1060.0)
        result = monitor.evaluate(now=1060.0)["slos"][0]
        assert result["burn_rate"] == pytest.approx(25.0)
        assert result["status"] == STATUS_CRITICAL

    def test_no_traffic_is_ok(self):
        monitor = self._monitor()
        monitor.observe(_snapshot(), now=1000.0)
        monitor.observe(_snapshot(), now=1060.0)
        result = monitor.evaluate(now=1060.0)["slos"][0]
        assert result["burn_rate"] == 0.0
        assert result["status"] == STATUS_OK

    def test_single_sample_is_ok(self):
        monitor = self._monitor()
        monitor.observe(_snapshot(requests=10, errors=10), now=1000.0)
        assert monitor.evaluate(now=1000.0)["status"] == STATUS_OK

    def test_shed_rate_uses_arrival_total(self):
        """frontend.requests counts every arrival including shed ones,
        so 10 sheds out of 100 arrivals is a 10% shed fraction — not
        10/110."""
        spec = SLOSpec(
            name="shed_rate",
            kind="shed_rate",
            objective=0.9,
            windows_s=(60.0,),
        )
        monitor = SLOMonitor(specs=(spec,))
        monitor.observe(_snapshot(), now=0.0)
        monitor.observe(_snapshot(requests=100, shed=10), now=60.0)
        window = monitor.evaluate(now=60.0)["slos"][0]["windows"][0]
        assert window["bad"] == pytest.approx(10.0)
        assert window["total"] == pytest.approx(100.0)

    def test_latency_bucket_math(self):
        spec = SLOSpec(
            name="lat",
            kind="latency",
            objective=0.9,
            threshold_s=0.25,
            windows_s=(60.0,),
        )
        monitor = SLOMonitor(specs=(spec,))
        monitor.observe(_snapshot(), now=0.0)
        # 8 fast (50 ms), 2 slow (1 s): 20% over threshold against a
        # 10% budget -> burn 2.0.
        monitor.observe(
            _snapshot(requests=10, latencies=[0.05] * 8 + [1.0] * 2),
            now=60.0,
        )
        result = monitor.evaluate(now=60.0)["slos"][0]
        assert result["burn_rate"] == pytest.approx(2.0)
        assert result["status"] == STATUS_WARNING


class TestMultiWindow:
    def _monitor(self) -> SLOMonitor:
        spec = SLOSpec(
            name="availability",
            kind="availability",
            objective=0.99,
            windows_s=(60.0, 600.0),
        )
        return SLOMonitor(specs=(spec,))

    def test_short_spike_over_quiet_long_window_does_not_page(self):
        """The multi-window AND: a burst that burns the short window hot
        but leaves the long window healthy stays below critical."""
        monitor = self._monitor()
        monitor.observe(_snapshot(), now=0.0)
        # Nine minutes of clean traffic...
        monitor.observe(_snapshot(requests=10000), now=540.0)
        # ...then a one-minute error burst.
        monitor.observe(
            _snapshot(requests=10100, errors=50), now=600.0
        )
        result = monitor.evaluate(now=600.0)["slos"][0]
        by_window = {w["window_s"]: w["burn_rate"] for w in result["windows"]}
        assert by_window[60.0] > 10.0  # short window burns hot
        assert by_window[600.0] < 1.0  # long window absorbs it
        assert result["status"] == STATUS_OK

    def test_sustained_burn_pages(self):
        monitor = self._monitor()
        monitor.observe(_snapshot(), now=0.0)
        for minute in range(1, 11):
            monitor.observe(
                _snapshot(
                    requests=1000 * minute, errors=200 * minute
                ),
                now=60.0 * minute,
            )
        result = monitor.evaluate(now=600.0)["slos"][0]
        assert all(w["burn_rate"] > 10.0 for w in result["windows"])
        assert result["status"] == STATUS_CRITICAL


class TestTransitions:
    def test_breach_and_recovery_emit_once(self):
        log = EventLog()
        spec = SLOSpec(
            name="availability",
            kind="availability",
            objective=0.99,
            windows_s=(60.0,),
        )
        monitor = SLOMonitor(specs=(spec,), event_log=log)
        monitor.observe(_snapshot(), now=0.0)
        monitor.observe(_snapshot(requests=100, errors=50), now=60.0)
        monitor.evaluate(now=60.0)
        monitor.evaluate(now=60.0)  # steady state: no re-fire
        monitor.observe(_snapshot(requests=10100, errors=50), now=120.0)
        monitor.evaluate(now=120.0)
        monitor.evaluate(now=120.0)
        names = [e["event"] for e in log.snapshot()]
        assert names == ["slo.breach", "slo.recovered"]
        breach = log.snapshot()[0]
        assert breach["severity"] == "error"
        assert breach["attrs"]["slo"] == "availability"
        assert breach["attrs"]["previous"] == STATUS_OK


class TestExport:
    def test_gauges_cover_every_spec_and_window(self):
        monitor = SLOMonitor()
        monitor.observe(_snapshot(), now=0.0)
        monitor.observe(_snapshot(requests=10), now=60.0)
        gauges = monitor.gauges(now=60.0)
        for spec in DEFAULT_SLOS:
            assert gauges[f"slo.{spec.name}.objective"] == spec.objective
            assert f"slo.{spec.name}.status" in gauges
            for window_s in spec.windows_s:
                assert (
                    f"slo.{spec.name}.burn_rate_{int(window_s)}s" in gauges
                )

    def test_verdict_document_shape(self):
        monitor = SLOMonitor()
        monitor.observe(_snapshot(requests=5, latencies=[0.01] * 5))
        verdict = monitor.verdict()
        assert verdict["status"] in ("ok", "warning", "critical")
        assert len(verdict["slos"]) == len(DEFAULT_SLOS)
        assert len(verdict["specs"]) == len(DEFAULT_SLOS)
        assert set(verdict["traffic"]) >= {
            "qps", "availability", "shed_fraction", "p50_ms", "p99_ms",
        }
        assert verdict["samples"] == 1


class TestMergeSnapshotsGaugeAgg:
    """PR-10 satellite: merged gauges carry min/max/avg hints."""

    def _snapshots(self):
        values = (0.2, 0.8, 0.5)
        snapshots = []
        for value in values:
            registry = MetricsRegistry()
            registry.gauge("service.cache_hit_rate", value)
            registry.inc("service.queries", 10)
            snapshots.append(registry.snapshot())
        return snapshots

    def test_gauge_agg_min_max_avg(self):
        merged = merge_snapshots(self._snapshots())
        agg = merged["gauge_agg"]["service.cache_hit_rate"]
        assert agg["min"] == pytest.approx(0.2)
        assert agg["max"] == pytest.approx(0.8)
        assert agg["avg"] == pytest.approx(0.5)
        assert agg["n"] == 3
        # The flat gauges map keeps the average (back-compat).
        assert merged["gauges"]["service.cache_hit_rate"] == pytest.approx(
            0.5
        )

    def test_single_contributor_has_no_agg_entry(self):
        registry = MetricsRegistry()
        registry.gauge("solo.gauge", 1.5)
        merged = merge_snapshots([registry.snapshot()])
        assert "solo.gauge" not in merged.get("gauge_agg", {})
        assert merged["gauges"]["solo.gauge"] == pytest.approx(1.5)

    def test_prometheus_renders_agg_labels(self):
        from repro.telemetry.prometheus import render_prometheus

        text = render_prometheus(merge_snapshots(self._snapshots()))
        assert 'service_cache_hit_rate{agg="avg"} 0.5' in text
        assert 'service_cache_hit_rate{agg="min"} 0.2' in text
        assert 'service_cache_hit_rate{agg="max"} 0.8' in text
