"""Tests for the multi-modal HPS fusion entry point."""

from __future__ import annotations

import pytest

from repro.apps import epidemiology
from repro.apps.epidemiology import multimodal_risk_query, wet_then_dry_degree
from repro.synth.weather import generate_station_grid


@pytest.fixture(scope="module")
def scenario():
    return epidemiology.build_scenario(shape=(64, 64), seed=7)


@pytest.fixture(scope="module")
def stations():
    return generate_station_grid(2, 2, 200, seed=8)


class TestWetThenDry:
    def test_degree_in_unit_interval(self, stations):
        for series in stations.values():
            assert 0.0 <= wet_then_dry_degree(series) <= 1.0

    def test_ideal_season_scores_one(self):
        import numpy as np

        from repro.data.series import TimeSeries

        rain = np.concatenate([np.full(50, 5.0), np.zeros(50)])
        series = TimeSeries(
            "ideal", np.arange(100.0),
            {"rain_mm": rain, "temperature_c": np.full(100, 20.0)},
        )
        assert wet_then_dry_degree(series) == 1.0

    def test_all_dry_season_scores_zero(self):
        import numpy as np

        from repro.data.series import TimeSeries

        series = TimeSeries(
            "dry", np.arange(100.0),
            {"rain_mm": np.zeros(100), "temperature_c": np.full(100, 20.0)},
        )
        assert wet_then_dry_degree(series) == 0.0


class TestMultimodalRiskQuery:
    def test_top_k_returns_valid_cells(self, scenario, stations):
        query = multimodal_risk_query(scenario, stations, (2, 2))
        top = query.top_k(5)
        assert len(top) == 5
        for (row, col), score in top:
            assert 0 <= row < 64 and 0 <= col < 64
            assert 0.0 <= score <= 1.0

    def test_weather_weight_shifts_answers(self, scenario, stations):
        raster_heavy = multimodal_risk_query(
            scenario, stations, (2, 2), risk_weight=100.0
        ).top_k(10)
        weather_heavy = multimodal_risk_query(
            scenario, stations, (2, 2), weather_weight=100.0
        ).top_k(10)
        raster_cells = {cell for cell, _ in raster_heavy}
        weather_cells = {cell for cell, _ in weather_heavy}
        assert raster_cells != weather_cells

    def test_weather_heavy_answers_live_in_wettest_region(
        self, scenario, stations
    ):
        degrees = {
            key: wet_then_dry_degree(series)
            for key, series in stations.items()
        }
        best_region = max(degrees, key=degrees.get)
        top = multimodal_risk_query(
            scenario, stations, (2, 2), weather_weight=1000.0
        ).top_k(5)
        for (row, col), _ in top:
            region = (row // 32, col // 32)
            assert region == best_region

    def test_station_count_validated(self, scenario, stations):
        with pytest.raises(ValueError):
            multimodal_risk_query(scenario, stations, (3, 3))
