"""Tests for the progressive retrieval engine — the paper's core claim:
progressive execution returns the exact top-K for far less work."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import RasterRetrievalEngine
from repro.core.query import TopKQuery
from repro.data.raster import RasterLayer, RasterStack
from repro.exceptions import QueryError
from repro.metrics.efficiency import EfficiencyModel
from repro.models.knowledge import KnowledgeModel
from repro.models.linear import LinearModel


@pytest.fixture(scope="module")
def engine(request):
    from repro.synth.landsat import generate_scene
    from repro.synth.terrain import generate_dem

    shape = (96, 96)
    dem = generate_dem(shape, seed=11)
    stack = generate_scene(shape, seed=12, terrain=dem)
    stack.add(dem)
    return RasterRetrievalEngine(stack, leaf_size=8)


@pytest.fixture(scope="module")
def model():
    from repro.models.linear import hps_risk_model

    return hps_risk_model()


def _score_multiset(result):
    return sorted(round(score, 9) for score in result.scores)


class TestExactness:
    @given(
        k=st.integers(1, 40),
        maximize=st.booleans(),
        use_tiles=st.booleans(),
        use_levels=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_all_strategies_return_exhaustive_answers(
        self, engine, model, k, maximize, use_tiles, use_levels
    ):
        query = TopKQuery(model=model, k=k, maximize=maximize)
        baseline = engine.exhaustive_top_k(query)
        result = engine.progressive_top_k(
            query, use_tiles=use_tiles, use_model_levels=use_levels
        )
        assert _score_multiset(result) == _score_multiset(baseline)

    def test_answers_carry_true_scores(self, engine, model):
        query = TopKQuery(model=model, k=5)
        result = engine.progressive_top_k(query)
        for answer in result.answers:
            point = {
                name: engine.stack[name].values[answer.row, answer.col]
                for name in model.attributes
            }
            assert model.evaluate(point) == pytest.approx(answer.score)

    def test_region_restricted_query(self, engine, model):
        query = TopKQuery(model=model, k=7, region=(10, 10, 50, 60))
        baseline = engine.exhaustive_top_k(query)
        result = engine.progressive_top_k(query)
        assert _score_multiset(result) == _score_multiset(baseline)
        for row, col in result.locations:
            assert 10 <= row < 50 and 10 <= col < 60

    def test_region_outside_grid_rejected(self, engine, model):
        query = TopKQuery(model=model, k=1, region=(500, 500, 600, 600))
        with pytest.raises(QueryError):
            engine.exhaustive_top_k(query)

    def test_negative_coefficients(self, engine):
        model = LinearModel(
            {"tm_band4": -1.0, "elevation": 0.5}, name="negative"
        )
        query = TopKQuery(model=model, k=10)
        baseline = engine.exhaustive_top_k(query)
        result = engine.progressive_top_k(query)
        assert _score_multiset(result) == _score_multiset(baseline)

    def test_custom_term_order_still_exact(self, engine, model):
        query = TopKQuery(model=model, k=10)
        baseline = engine.exhaustive_top_k(query)
        worst_order = ("elevation", "tm_band7", "tm_band5", "tm_band4")
        result = engine.progressive_top_k(query, term_order=worst_order)
        assert _score_multiset(result) == _score_multiset(baseline)

    def test_bad_term_order_rejected(self, engine, model):
        query = TopKQuery(model=model, k=1)
        with pytest.raises(QueryError):
            engine.progressive_top_k(query, term_order=("tm_band4",))


class TestWorkReduction:
    def test_both_mechanisms_beat_exhaustive(self, engine, model):
        query = TopKQuery(model=model, k=10)
        baseline = engine.exhaustive_top_k(query)
        result = engine.progressive_top_k(query)
        assert result.counter.total_work < baseline.counter.total_work / 3

    def test_ablation_grid(self, engine, model):
        """Section 4.2: combined beats either mechanism alone."""
        query = TopKQuery(model=model, k=10)
        exhaustive = engine.exhaustive_top_k(query)
        model_only = engine.progressive_top_k(query, use_tiles=False)
        data_only = engine.progressive_top_k(query, use_model_levels=False)
        both = engine.progressive_top_k(query)
        efficiency = EfficiencyModel.from_ablation(
            exhaustive.counter, model_only.counter, data_only.counter,
            both.counter,
        )
        assert efficiency.pm > 1.0
        assert efficiency.pd > 1.0
        assert efficiency.combined > max(efficiency.pm, efficiency.pd)

    def test_audit_records_pruning(self, engine, model):
        query = TopKQuery(model=model, k=5)
        result = engine.progressive_top_k(query)
        assert result.audit.tiles_screened > 0
        assert result.audit.tiles_pruned > 0
        assert result.audit.tile_prune_fraction > 0.0

    def test_strategy_labels(self, engine, model):
        query = TopKQuery(model=model, k=3)
        assert engine.exhaustive_top_k(query).strategy == "exhaustive"
        assert engine.progressive_top_k(query).strategy == "both"
        assert (
            engine.progressive_top_k(query, use_tiles=False).strategy
            == "model-progressive"
        )
        assert (
            engine.progressive_top_k(query, use_model_levels=False).strategy
            == "data-progressive"
        )
        assert (
            engine.progressive_top_k(
                query, use_tiles=False, use_model_levels=False
            ).strategy
            == "none"
        )


class TestHeuristicPruning:
    def test_unknown_pruning_mode_rejected(self, engine, model):
        query = TopKQuery(model=model, k=1)
        with pytest.raises(QueryError):
            engine.progressive_top_k(query, pruning="magic")

    def test_full_margin_behaves_like_sound(self, engine, model):
        """margin covering the whole spread keeps every true answer on
        this stack (symmetric enough envelopes)."""
        query = TopKQuery(model=model, k=10)
        baseline = engine.exhaustive_top_k(query)
        result = engine.progressive_top_k(
            query, pruning="heuristic", heuristic_margin=1.0
        )
        assert result.strategy == "both-heuristic"
        # Heuristic results are not guaranteed exact, but at full margin
        # on this data they should keep most of the answer set.
        overlap = set(result.locations) & set(baseline.locations)
        assert len(overlap) >= 8

    def test_tight_margin_saves_work(self, engine, model):
        query = TopKQuery(model=model, k=10)
        sound = engine.progressive_top_k(query)
        tight = engine.progressive_top_k(
            query, pruning="heuristic", heuristic_margin=0.2
        )
        assert tight.counter.total_work < sound.counter.total_work

    def test_negative_margin_rejected(self, engine, model):
        from repro.exceptions import PlanError

        query = TopKQuery(model=model, k=1)
        with pytest.raises(PlanError):
            engine.progressive_top_k(
                query, pruning="heuristic", heuristic_margin=-0.5
            )


class TestModelCompatibility:
    def _knowledge_model(self) -> KnowledgeModel:
        from repro.models.fuzzy import sigmoid_membership
        from repro.models.knowledge import FuzzyRule, RulePredicate

        return KnowledgeModel(
            [
                FuzzyRule(
                    "wet",
                    (
                        RulePredicate(
                            "tm_band4", sigmoid_membership(80.0, 0.1)
                        ),
                    ),
                )
            ]
        )

    def test_knowledge_model_cannot_take_levels(self, engine):
        """Knowledge models can't do progressive levels; requesting them
        must fail loudly, not silently degrade."""
        query = TopKQuery(model=self._knowledge_model(), k=3)
        with pytest.raises(QueryError):
            engine.progressive_top_k(query, use_tiles=False)

    def test_knowledge_model_prunes_through_tiles(self, engine):
        """Interval-capable knowledge models run the tile screen exactly
        (the third model family joining the progressive framework)."""
        query = TopKQuery(model=self._knowledge_model(), k=5)
        baseline = engine.exhaustive_top_k(query)
        result = engine.progressive_top_k(query, use_model_levels=False)
        assert _score_multiset(result) == _score_multiset(baseline)
        assert result.counter.total_work < baseline.counter.total_work

    def test_model_attribute_missing_from_stack(self, engine):
        model = LinearModel({"nonexistent": 1.0})
        query = TopKQuery(model=model, k=1)
        with pytest.raises(QueryError):
            engine.progressive_top_k(query, use_tiles=False)


class TestSmallGrids:
    def test_single_cell_grid(self):
        stack = RasterStack()
        stack.add(RasterLayer("a", np.array([[5.0]])))
        engine = RasterRetrievalEngine(stack, leaf_size=4)
        query = TopKQuery(model=LinearModel({"a": 2.0}), k=1)
        result = engine.progressive_top_k(query)
        assert result.locations == [(0, 0)]
        assert result.scores == [10.0]

    def test_k_larger_than_grid(self):
        stack = RasterStack()
        stack.add(RasterLayer("a", np.arange(4.0).reshape(2, 2)))
        engine = RasterRetrievalEngine(stack, leaf_size=2)
        query = TopKQuery(model=LinearModel({"a": 1.0}), k=100)
        result = engine.progressive_top_k(query)
        assert len(result) == 4

    def test_constant_layer_ties(self):
        stack = RasterStack()
        stack.add(RasterLayer("a", np.full((8, 8), 3.0)))
        engine = RasterRetrievalEngine(stack, leaf_size=4)
        query = TopKQuery(model=LinearModel({"a": 1.0}), k=5)
        baseline = engine.exhaustive_top_k(query)
        result = engine.progressive_top_k(query)
        assert _score_multiset(result) == _score_multiset(baseline)


class TestAnytimeRetrieval:
    def test_unbudgeted_run_has_no_regret_field(self, engine, model):
        result = engine.progressive_top_k(TopKQuery(model=model, k=5))
        assert result.regret_bound is None

    def test_huge_budget_is_provably_exact(self, engine, model):
        query = TopKQuery(model=model, k=10)
        result = engine.progressive_top_k(query, work_budget=10**9)
        assert result.regret_bound == 0.0
        assert result.strategy.endswith("-anytime")
        baseline = engine.exhaustive_top_k(query)
        assert _score_multiset(result) == _score_multiset(baseline)

    def test_regret_shrinks_with_budget(self, engine, model):
        query = TopKQuery(model=model, k=10)
        regrets = []
        for budget in (300, 3000, 10**9):
            result = engine.progressive_top_k(query, work_budget=budget)
            assert result.regret_bound is not None
            assert result.regret_bound >= 0.0
            regrets.append(result.regret_bound)
        assert regrets[0] >= regrets[-1]
        assert regrets[-1] == 0.0

    def test_regret_bound_is_sound(self, engine, model):
        """No location OUTSIDE the returned set may beat the returned
        K-th best by more than the reported regret: unexamined cells are
        capped by the frontier bound, and examined-but-evicted cells
        scored below the K-th best by construction."""
        query = TopKQuery(model=model, k=10)
        scores = model.evaluate_batch(
            {
                name: engine.stack[name].values
                for name in model.attributes
            }
        )
        for budget in (300, 2000, 8000):
            result = engine.progressive_top_k(query, work_budget=budget)
            if not result.answers:
                continue
            kth = min(result.scores)
            retrieved = set(result.locations)
            best_outside = max(
                float(scores[row, col])
                for row in range(scores.shape[0])
                for col in range(scores.shape[1])
                if (row, col) not in retrieved
            )
            assert best_outside <= kth + result.regret_bound + 1e-6

    def test_validation(self, engine, model):
        query = TopKQuery(model=model, k=3)
        with pytest.raises(QueryError):
            engine.progressive_top_k(query, work_budget=0)
        with pytest.raises(QueryError):
            engine.progressive_top_k(
                query, use_tiles=False, work_budget=100
            )
