"""Tests for the abstraction ladder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.abstraction.levels import AbstractionLadder, AbstractionLevel
from repro.abstraction.semantics import ThresholdClassifier
from repro.data.raster import RasterLayer
from repro.synth.landsat import generate_band


@pytest.fixture(scope="module")
def ladder():
    band = generate_band((40, 56), seed=7)
    return AbstractionLadder(band, ThresholdClassifier([70.0, 90.0]), block_size=8)


class TestAbstractionLadder:
    def test_volumes_strictly_decrease_up_the_ladder(self, ladder):
        """The paper's 'lower data volumes at the expense of fidelity'."""
        volumes = [ladder.data_volume(level) for level in AbstractionLevel]
        assert volumes == sorted(volumes, reverse=True)
        assert len(set(volumes)) == len(volumes)

    def test_raw_volume_is_layer_size(self, ladder):
        assert ladder.data_volume(AbstractionLevel.RAW) == 40 * 56

    def test_feature_blocks_cover_layer(self, ladder):
        features = ladder.features()
        assert set(features) == {(r, c) for r in range(5) for c in range(7)}

    def test_semantics_labels_valid(self, ladder):
        labels = ladder.semantics()
        assert labels.shape == (5, 7)
        assert labels.min() >= 0
        assert labels.max() <= 2

    def test_metadata_summarizes_layer(self, ladder):
        metadata = ladder.metadata()
        assert metadata.shape == (40, 56)
        assert metadata.minimum <= metadata.mean <= metadata.maximum

    def test_caching_returns_same_objects(self, ladder):
        assert ladder.features() is ladder.features()
        assert ladder.semantics() is ladder.semantics()

    def test_block_size_validation(self):
        layer = RasterLayer("x", np.zeros((8, 8)))
        with pytest.raises(ValueError):
            AbstractionLadder(layer, ThresholdClassifier([1.0]), block_size=0)

    def test_levels_ordering(self):
        assert AbstractionLevel.RAW < AbstractionLevel.FEATURE
        assert AbstractionLevel.SEMANTIC < AbstractionLevel.METADATA
