"""Tests for the on-disk memory-mapped archive store."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import RasterRetrievalEngine
from repro.core.query import TopKQuery
from repro.data.archive import Archive
from repro.data.catalog import CatalogEntry, Modality
from repro.data.raster import RasterLayer
from repro.data.series import DepthSeries, TimeSeries
from repro.data.store import (
    ArchiveWriter,
    DiskArchive,
    MemmapRasterLayer,
    ingest_synthetic,
    open_archive,
    read_manifest,
    synthetic_stack,
)
from repro.data.table import Table
from repro.exceptions import ArchiveError
from repro.models.linear import LinearModel


@pytest.fixture()
def archive() -> Archive:
    built = Archive("stored")
    rng = np.random.default_rng(13)
    built.add(
        RasterLayer("dem", rng.standard_normal((130, 97))),
        CatalogEntry(
            "dem", Modality.ELEVATION,
            description="synthetic terrain",
            tags={"region": "four_corners"},
            units="m",
        ),
    )
    built.add(RasterLayer("scene", rng.standard_normal((130, 97))))
    built.add(
        TimeSeries(
            "station",
            np.arange(30.0),
            {"rain_mm": rng.random(30), "temperature_c": rng.random(30)},
        )
    )
    built.add(
        DepthSeries(
            "well", np.arange(0.0, 10.0, 0.5), {"gamma_ray": rng.random(20)}
        )
    )
    built.add(Table("tuples", {"x": rng.random(7), "y": rng.random(7)}))
    return built


def answers_and_counters(result):
    return (
        [(a.row, a.col, a.score) for a in result.answers],
        result.counter.data_points,
        result.counter.partial_evals,
        result.counter.nodes_visited,
    )


class TestRoundTrip:
    def test_everything_survives(self, archive, tmp_path):
        ArchiveWriter.create(tmp_path / "store", archive)
        loaded = open_archive(tmp_path / "store")

        assert isinstance(loaded, DiskArchive)
        assert loaded.name == "stored"
        assert loaded.names() == archive.names()
        for name in ("dem", "scene"):
            assert np.array_equal(
                loaded.raster(name).values, archive.raster(name).values
            )
        assert np.array_equal(
            loaded.series("station").axis, archive.series("station").axis
        )
        assert np.array_equal(
            loaded.series("station").values("rain_mm"),
            archive.series("station").values("rain_mm"),
        )
        assert np.array_equal(
            loaded.depth_series("well").values("gamma_ray"),
            archive.depth_series("well").values("gamma_ray"),
        )
        assert np.array_equal(
            loaded.table("tuples").column("x"),
            archive.table("tuples").column("x"),
        )

    def test_catalog_survives(self, archive, tmp_path):
        ArchiveWriter.create(tmp_path / "store", archive)
        loaded = open_archive(tmp_path / "store")

        entry = loaded.entry("dem")
        assert entry.modality is Modality.ELEVATION
        assert entry.tags == {"region": "four_corners"}
        assert entry.units == "m"
        assert loaded.find(region="four_corners") == ["dem"]

    def test_rasters_are_memmapped(self, archive, tmp_path):
        ArchiveWriter.create(tmp_path / "store", archive)
        loaded = open_archive(tmp_path / "store")

        layer = loaded.raster("dem")
        assert isinstance(layer, MemmapRasterLayer)
        assert isinstance(layer.values, np.memmap)
        assert not layer.values.flags.writeable

    def test_generation_starts_at_manifest_value(self, archive, tmp_path):
        ArchiveWriter.create(tmp_path / "store", archive)
        loaded = open_archive(tmp_path / "store")

        assert loaded.generation == 0
        assert loaded.mutations_since(0) == []

    def test_query_answers_bit_identical(self, archive, tmp_path):
        ArchiveWriter.create(tmp_path / "store", archive)
        loaded = open_archive(tmp_path / "store")
        model = LinearModel({"dem": 1.0, "scene": -0.5})
        query = TopKQuery(model=model, k=5)

        memory = RasterRetrievalEngine(
            archive.stack(["dem", "scene"]), leaf_size=16
        )
        mapped = RasterRetrievalEngine(
            loaded.stack(["dem", "scene"]), leaf_size=16
        )

        assert answers_and_counters(
            memory.progressive_top_k(query)
        ) == answers_and_counters(mapped.progressive_top_k(query))

    def test_refuses_nonempty_directory(self, archive, tmp_path):
        (tmp_path / "store").mkdir()
        (tmp_path / "store" / "junk.txt").write_text("x")
        with pytest.raises(ArchiveError, match="non-empty"):
            ArchiveWriter.create(tmp_path / "store", archive)


class TestRoundTripProperty:
    @settings(max_examples=20, deadline=None)
    @given(
        rows=st.integers(min_value=1, max_value=40),
        cols=st.integers(min_value=1, max_value=40),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_values_and_answers_round_trip(
        self, rows, cols, seed, tmp_path_factory
    ):
        rng = np.random.default_rng(seed)
        source = Archive("prop")
        source.add(RasterLayer("a", rng.standard_normal((rows, cols))))
        source.add(RasterLayer("b", rng.standard_normal((rows, cols))))
        root = tmp_path_factory.mktemp("prop_store") / "store"
        ArchiveWriter.create(root, source)
        loaded = open_archive(root)

        for name in ("a", "b"):
            assert np.array_equal(
                loaded.raster(name).values, source.raster(name).values
            )

        query = TopKQuery(
            model=LinearModel({"a": 1.0, "b": -1.0}),
            k=min(3, rows * cols),
        )
        memory = RasterRetrievalEngine(source.stack(["a", "b"]), leaf_size=4)
        mapped = RasterRetrievalEngine(loaded.stack(["a", "b"]), leaf_size=4)
        assert answers_and_counters(
            memory.progressive_top_k(query)
        ) == answers_and_counters(mapped.progressive_top_k(query))


class TestCorruption:
    def test_missing_manifest_fails_loudly(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(ArchiveError, match="missing manifest.json"):
            open_archive(tmp_path / "empty")

    def test_zero_byte_manifest_fails_loudly(self, archive, tmp_path):
        ArchiveWriter.create(tmp_path / "store", archive)
        (tmp_path / "store" / "manifest.json").write_text("")
        with pytest.raises(ArchiveError, match="corrupt store manifest"):
            open_archive(tmp_path / "store")

    def test_truncated_manifest_fails_loudly(self, archive, tmp_path):
        ArchiveWriter.create(tmp_path / "store", archive)
        target = tmp_path / "store" / "manifest.json"
        text = target.read_text()
        target.write_text(text[: len(text) // 2])
        with pytest.raises(ArchiveError, match="corrupt store manifest"):
            open_archive(tmp_path / "store")

    def test_missing_keys_fail_loudly(self, archive, tmp_path):
        ArchiveWriter.create(tmp_path / "store", archive)
        target = tmp_path / "store" / "manifest.json"
        manifest = json.loads(target.read_text())
        del manifest["generation"]
        target.write_text(json.dumps(manifest))
        with pytest.raises(ArchiveError, match="missing keys"):
            open_archive(tmp_path / "store")

    def test_wrong_version_fails_loudly(self, archive, tmp_path):
        ArchiveWriter.create(tmp_path / "store", archive)
        target = tmp_path / "store" / "manifest.json"
        manifest = json.loads(target.read_text())
        manifest["format_version"] = 999
        target.write_text(json.dumps(manifest))
        with pytest.raises(ArchiveError, match="unsupported store format"):
            open_archive(tmp_path / "store")

    def test_missing_band_file_fails_loudly(self, archive, tmp_path):
        ArchiveWriter.create(tmp_path / "store", archive)
        (tmp_path / "store" / "bands" / "0" / "values.npy").unlink()
        with pytest.raises(ArchiveError, match="cannot map band"):
            open_archive(tmp_path / "store")

    def test_shape_mismatch_fails_loudly(self, archive, tmp_path):
        ArchiveWriter.create(tmp_path / "store", archive)
        target = tmp_path / "store" / "manifest.json"
        manifest = json.loads(target.read_text())
        manifest["items"][0]["rows"] = 9999
        target.write_text(json.dumps(manifest))
        with pytest.raises(ArchiveError, match="manifest says"):
            open_archive(tmp_path / "store")


class TestAppendRegion:
    def test_aggregates_bit_identical_to_rebuild(self, archive, tmp_path):
        ArchiveWriter.create(tmp_path / "store", archive)
        loaded = open_archive(tmp_path / "store")
        rng = np.random.default_rng(5)
        # Deliberately leaf-misaligned region.
        loaded.append_region(
            {"dem": rng.standard_normal((23, 31))}, (7, 3, 30, 34)
        )

        reopened = open_archive(tmp_path / "store")
        from repro.pyramid.quadtree import QuadTree

        incremental = QuadTree(loaded.raster("dem"), leaf_size=16)
        rebuilt = QuadTree(
            RasterLayer("dem", np.array(reopened.raster("dem").values)),
            leaf_size=16,
        )
        for depth in range(incremental.n_depths):
            assert np.array_equal(
                incremental.level_mins(depth), rebuilt.level_mins(depth)
            )
            assert np.array_equal(
                incremental.level_maxs(depth), rebuilt.level_maxs(depth)
            )
            assert np.array_equal(
                incremental.level_means(depth), rebuilt.level_means(depth)
            )

    def test_values_and_answers_after_append(self, archive, tmp_path):
        ArchiveWriter.create(tmp_path / "store", archive)
        loaded = open_archive(tmp_path / "store")
        rng = np.random.default_rng(5)
        block = rng.standard_normal((20, 30))
        loaded.append_region({"dem": block}, (10, 10, 30, 40))

        # In-process mapping sees the write immediately.
        assert np.array_equal(loaded.raster("dem").values[10:30, 10:40], block)

        expected_dem = np.array(archive.raster("dem").values)
        expected_dem[10:30, 10:40] = block
        twin = Archive("twin")
        twin.add(RasterLayer("dem", expected_dem))
        twin.add(RasterLayer("scene", archive.raster("scene").values))

        query = TopKQuery(
            model=LinearModel({"dem": 1.0, "scene": -0.5}), k=5
        )
        memory = RasterRetrievalEngine(
            twin.stack(["dem", "scene"]), leaf_size=16
        )
        reopened = open_archive(tmp_path / "store")
        mapped = RasterRetrievalEngine(
            reopened.stack(["dem", "scene"]), leaf_size=16
        )
        assert answers_and_counters(
            memory.progressive_top_k(query)
        ) == answers_and_counters(mapped.progressive_top_k(query))

    def test_records_region_scoped_mutation(self, archive, tmp_path):
        ArchiveWriter.create(tmp_path / "store", archive)
        loaded = open_archive(tmp_path / "store")
        loaded.append_region(
            {"dem": np.ones((4, 4))}, (0, 0, 4, 4)
        )
        assert loaded.generation == 1
        assert loaded.mutations_since(0) == [(1, (0, 0, 4, 4))]
        # Persisted generation matches the live one.
        assert read_manifest(tmp_path / "store")["generation"] == 1

    def test_rejects_bad_appends(self, archive, tmp_path):
        ArchiveWriter.create(tmp_path / "store", archive)
        loaded = open_archive(tmp_path / "store")
        with pytest.raises(ArchiveError, match="empty append region"):
            loaded.append_region({"dem": np.ones((0, 0))}, (5, 5, 5, 5))
        with pytest.raises(ArchiveError, match="outside band"):
            loaded.append_region({"dem": np.ones((4, 4))}, (128, 0, 132, 4))
        with pytest.raises(ArchiveError, match="has shape"):
            loaded.append_region({"dem": np.ones((3, 4))}, (0, 0, 4, 4))
        with pytest.raises(ArchiveError, match="non-finite"):
            loaded.append_region(
                {"dem": np.full((4, 4), np.nan)}, (0, 0, 4, 4)
            )
        with pytest.raises(ArchiveError, match="no band"):
            loaded.append_region({"nope": np.ones((4, 4))}, (0, 0, 4, 4))
        with pytest.raises(ArchiveError, match="expected raster"):
            loaded.append_region({"station": np.ones((4, 4))}, (0, 0, 4, 4))
        # Nothing above should have moved the generation.
        assert loaded.generation == 0


class TestAppendDays:
    def test_extends_series_on_disk_and_live(self, archive, tmp_path):
        ArchiveWriter.create(tmp_path / "store", archive)
        loaded = open_archive(tmp_path / "store")
        loaded.append_days(
            "station",
            np.array([30.0, 31.0]),
            {"rain_mm": np.array([1.0, 2.0]),
             "temperature_c": np.array([3.0, 4.0])},
        )

        assert loaded.series("station").axis.size == 32
        assert loaded.series("station").values("rain_mm")[-2:].tolist() == [
            1.0, 2.0,
        ]
        reopened = open_archive(tmp_path / "store")
        assert reopened.series("station").axis.size == 32

    def test_append_records_empty_region(self, archive, tmp_path):
        ArchiveWriter.create(tmp_path / "store", archive)
        loaded = open_archive(tmp_path / "store")
        loaded.append_days(
            "station",
            np.array([30.0]),
            {"rain_mm": np.array([1.0]), "temperature_c": np.array([2.0])},
        )
        assert loaded.mutations_since(0) == [(1, (0, 0, 0, 0))]

    def test_rejects_bad_extensions(self, archive, tmp_path):
        ArchiveWriter.create(tmp_path / "store", archive)
        loaded = open_archive(tmp_path / "store")
        with pytest.raises(ArchiveError, match="must start after"):
            loaded.append_days(
                "station",
                np.array([10.0]),
                {"rain_mm": np.array([1.0]),
                 "temperature_c": np.array([2.0])},
            )
        with pytest.raises(ArchiveError, match="must cover attributes"):
            loaded.append_days(
                "station", np.array([40.0]), {"rain_mm": np.array([1.0])}
            )
        with pytest.raises(ArchiveError, match="expected a series"):
            loaded.append_days(
                "dem", np.array([40.0]), {"rain_mm": np.array([1.0])}
            )


class TestSyntheticIngest:
    def test_disk_matches_in_memory_twin(self, tmp_path):
        ingest_synthetic(tmp_path / "syn", size=70, n_bands=3, seed=9)
        disk = open_archive(tmp_path / "syn")
        memory = synthetic_stack(70, n_bands=3, seed=9)
        assert set(disk.names()) == set(memory.names)
        for name in memory.names:
            assert np.array_equal(
                disk.raster(name).values, memory[name].values
            )

    def test_ingest_is_incremental_appends(self, tmp_path):
        writer = ingest_synthetic(tmp_path / "syn", size=32, n_bands=1)
        # One strip (32 < STRIP_ROWS) -> exactly one append generation.
        assert writer.generation == 1

    def test_served_answers_match_twin(self, tmp_path):
        ingest_synthetic(tmp_path / "syn", size=128, n_bands=2, seed=4)
        disk = open_archive(tmp_path / "syn")
        memory = synthetic_stack(128, n_bands=2, seed=4)
        query = TopKQuery(
            model=LinearModel({"band0": 1.0, "band1": -1.0}), k=5
        )
        mapped = RasterRetrievalEngine(
            disk.stack(["band0", "band1"]),
            leaf_size=disk.screen_leaf_size,
        )
        plain = RasterRetrievalEngine(memory.subset(["band0", "band1"]))
        assert answers_and_counters(
            mapped.progressive_top_k(query)
        ) == answers_and_counters(plain.progressive_top_k(query))


class TestMemmapLayer:
    def test_precomputed_aggregates_used_at_matching_leaf_size(
        self, archive, tmp_path
    ):
        ArchiveWriter.create(tmp_path / "store", archive, screen_leaf_size=16)
        loaded = open_archive(tmp_path / "store")
        layer = loaded.raster("dem")
        assert layer.quadtree_aggregates(16) is not None
        assert layer.quadtree_aggregates(8) is None

    def test_instrumented_reads_still_work(self, archive, tmp_path):
        from repro.metrics.counters import CostCounter

        ArchiveWriter.create(tmp_path / "store", archive)
        layer = open_archive(tmp_path / "store").raster("dem")
        counter = CostCounter()
        value = layer.read(3, 4, counter)
        assert value == archive.raster("dem").values[3, 4]
        window = layer.read_window(0, 0, 4, 4, counter)
        assert window.shape == (4, 4)
        gathered = layer.gather(
            np.array([0, 1]), np.array([2, 3]), counter
        )
        assert gathered.shape == (2,)
        assert counter.data_points == 1 + 16 + 2

    def test_create_empty_is_all_zero(self, tmp_path):
        ArchiveWriter.create_empty(
            tmp_path / "empty", "zeros", (40, 40), ["a", "b"]
        )
        loaded = open_archive(tmp_path / "empty")
        assert loaded.names() == ["a", "b"]
        assert float(np.abs(loaded.raster("a").values).max()) == 0.0
        # Zero aggregates are consistent: engine answers work immediately.
        query = TopKQuery(model=LinearModel({"a": 1.0}), k=1)
        engine = RasterRetrievalEngine(loaded.stack(["a"]))
        result = engine.progressive_top_k(query)
        assert result.answers[0].score == 0.0
