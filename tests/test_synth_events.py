"""Tests for event-occurrence synthesis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.raster import RasterLayer, RasterStack
from repro.synth.events import generate_occurrences, latent_risk_field


def _stack() -> RasterStack:
    rng = np.random.default_rng(1)
    stack = RasterStack()
    stack.add(RasterLayer("a", rng.random((30, 30))))
    stack.add(RasterLayer("b", rng.random((30, 30))))
    return stack


class TestLatentRiskField:
    def test_shape_matches_stack(self):
        field = latent_risk_field(_stack(), {"a": 0.7, "b": 0.3})
        assert field.shape == (30, 30)

    def test_standardization_makes_weights_relative(self):
        """Scaling a layer must not change the standardized field."""
        stack = _stack()
        field = latent_risk_field(stack, {"a": 1.0})
        scaled_stack = RasterStack()
        scaled_stack.add(RasterLayer("a", stack["a"].values * 100.0))
        scaled = latent_risk_field(scaled_stack, {"a": 1.0})
        assert np.allclose(field, scaled)

    def test_noise_requires_seed(self):
        with pytest.raises(ValueError):
            latent_risk_field(_stack(), {"a": 1.0}, noise_std=0.1)

    def test_noise_perturbs(self):
        stack = _stack()
        clean = latent_risk_field(stack, {"a": 1.0})
        noisy = latent_risk_field(stack, {"a": 1.0}, noise_std=0.5, seed=7)
        assert not np.allclose(clean, noisy)
        assert np.corrcoef(clean.reshape(-1), noisy.reshape(-1))[0, 1] > 0.7

    def test_empty_coefficients_rejected(self):
        with pytest.raises(ValueError):
            latent_risk_field(_stack(), {})


class TestGenerateOccurrences:
    def test_counts_are_non_negative_integers(self):
        field = latent_risk_field(_stack(), {"a": 1.0})
        occurrences = generate_occurrences(field, seed=2)
        values = occurrences.values
        assert values.min() >= 0
        assert np.allclose(values, values.astype(int))

    def test_high_risk_fires_more(self):
        rng = np.random.default_rng(3)
        field = rng.normal(size=(50, 50))
        occurrences = generate_occurrences(field, seed=4, base_rate=0.1).values
        top_quartile = field > np.quantile(field, 0.75)
        bottom_quartile = field < np.quantile(field, 0.25)
        assert occurrences[top_quartile].mean() > 3 * max(
            occurrences[bottom_quartile].mean(), 1e-9
        )

    def test_deterministic(self):
        field = latent_risk_field(_stack(), {"a": 1.0})
        first = generate_occurrences(field, seed=5)
        second = generate_occurrences(field, seed=5)
        assert np.array_equal(first.values, second.values)

    def test_accepts_raster_layer_input(self):
        layer = RasterLayer("risk", np.random.default_rng(0).random((10, 10)))
        occurrences = generate_occurrences(layer, seed=6)
        assert occurrences.shape == (10, 10)

    def test_base_rate_validation(self):
        with pytest.raises(ValueError):
            generate_occurrences(np.zeros((4, 4)), seed=1, base_rate=0.0)
