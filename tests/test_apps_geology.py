"""Tests for the geology riverbed application (Figure 4)."""

from __future__ import annotations

import pytest

from repro.apps import geology
from repro.metrics.counters import CostCounter
from repro.sproc.naive import naive_top_k
from repro.synth.welllog import LITHOLOGY_NAMES, WellLogParams


@pytest.fixture(scope="module")
def scenario():
    return geology.build_scenario(
        n_wells=15,
        total_depth_m=150.0,
        seed=5,
        params=WellLogParams(riverbed_probability=0.6),
    )


class TestRiverbedQuery:
    def test_query_dimensions(self, scenario):
        well = scenario.wells[0]
        query, runs = geology.riverbed_query(well)
        assert query.n_components == 3
        assert query.n_objects == len(runs)

    def test_adjacency_only_links_consecutive_runs(self, scenario):
        query, _ = geology.riverbed_query(scenario.wells[0])
        assert query.compatibility(0, 3, 4) == 1.0
        assert query.compatibility(0, 3, 5) == 0.0
        assert query.compatibility(0, 3, 3) == 0.0

    def test_textbook_sequence_scores_high(self, scenario):
        """A planted shale/sandstone/siltstone triplet must score ~1."""
        found_good = False
        for well in scenario.wells:
            query, runs = geology.riverbed_query(well)
            names = [LITHOLOGY_NAMES[code] for code, _, _ in runs]
            for i in range(len(names) - 2):
                if names[i: i + 3] == ["shale", "sandstone", "siltstone"]:
                    score = query.score((i, i + 1, i + 2))
                    assert score > 0.5
                    found_good = True
        assert found_good, "no planted riverbed in the scenario"

    def test_wrong_lithology_scores_zero(self, scenario):
        query, runs = geology.riverbed_query(scenario.wells[0])
        names = [LITHOLOGY_NAMES[code] for code, _, _ in runs]
        for i in range(len(names) - 2):
            if names[i] != "shale":
                assert query.score((i, i + 1, i + 2)) == 0.0
                break


class TestFindRiverbeds:
    def test_fast_and_dp_agree(self, scenario):
        fast = geology.find_riverbeds(scenario, k_total=8, algorithm="fast")
        dp = geology.find_riverbeds(scenario, k_total=8, algorithm="dp")
        assert [round(m.score, 9) for m in fast] == [
            round(m.score, 9) for m in dp
        ]

    def test_matches_verified_by_naive_oracle(self, scenario):
        """Per-well best assignment must equal exhaustive enumeration."""
        for well in scenario.wells[:5]:
            query, _ = geology.riverbed_query(well)
            if query.n_objects < 3:
                continue
            oracle = naive_top_k(query, 1)[0]
            matches = geology.find_riverbeds(
                geology.GeologyScenario([well]), k_per_well=1, k_total=1
            )
            if oracle[1] <= 0.0:
                assert matches == []
            else:
                assert matches[0].score == pytest.approx(oracle[1])

    def test_matches_sorted_and_depths_ordered(self, scenario):
        matches = geology.find_riverbeds(scenario, k_total=10)
        scores = [m.score for m in matches]
        assert scores == sorted(scores, reverse=True)
        for match in matches:
            assert match.depth_top_m < match.depth_bottom_m

    def test_counter_tallies_work(self, scenario):
        counter = CostCounter()
        geology.find_riverbeds(scenario, k_total=5, counter=counter)
        assert counter.total_work > 0

    def test_unknown_algorithm_rejected(self, scenario):
        with pytest.raises(ValueError):
            geology.find_riverbeds(scenario, algorithm="quantum")

    def test_gamma_threshold_filters(self, scenario):
        """An absurd gamma threshold must suppress all matches."""
        matches = geology.find_riverbeds(
            scenario, k_total=10, gamma_threshold=100000.0
        )
        assert all(match.score < 0.01 for match in matches)


class TestHotGammaRanking:
    def test_matches_direct_count(self, scenario):
        ranked = geology.rank_wells_by_hot_gamma(scenario, k=3)
        assert len(ranked) == 3
        for well_name, count in ranked:
            well = next(w for w in scenario.wells if w.name == well_name)
            truth = float((well.values("gamma_ray") >= 45.0).sum())
            assert count == truth
        counts = [count for _, count in ranked]
        assert counts == sorted(counts, reverse=True)

    def test_top_well_really_is_top(self, scenario):
        best_name, best_count = geology.rank_wells_by_hot_gamma(scenario, k=1)[0]
        for well in scenario.wells:
            truth = float((well.values("gamma_ray") >= 45.0).sum())
            assert truth <= best_count
