"""Tests for retrieval results and the pruning audit."""

from __future__ import annotations

from repro.core.results import PruningAudit, RetrievalResult, ScoredLocation
from repro.metrics.counters import CostCounter


class TestScoredLocation:
    def test_location_tuple(self):
        answer = ScoredLocation(row=3, col=7, score=1.5)
        assert answer.location == (3, 7)


class TestPruningAudit:
    def test_tile_prune_fraction(self):
        audit = PruningAudit(tiles_screened=10, tiles_pruned=4)
        assert audit.tile_prune_fraction == 0.4

    def test_empty_audit_fraction_zero(self):
        assert PruningAudit().tile_prune_fraction == 0.0

    def test_level_tallies_accumulate(self):
        audit = PruningAudit()
        audit.enter_level(1, 100)
        audit.enter_level(1, 50)
        audit.enter_level(2, 80)
        audit.prune_at_level(1, 70)
        assert audit.cells_entered_level == {1: 150, 2: 80}
        assert audit.cells_pruned_at_level == {1: 70}


class TestRetrievalResult:
    def test_views(self):
        result = RetrievalResult(
            answers=[
                ScoredLocation(0, 1, 9.0),
                ScoredLocation(2, 3, 7.0),
            ],
            counter=CostCounter(),
            strategy="test",
        )
        assert result.locations == [(0, 1), (2, 3)]
        assert result.scores == [9.0, 7.0]
        assert len(result) == 2

    def test_default_audit(self):
        result = RetrievalResult(answers=[], counter=CostCounter())
        assert result.audit.tiles_screened == 0
        assert len(result) == 0
