"""Store-backed serving fleet: workers memory-map the archive from disk.

Process-backed tests share one module-scoped 2-worker fleet over one
module-scoped ingested store (spawning is the dominant cost).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.query import TopKQuery
from repro.data.store import ingest_synthetic, open_archive, synthetic_stack
from repro.models.linear import LinearModel
from repro.serving import (
    FleetConfig,
    StoreArchiveManifest,
    WorkerFleet,
    fleet_for_store,
)
from repro.serving.protocol import encode_query, encode_result
from repro.service.retrieval import RetrievalService

SIZE = 128
N_BANDS = 2
SEED = 11


@pytest.fixture(scope="module")
def store_path(tmp_path_factory):
    root = tmp_path_factory.mktemp("serving_store") / "store"
    ingest_synthetic(root, size=SIZE, n_bands=N_BANDS, seed=SEED)
    return root


@pytest.fixture(scope="module")
def store_fleet(store_path):
    fleet = WorkerFleet(
        config=FleetConfig(n_workers=2),
        store_path=str(store_path),
    )
    fleet.start()
    yield fleet
    fleet.stop()


@pytest.fixture(scope="module")
def local_service(store_path):
    return RetrievalService.from_archive(
        open_archive(store_path), ["band0", "band1"]
    )


def _query(seed: int, k: int = 5) -> TopKQuery:
    rng = np.random.default_rng(seed)
    weights = {f"band{i}": float(rng.normal()) for i in range(N_BANDS)}
    return TopKQuery(model=LinearModel(weights), k=k)


class TestStoreFleet:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_answers_bit_identical_to_in_process(
        self, store_fleet, local_service, seed
    ):
        query = _query(seed)
        reply = store_fleet.submit_query(encode_query(query)).result(
            timeout=60
        )
        assert reply.ok, reply.error
        local = encode_result(local_service.top_k(query, use_cache=False))
        assert reply.value["answers"] == local["answers"]
        assert reply.value["complete"] is True

    def test_workers_match_synthetic_twin(self, store_fleet):
        # The store was ingested strip-by-strip; the in-memory twin is
        # built in one shot. Workers must serve the twin's answers.
        stack = synthetic_stack(SIZE, n_bands=N_BANDS, seed=SEED)
        twin = RetrievalService(stack, leaf_size=16)
        query = _query(99)
        reply = store_fleet.submit_query(encode_query(query)).result(
            timeout=60
        )
        assert reply.ok, reply.error
        local = encode_result(twin.top_k(query, use_cache=False))
        assert reply.value["answers"] == local["answers"]

    def test_stats_report_all_workers(self, store_fleet):
        stats = store_fleet.stats(timeout_s=60)
        assert len(stats) == 2


class TestStoreFleetConstruction:
    def test_exactly_one_source_required(self, store_path):
        with pytest.raises(Exception, match="exactly one"):
            WorkerFleet(config=FleetConfig(n_workers=1))

    def test_fleet_for_store_builds_manifest(self, store_path):
        fleet = fleet_for_store(str(store_path), n_workers=1)
        manifest = StoreArchiveManifest(path=str(store_path))
        assert fleet._store_path == manifest.path
        assert fleet._stack is None


class TestStoreFleetFused:
    def _fused(self, seed: int, alpha: float = 0.5) -> TopKQuery:
        rng = np.random.default_rng(seed)
        weights = {f"band{i}": float(rng.normal()) for i in range(N_BANDS)}
        return TopKQuery(
            model=LinearModel(weights),
            k=5,
            similar_to=(int(rng.integers(0, SIZE)), int(rng.integers(0, SIZE))),
            alpha=alpha,
        )

    @pytest.mark.parametrize("seed,alpha", [(0, 0.0), (1, 0.5), (2, 0.25)])
    def test_fused_answers_match_in_process(
        self, store_fleet, local_service, seed, alpha
    ):
        """similar_to queries cross the wire protocol and the worker
        boundary without losing bitwise identity."""
        query = self._fused(seed, alpha)
        reply = store_fleet.submit_query(encode_query(query)).result(
            timeout=60
        )
        assert reply.ok, reply.error
        local = encode_result(local_service.top_k(query, use_cache=False))
        assert reply.value["answers"] == local["answers"]
        assert reply.value["complete"] is True

    def test_forced_embed_scan_matches_in_process(
        self, store_fleet, local_service
    ):
        query = self._fused(7)
        payload = encode_query(query)
        payload["strategy"] = "embed-scan"
        reply = store_fleet.submit_query(payload).result(timeout=60)
        assert reply.ok, reply.error
        local = encode_result(
            local_service.top_k(
                query, strategy="embed-scan", use_cache=False
            )
        )
        assert reply.value["answers"] == local["answers"]
        assert reply.value["strategy"] == "embed-scan"

    def test_alpha_one_round_trips_as_plain_query(
        self, store_fleet, local_service
    ):
        query = self._fused(3, alpha=1.0)
        payload = encode_query(query)
        assert "alpha" not in payload
        reply = store_fleet.submit_query(payload).result(timeout=60)
        assert reply.ok, reply.error
        plain = TopKQuery(model=query.model, k=query.k)
        local = encode_result(local_service.top_k(plain, use_cache=False))
        assert reply.value["answers"] == local["answers"]
