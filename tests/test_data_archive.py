"""Tests for the archive catalog."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.archive import Archive
from repro.data.catalog import CatalogEntry, Modality
from repro.data.raster import RasterLayer
from repro.data.series import DepthSeries, TimeSeries
from repro.data.table import Table
from repro.exceptions import ArchiveError


def _archive() -> Archive:
    archive = Archive("test")
    archive.add(RasterLayer("band", np.zeros((4, 4))))
    archive.add(
        TimeSeries("station", np.arange(3.0), {"rain_mm": np.zeros(3)})
    )
    archive.add(
        DepthSeries("well", np.arange(3.0), {"gamma_ray": np.zeros(3)})
    )
    archive.add(Table("tuples", {"x": np.zeros(2)}))
    return archive


class TestCatalogEntry:
    def test_matches_tags(self):
        entry = CatalogEntry("x", Modality.IMAGERY, tags={"region": "west"})
        assert entry.matches(region="west")
        assert not entry.matches(region="east")
        assert not entry.matches(season="1998")

    def test_matches_modality(self):
        entry = CatalogEntry("x", Modality.WEATHER)
        assert entry.matches(modality="weather")
        assert not entry.matches(modality="imagery")


class TestArchive:
    def test_typed_accessors(self):
        archive = _archive()
        assert archive.raster("band").shape == (4, 4)
        assert len(archive.series("station")) == 3
        assert archive.depth_series("well").depth_at(1) == 1.0
        assert len(archive.table("tuples")) == 2

    def test_type_mismatch_raises(self):
        archive = _archive()
        with pytest.raises(ArchiveError):
            archive.raster("station")
        with pytest.raises(ArchiveError):
            archive.series("band")

    def test_missing_item_raises(self):
        with pytest.raises(ArchiveError):
            _archive().raster("nope")

    def test_duplicate_name_rejected(self):
        archive = _archive()
        with pytest.raises(ArchiveError):
            archive.add(RasterLayer("band", np.ones((2, 2))))

    def test_default_catalog_entries(self):
        archive = _archive()
        assert archive.entry("band").modality is Modality.IMAGERY
        assert archive.entry("station").modality is Modality.WEATHER
        assert archive.entry("well").modality is Modality.WELL_LOG
        assert archive.entry("tuples").modality is Modality.TABULAR

    def test_explicit_entry_name_must_match(self):
        archive = Archive()
        layer = RasterLayer("dem", np.zeros((2, 2)))
        bad_entry = CatalogEntry("other", Modality.ELEVATION)
        with pytest.raises(ArchiveError):
            archive.add(layer, bad_entry)

    def test_find_by_metadata(self):
        archive = Archive()
        archive.add(
            RasterLayer("scene1", np.zeros((2, 2))),
            CatalogEntry("scene1", Modality.IMAGERY, tags={"season": "wet"}),
        )
        archive.add(
            RasterLayer("scene2", np.zeros((2, 2))),
            CatalogEntry("scene2", Modality.IMAGERY, tags={"season": "dry"}),
        )
        assert archive.find(season="wet") == ["scene1"]
        assert archive.find(modality="imagery") == ["scene1", "scene2"]

    def test_items_of_modality(self):
        archive = _archive()
        imagery = list(archive.items_of_modality(Modality.IMAGERY))
        assert [item.name for item in imagery] == ["band"]

    def test_stack_builds_from_layers(self):
        archive = Archive()
        archive.add(RasterLayer("a", np.zeros((3, 3))))
        archive.add(RasterLayer("b", np.ones((3, 3))))
        stack = archive.stack(["a", "b"])
        assert stack.names == ["a", "b"]

    def test_len_and_names(self):
        archive = _archive()
        assert len(archive) == 4
        assert "band" in archive
        assert archive.names() == ["band", "station", "well", "tuples"]


class TestItemAccessor:
    def test_item_returns_any_kind(self):
        archive = _archive()
        assert isinstance(archive.item("band"), RasterLayer)
        assert isinstance(archive.item("station"), TimeSeries)
        assert isinstance(archive.item("tuples"), Table)

    def test_item_missing_raises(self):
        with pytest.raises(ArchiveError, match="has no item"):
            _archive().item("nope")


class TestSlashInName:
    def test_add_rejects_slash(self):
        archive = Archive("x")
        with pytest.raises(ArchiveError, match="must not contain '/'"):
            archive.add(RasterLayer("a/b", np.zeros((2, 2))))


class TestMutationLog:
    def test_adds_record_unscoped_mutations(self):
        archive = _archive()
        assert archive.generation == 4
        mutations = archive.mutations_since(2)
        assert mutations == [(3, None), (4, None)]

    def test_up_to_date_consumer_sees_empty_list(self):
        archive = _archive()
        assert archive.mutations_since(archive.generation) == []

    def test_consumer_ahead_of_archive_gets_none(self):
        archive = _archive()
        assert archive.mutations_since(archive.generation + 1) is None

    def test_overflowed_log_returns_none(self):
        archive = Archive("x")
        for index in range(300):
            archive.add(Table(f"t{index}", {"x": np.zeros(1)}))
        assert archive.mutations_since(0) is None
        # The tail the log still covers remains available.
        recent = archive.mutations_since(archive.generation - 5)
        assert recent is not None and len(recent) == 5
