"""Tests for the fire-ants application."""

from __future__ import annotations

import pytest

from repro.apps import fireants
from repro.metrics.counters import CostCounter


@pytest.fixture(scope="module")
def scenario():
    return fireants.build_scenario(4, 4, n_days=365, seed=9)


class TestScenario:
    def test_station_grid_complete(self, scenario):
        assert len(scenario.stations) == 16
        assert all(len(s) == 365 for s in scenario.stations.values())

    def test_machine_is_figure_one(self, scenario):
        assert scenario.machine.accepting_states == {"fire_ants_fly"}
        assert scenario.machine.initial == "rain"
        assert len(scenario.machine.states) == 5


class TestRetrieval:
    def test_run_all_stations(self, scenario):
        runs = fireants.run_all_stations(scenario)
        assert set(runs) == set(scenario.stations)

    def test_top_k_ranked_by_score(self, scenario):
        top = fireants.top_k_swarming_regions(scenario, k=5)
        scores = [run.score() for _, run in top]
        assert scores == sorted(scores, reverse=True)
        assert len(top) == 5

    def test_top_k_really_is_top(self, scenario):
        all_runs = fireants.run_all_stations(scenario)
        best_overall = max(run.score() for run in all_runs.values())
        top = fireants.top_k_swarming_regions(scenario, k=1)
        assert top[0][1].score() == best_overall

    def test_counter_accumulates_across_stations(self, scenario):
        counter = CostCounter()
        fireants.run_all_stations(scenario, counter)
        assert counter.data_points == 16 * 365 * 2


class TestNaiveCrossCheck:
    def test_every_station_agrees_with_naive(self, scenario):
        for cell in scenario.stations:
            fsm_onsets, naive_onsets = fireants.verify_against_naive(
                scenario, cell
            )
            assert list(fsm_onsets) == naive_onsets

    def test_fsm_cheaper_than_naive(self, scenario):
        fsm_counter, naive_counter = CostCounter(), CostCounter()
        for cell in scenario.stations:
            fireants.verify_against_naive(
                scenario, cell, fsm_counter, naive_counter
            )
        assert naive_counter.total_work > fsm_counter.total_work


class TestDynamicsRetrieval:
    def test_real_stations_are_near_the_target(self, scenario):
        """Every station's weather was labeled BY the Figure 1 machine,
        so extracted machines should all sit very close to the target."""
        ranked = fireants.rank_stations_by_dynamics(scenario, k=5)
        assert len(ranked) == 5
        distances = [distance for _, distance in ranked]
        assert distances == sorted(distances)
        assert distances[0] < 0.05

    def test_distance_in_unit_interval(self, scenario):
        ranked = fireants.rank_stations_by_dynamics(scenario, k=3)
        for _, distance in ranked:
            assert 0.0 <= distance <= 1.0
