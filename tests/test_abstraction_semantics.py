"""Tests for progressive classification (experiment E2's mechanism)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.abstraction.semantics import ProgressiveClassifier, ThresholdClassifier
from repro.data.raster import RasterLayer
from repro.metrics.counters import CostCounter
from repro.pyramid.pyramid import ResolutionPyramid
from repro.synth.landsat import generate_band


class TestThresholdClassifier:
    def test_binning(self):
        classifier = ThresholdClassifier([10.0, 20.0])
        assert classifier.classify_value(5.0) == 0
        assert classifier.classify_value(15.0) == 1
        assert classifier.classify_value(25.0) == 2
        assert classifier.n_labels == 3

    def test_interval_certainty(self):
        classifier = ThresholdClassifier([10.0])
        assert classifier.classify_interval(0.0, 5.0) == 0
        assert classifier.classify_interval(11.0, 20.0) == 1
        assert classifier.classify_interval(5.0, 15.0) is None

    def test_array_matches_scalar(self):
        classifier = ThresholdClassifier([10.0, 20.0])
        values = np.array([[5.0, 15.0], [25.0, 10.0]])
        labels = classifier.classify_array(values)
        for index in np.ndindex(values.shape):
            assert labels[index] == classifier.classify_value(values[index])

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ThresholdClassifier([])
        with pytest.raises(ValueError):
            ThresholdClassifier([5.0, 5.0])


class TestProgressiveClassifier:
    @given(
        hnp.arrays(
            np.float64,
            st.tuples(st.integers(4, 40), st.integers(4, 40)),
            elements=st.floats(0, 100),
        ),
        st.lists(
            st.floats(5, 95), min_size=1, max_size=3, unique=True
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_progressive_equals_full_classification(self, values, thresholds):
        """The paper's progressive classification must be *exact* (the
        min/max envelopes make coarse decisions sound)."""
        classifier = ThresholdClassifier(sorted(thresholds))
        pyramid = ResolutionPyramid(RasterLayer("x", values), n_levels=4)
        progressive = ProgressiveClassifier(pyramid, classifier)
        full = progressive.classify_full()
        labels, _ = progressive.classify()
        assert np.array_equal(labels, full)

    def test_all_pixels_resolved(self):
        band = generate_band((50, 70), seed=1)
        pyramid = ResolutionPyramid(band, n_levels=4)
        progressive = ProgressiveClassifier(
            pyramid, ThresholdClassifier([80.0])
        )
        labels, audit = progressive.classify()
        assert not np.any(labels == -1)
        assert sum(audit.cells_resolved_at_level.values()) == band.size

    def test_smooth_imagery_resolves_coarse(self):
        band = generate_band((128, 128), seed=2, smoothness=3.5)
        pyramid = ResolutionPyramid(band, n_levels=6)
        progressive = ProgressiveClassifier(
            pyramid, ThresholdClassifier([80.0])
        )
        _, audit = progressive.classify()
        assert audit.coarse_fraction > 0.8

    def test_work_reduction_on_smooth_imagery(self):
        band = generate_band((128, 128), seed=3, smoothness=3.5)
        pyramid = ResolutionPyramid(band, n_levels=6)
        progressive = ProgressiveClassifier(
            pyramid, ThresholdClassifier([80.0])
        )
        full_counter, progressive_counter = CostCounter(), CostCounter()
        progressive.classify_full(full_counter)
        progressive.classify(progressive_counter)
        assert (
            progressive_counter.total_work < full_counter.total_work / 3
        )

    def test_constant_field_resolves_at_top(self):
        layer = RasterLayer("flat", np.full((32, 32), 5.0))
        pyramid = ResolutionPyramid(layer, n_levels=5)
        progressive = ProgressiveClassifier(
            pyramid, ThresholdClassifier([10.0])
        )
        labels, audit = progressive.classify()
        assert np.all(labels == 0)
        assert audit.coarse_fraction == 1.0
        assert audit.cells_resolved_at_level.get(0, 0) == 0

    def test_adversarial_checkerboard_falls_to_level_zero(self):
        rows, cols = np.indices((16, 16))
        checkerboard = ((rows + cols) % 2) * 100.0
        pyramid = ResolutionPyramid(RasterLayer("cb", checkerboard), n_levels=4)
        progressive = ProgressiveClassifier(
            pyramid, ThresholdClassifier([50.0])
        )
        labels, audit = progressive.classify()
        assert np.array_equal(labels, progressive.classify_full())
        assert audit.coarse_fraction == 0.0
