"""Tests for query descriptions and tile screens."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.query import TopKQuery
from repro.core.screening import TileScreen
from repro.data.raster import RasterLayer, RasterStack
from repro.exceptions import PlanError, QueryError
from repro.metrics.counters import CostCounter
from repro.models.linear import LinearModel


def _stack() -> RasterStack:
    rng = np.random.default_rng(5)
    stack = RasterStack()
    stack.add(RasterLayer("a", rng.random((20, 30))))
    stack.add(RasterLayer("b", rng.random((20, 30))))
    return stack


class TestTopKQuery:
    def test_k_validation(self):
        with pytest.raises(QueryError):
            TopKQuery(model=LinearModel({"a": 1.0}), k=0)

    def test_region_validation(self):
        with pytest.raises(QueryError):
            TopKQuery(model=LinearModel({"a": 1.0}), k=1, region=(5, 5, 5, 9))

    def test_clip_region_defaults_to_grid(self):
        query = TopKQuery(model=LinearModel({"a": 1.0}), k=1)
        assert query.clip_region((10, 20)) == (0, 0, 10, 20)

    def test_clip_region_clamps(self):
        query = TopKQuery(
            model=LinearModel({"a": 1.0}), k=1, region=(-5, -5, 100, 100)
        )
        assert query.clip_region((10, 20)) == (0, 0, 10, 20)

    def test_disjoint_region_rejected(self):
        query = TopKQuery(
            model=LinearModel({"a": 1.0}), k=1, region=(50, 50, 60, 60)
        )
        with pytest.raises(QueryError):
            query.clip_region((10, 20))


class TestTileScreen:
    def test_root_covers_grid(self):
        screen = TileScreen(_stack(), leaf_size=8)
        assert screen.root().window == (0, 0, 20, 30)

    def test_children_stay_aligned(self):
        screen = TileScreen(_stack(), leaf_size=4)
        frontier = [screen.root()]
        while frontier:
            node = frontier.pop()
            for child in screen.children(node):
                assert child.window[0] >= node.window[0]
                frontier.append(child)

    def test_envelopes_are_per_attribute_and_sound(self):
        stack = _stack()
        screen = TileScreen(stack, leaf_size=4)
        for child in screen.children(screen.root()):
            row0, col0, row1, col1 = child.window
            envelopes = screen.envelopes(child)
            for name in ("a", "b"):
                window = stack[name].values[row0:row1, col0:col1]
                low, high = envelopes[name]
                assert low <= window.min() + 1e-12
                assert high >= window.max() - 1e-12

    def test_envelope_counter_charges_nodes_only(self):
        screen = TileScreen(_stack(), leaf_size=8)
        counter = CostCounter()
        screen.envelopes(screen.root(), counter)
        assert counter.nodes_visited == 2
        assert counter.data_points == 0

    def test_attribute_ranges(self):
        stack = _stack()
        screen = TileScreen(stack, leaf_size=8)
        ranges = screen.attribute_ranges()
        assert ranges["a"][0] == pytest.approx(stack["a"].values.min())
        assert ranges["a"][1] == pytest.approx(stack["a"].values.max())

    def test_attribute_subset(self):
        screen = TileScreen(_stack(), attributes=["b"], leaf_size=8)
        assert screen.attributes == ["b"]
        assert set(screen.envelopes(screen.root())) == {"b"}

    def test_missing_attribute_rejected(self):
        with pytest.raises(PlanError):
            TileScreen(_stack(), attributes=["z"])

    def test_leaf_has_no_children(self):
        screen = TileScreen(_stack(), leaf_size=64)
        assert screen.root().is_leaf
        assert screen.children(screen.root()) == []
