"""Regression and stress tests for the hardened serving layer.

Covers the four concurrency/cache bug fixes (each test fails on the
pre-hardening code), the deadline/cancellation path (partial results
are a prefix-sound top-K), the shared-heap block-offer stress, and the
per-query trace / metrics registry contracts.
"""

from __future__ import annotations

import gc
import sys
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import TopKHeap
from repro.core.query import TopKQuery
from repro.exceptions import QueryError
from repro.metrics.registry import LatencyHistogram, MetricsRegistry
from repro.models.base import Model
from repro.models.linear import LinearModel
from repro.service import (
    CancellationToken,
    QueryCache,
    RetrievalService,
    SharedTopKHeap,
    model_fingerprint,
)
from repro.service.retrieval import ScoredLocation


class _OpaqueModel(Model):
    """A minimal non-linear model: fingerprints by instance identity."""

    def __init__(self, shift: float = 0.0) -> None:
        self.shift = shift

    @property
    def attributes(self) -> tuple[str, ...]:
        return ("layer0",)

    @property
    def complexity(self) -> int:
        return 2

    def evaluate(self, attributes) -> float:
        return float(attributes["layer0"]) + self.shift


class TestServiceStatsThreadSafety:
    """Bugfix 1: stats mutations race without the service lock."""

    def test_threaded_hammer_keeps_exact_tallies(
        self, make_noise_stack, make_random_linear_model
    ):
        stack = make_noise_stack(8, 8, 2, seed=1)
        service = RetrievalService(
            stack, leaf_size=4, cache_size=8, registry=MetricsRegistry()
        )
        query = TopKQuery(model=make_random_linear_model(stack), k=3)
        service.top_k(query)  # warm the cache: hammer queries all hit

        n_threads, per_thread = 8, 400
        barrier = threading.Barrier(n_threads)

        def hammer() -> None:
            barrier.wait()
            for _ in range(per_thread):
                service.top_k(query)

        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)  # provoke preemption mid-increment
        try:
            threads = [
                threading.Thread(target=hammer) for _ in range(n_threads)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            sys.setswitchinterval(old_interval)

        expected = 1 + n_threads * per_thread
        assert service.stats.queries == expected
        assert (
            service.stats.cache_hits + service.stats.cache_misses == expected
        )
        assert service.stats.cache_misses == 1


class TestModelFingerprintTokens:
    """Bugfix 2: id(model) recycles after GC and falsely hits the cache."""

    def test_fingerprints_never_recycle_after_gc(self):
        seen = set()
        for _ in range(100):
            model = _OpaqueModel()
            fingerprint = model_fingerprint(model)
            # Pre-fix, the reallocated model frequently lands on the
            # id() of a collected predecessor and repeats a fingerprint.
            assert fingerprint not in seen
            seen.add(fingerprint)
            del model
            gc.collect()

    def test_same_instance_fingerprint_is_stable(self):
        model = _OpaqueModel()
        assert model_fingerprint(model) == model_fingerprint(model)

    def test_distinct_live_instances_differ(self):
        first, second = _OpaqueModel(), _OpaqueModel()
        assert model_fingerprint(first) != model_fingerprint(second)

    def test_dropped_models_entries_are_unreachable(self):
        """A new model can never hit a dead model's cache entry, even
        when the allocator hands it the same address."""
        cache = QueryCache(maxsize=8)
        sentinel = object()
        survivors = 0
        for _ in range(50):
            stale = _OpaqueModel(shift=1.0)
            cache.put(model_fingerprint(stale), sentinel)
            del stale
            gc.collect()
            fresh = _OpaqueModel(shift=2.0)  # different answers!
            if model_fingerprint(fresh) in cache:
                survivors += 1
        assert survivors == 0

    def test_linear_models_still_share_by_value(self):
        a = LinearModel({"x": 1.0}, intercept=2.0)
        b = LinearModel({"x": 1.0}, intercept=2.0)
        assert model_fingerprint(a) == model_fingerprint(b)


class TestCacheHitIsolation:
    """Bugfix 3: hits shared the stored entry's mutable state."""

    def _service(self, make_noise_stack, make_random_linear_model):
        stack = make_noise_stack(16, 16, 2, seed=3)
        service = RetrievalService(
            stack, leaf_size=4, cache_size=8, registry=MetricsRegistry()
        )
        return service, TopKQuery(
            model=make_random_linear_model(stack, seed=4), k=5
        )

    def test_mutating_a_hit_leaves_the_next_hit_pristine(
        self, make_noise_stack, make_random_linear_model, answer_list
    ):
        service, query = self._service(
            make_noise_stack, make_random_linear_model
        )
        cold = service.top_k(query)
        reference = answer_list(cold)

        victim = service.top_k(query)
        assert victim.strategy.endswith("-cached")
        victim.answers.append(ScoredLocation(row=0, col=0, score=1e9))
        victim.answers.extend(victim.answers)
        victim.counter.note("poison", 1.0)
        victim.counter.data_points += 123456
        victim.audit.tiles_screened += 999
        victim.audit.cells_entered_level[1] = -1

        pristine = service.top_k(query)
        assert answer_list(pristine) == reference
        assert "poison" not in pristine.counter.notes
        assert pristine.counter.data_points == cold.counter.data_points
        assert pristine.audit.tiles_screened == cold.audit.tiles_screened
        assert (
            pristine.audit.cells_entered_level
            == cold.audit.cells_entered_level
        )

    def test_mutating_the_cold_result_cannot_corrupt_the_store(
        self, make_noise_stack, make_random_linear_model, answer_list
    ):
        service, query = self._service(
            make_noise_stack, make_random_linear_model
        )
        cold = service.top_k(query)
        reference = answer_list(cold)
        cold.answers.clear()
        cold.counter.flops += 10**9
        hit = service.top_k(query)
        assert answer_list(hit) == reference
        assert hit.counter.flops != cold.counter.flops


class TestCacheLockingAndInvalidate:
    """Bugfix 4: unlocked __len__/__contains__ and the phantom
    invalidation tally when caching is disabled."""

    def test_invalidate_without_cache_counts_nothing(
        self, make_noise_stack
    ):
        stack = make_noise_stack(8, 8, 1, seed=5)
        service = RetrievalService(
            stack, leaf_size=4, cache_size=0, registry=MetricsRegistry()
        )
        service.invalidate()
        service.invalidate()
        assert service.stats.invalidations == 0

    def test_invalidate_with_cache_counts(self, make_noise_stack):
        stack = make_noise_stack(8, 8, 1, seed=5)
        service = RetrievalService(
            stack, leaf_size=4, cache_size=4, registry=MetricsRegistry()
        )
        service.invalidate()
        assert service.stats.invalidations == 1

    def test_len_and_contains_agree_under_concurrent_churn(self):
        cache = QueryCache(maxsize=32)
        stop = threading.Event()

        def churn() -> None:
            index = 0
            while not stop.is_set():
                cache.put(index % 64, index)
                index += 1

        thread = threading.Thread(target=churn)
        thread.start()
        try:
            for _ in range(2000):
                assert 0 <= len(cache) <= 32
                (17 in cache)  # must never raise mid-mutation
        finally:
            stop.set()
            thread.join()


class TestDeadlineAndCancellation:
    @pytest.fixture(scope="class")
    def setup(self, make_noise_stack, make_random_linear_model):
        stack = make_noise_stack(256, 256, 3, seed=11)
        service = RetrievalService(
            stack, leaf_size=8, n_shards=4, cache_size=8,
            registry=MetricsRegistry(),
        )
        query = TopKQuery(
            model=make_random_linear_model(stack, seed=12), k=25
        )
        return stack, service, query

    def test_precancelled_token_returns_immediately(self, setup):
        _, service, query = setup
        token = CancellationToken()
        token.cancel()
        start = time.perf_counter()
        result = service.top_k(query, use_cache=False, cancel=token)
        elapsed = time.perf_counter() - start
        assert result.complete is False
        assert result.strategy.endswith("-partial")
        assert elapsed < 1.0
        assert token.reason == "cancelled"

    def test_deadline_yields_prompt_prefix_sound_partial(self, setup):
        stack, service, query = setup
        start = time.perf_counter()
        cold = service.top_k(query, use_cache=False)
        cold_seconds = time.perf_counter() - start
        assert cold.complete

        deadline = max(cold_seconds / 8, 0.002)
        start = time.perf_counter()
        partial = service.top_k(
            query, use_cache=False, deadline_s=deadline
        )
        elapsed = time.perf_counter() - start
        if partial.complete:
            pytest.skip("machine too fast to truncate this query")
        # Prompt: loop-check granularity, with slack for slow CI hosts.
        assert elapsed < 2 * deadline + 0.25
        assert partial.strategy.endswith("-partial")
        assert len(partial.answers) <= query.k
        # Prefix soundness: every returned score is the exact model
        # score of its cell, deadline or not.
        model = query.model
        for answer in partial.answers:
            exact = model.evaluate(
                {
                    name: float(stack[name].values[answer.row, answer.col])
                    for name in model.attributes
                }
            )
            assert answer.score == pytest.approx(exact, abs=1e-9)
        assert partial.trace is not None
        assert partial.trace.cancel_reason == "deadline"

    def test_no_deadline_is_identical_to_engine(self, setup, answer_list):
        _, service, query = setup
        expected = answer_list(service.engine.progressive_top_k(query))
        result = service.top_k(query, use_cache=False)
        assert result.complete is True
        assert result.strategy == "both-sharded[4]"
        assert answer_list(result) == expected

    def test_partial_results_are_never_cached(self, setup, answer_list):
        _, service, query = setup
        token = CancellationToken()
        token.cancel()
        partial = service.top_k(query, cancel=token)
        assert partial.complete is False
        after = service.top_k(query)
        assert after.complete is True
        assert not after.strategy.endswith("-cached")
        assert answer_list(after) == answer_list(
            service.engine.progressive_top_k(query)
        )

    def test_nonpositive_deadline_rejected(self, setup):
        _, service, query = setup
        with pytest.raises(QueryError):
            service.top_k(query, deadline_s=0.0)
        with pytest.raises(QueryError):
            service.top_k(query, deadline_s=-1.0)

    def test_engine_level_cancellation(self, setup):
        stack, service, query = setup
        token = CancellationToken()
        token.cancel("load-shed")
        result = service.engine.progressive_top_k(query, cancel=token)
        assert result.complete is False
        assert result.strategy == "both-partial"
        assert token.reason == "load-shed"

    def test_token_deadline_and_parent_chain(self):
        parent = CancellationToken()
        child = CancellationToken(deadline_s=60.0, parent=parent)
        assert not child.cancelled
        assert child.remaining_s is not None and child.remaining_s > 50
        parent.cancel()
        assert child.cancelled
        assert child.reason == "cancelled"
        with pytest.raises(ValueError):
            CancellationToken(deadline_s=0.0)
        expired = CancellationToken(deadline_s=1e-9)
        time.sleep(0.002)
        assert expired.cancelled
        assert expired.reason == "deadline"
        assert expired.remaining_s == 0.0


class TestSharedHeapOfferBlockStress:
    def test_concurrent_block_offers_match_sequential(self):
        rng = np.random.default_rng(29)
        n_blocks, block_size = 40, 64
        blocks = [
            (
                rng.integers(0, 30, block_size).astype(float),
                rng.integers(0, 50, block_size),
                rng.integers(0, 50, block_size),
            )
            for _ in range(n_blocks)
        ]

        sequential = TopKHeap(12)
        for scores, rows, cols in blocks:
            sequential.offer_block(scores, rows, cols)

        shared = SharedTopKHeap(12)
        barrier = threading.Barrier(4)

        def worker(assigned) -> None:
            barrier.wait()
            for scores, rows, cols in assigned:
                shared.offer_block(scores, rows, cols)

        threads = [
            threading.Thread(target=worker, args=(blocks[i::4],))
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert shared.ranked() == sequential.ranked()

    def test_mixed_scalar_and_block_offers_under_threads(self):
        rng = np.random.default_rng(31)
        scores = rng.integers(0, 20, 1200).astype(float)
        rows = rng.integers(0, 64, 1200)
        cols = rng.integers(0, 64, 1200)

        sequential = TopKHeap(8)
        for i in range(1200):
            sequential.offer(scores[i], (int(rows[i]), int(cols[i])))

        shared = SharedTopKHeap(8)

        def scalar_worker(indices) -> None:
            for i in indices:
                shared.offer(scores[i], (int(rows[i]), int(cols[i])))

        def block_worker(indices) -> None:
            shared.offer_block(scores[indices], rows[indices], cols[indices])

        chunks = np.array_split(np.arange(1200), 6)
        threads = [
            threading.Thread(
                target=scalar_worker if i % 2 else block_worker,
                args=(chunk,),
            )
            for i, chunk in enumerate(chunks)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert shared.ranked() == sequential.ranked()


class TestQueryTracing:
    def _service(self, make_noise_stack, make_random_linear_model):
        stack = make_noise_stack(48, 48, 2, seed=41)
        service = RetrievalService(
            stack, leaf_size=8, n_shards=3, cache_size=8,
            registry=MetricsRegistry(),
        )
        return service, TopKQuery(
            model=make_random_linear_model(stack, seed=42), k=6
        )

    def test_cold_query_trace_structure(
        self, make_noise_stack, make_random_linear_model
    ):
        service, query = self._service(
            make_noise_stack, make_random_linear_model
        )
        result = service.top_k(query)
        trace = result.trace
        assert trace is not None and not trace.cache_hit
        stages = trace.stage_seconds()
        for stage in ("cache_lookup", "plan", "search", "merge", "cache_store"):
            assert stage in stages and stages[stage] >= 0.0
        assert len(trace.shards) == 3
        for shard in trace.shards:
            assert shard["complete"] is True
            assert shard["tiles_screened"] >= 0
            assert shard["wall_seconds"] >= 0.0
        exported = trace.as_dict()
        assert exported["complete"] is True
        assert len(exported["spans"]) == len(trace.spans)

    def test_cache_hit_trace(
        self, make_noise_stack, make_random_linear_model
    ):
        service, query = self._service(
            make_noise_stack, make_random_linear_model
        )
        service.top_k(query)
        hit = service.top_k(query)
        trace = hit.trace
        assert trace.cache_hit and trace.cache_checked
        assert trace.shards == []
        assert set(trace.stage_seconds()) == {"cache_lookup"}

    def test_tracing_does_not_change_counters(
        self, make_noise_stack, make_random_linear_model
    ):
        service, query = self._service(
            make_noise_stack, make_random_linear_model
        )
        engine_result = service.engine.progressive_top_k(query)
        service_result = service.top_k(query, n_shards=1, use_cache=False)
        for field in ("data_points", "model_evals", "partial_evals", "flops"):
            assert getattr(service_result.counter, field) == getattr(
                engine_result.counter, field
            ), f"{field} diverged with tracing enabled"

    @given(
        k=st.integers(1, 12),
        n_shards=st.integers(1, 5),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=15, deadline=None)
    def test_stage_times_sum_to_wall_seconds(
        self, k, n_shards, seed, make_noise_stack, make_random_linear_model
    ):
        stack = make_noise_stack(24, 24, 2, seed=seed)
        service = RetrievalService(
            stack, leaf_size=4, cache_size=4, registry=MetricsRegistry()
        )
        query = TopKQuery(
            model=make_random_linear_model(stack, seed=seed + 1), k=k
        )
        result = service.top_k(query, n_shards=n_shards)
        trace = result.trace
        total_staged = sum(trace.stage_seconds().values())
        # Sequential spans tile the query: they can never exceed the
        # wall time, and the uninstrumented glue between them is tiny.
        assert total_staged <= trace.wall_seconds + 1e-6
        gap = trace.wall_seconds - total_staged
        assert gap <= max(0.02, 0.5 * trace.wall_seconds)


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.inc("queries")
        registry.inc("queries", 2)
        registry.gauge("hit_rate", 0.5)
        for value in (0.001, 0.002, 0.004, 0.5):
            registry.observe("latency", value)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["queries"] == 3
        assert snapshot["gauges"]["hit_rate"] == 0.5
        histogram = snapshot["histograms"]["latency"]
        assert histogram["count"] == 4
        assert histogram["sum"] == pytest.approx(0.507)
        assert histogram["min"] == pytest.approx(0.001)
        assert histogram["max"] == pytest.approx(0.5)
        assert histogram["p50"] <= histogram["p90"] <= histogram["p99"]
        registry.reset()
        assert registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }

    def test_histogram_quantiles(self):
        histogram = LatencyHistogram()
        assert histogram.quantile(0.5) == 0.0  # empty
        for value in np.linspace(0.001, 1.0, 200):
            histogram.observe(float(value))
        assert histogram.quantile(0.0) <= histogram.quantile(1.0)
        assert histogram.quantile(1.0) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            histogram.quantile(1.5)
        with pytest.raises(ValueError):
            LatencyHistogram(buckets_s=())

    def test_concurrent_increments_are_exact(self):
        registry = MetricsRegistry()

        def worker() -> None:
            for _ in range(2000):
                registry.inc("hits")
                registry.observe("lat", 0.001)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter_value("hits") == 12000
        assert registry.snapshot()["histograms"]["lat"]["count"] == 12000

    def test_service_populates_registry(
        self, make_noise_stack, make_random_linear_model
    ):
        stack = make_noise_stack(24, 24, 2, seed=51)
        registry = MetricsRegistry()
        service = RetrievalService(
            stack, leaf_size=4, cache_size=8, registry=registry
        )
        query = TopKQuery(
            model=make_random_linear_model(stack, seed=52), k=4
        )
        service.top_k(query)
        service.top_k(query)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["service.queries"] == 2
        assert snapshot["counters"]["service.cache_hits"] == 1
        assert snapshot["counters"]["service.cache_misses"] == 1
        assert snapshot["gauges"]["service.cache_hit_rate"] == 0.5
        assert snapshot["histograms"]["service.query_seconds"]["count"] == 2
        for stage in ("cache_lookup", "plan", "search", "merge"):
            name = f"service.stage.{stage}_seconds"
            assert snapshot["histograms"][name]["count"] >= 1

    def test_partial_and_cancellation_counters(
        self, make_noise_stack, make_random_linear_model
    ):
        stack = make_noise_stack(24, 24, 2, seed=53)
        registry = MetricsRegistry()
        service = RetrievalService(
            stack, leaf_size=4, cache_size=0, registry=registry
        )
        query = TopKQuery(
            model=make_random_linear_model(stack, seed=54), k=4
        )
        token = CancellationToken()
        token.cancel()
        service.top_k(query, cancel=token)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["service.partial_results"] == 1
        assert snapshot["counters"]["service.cancelled.cancelled"] == 1
        assert service.stats.partial_results == 1
